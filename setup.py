"""Legacy setup shim.

The sandboxed evaluation environment has no network and no ``wheel``
package, so PEP 660 editable installs (``pip install -e .``) cannot build.
``python setup.py develop`` installs the same editable egg-link without
needing wheel.  Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
