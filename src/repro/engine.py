"""State-engine selection.

The simulator keeps its hottest state — free-space run indexes, page
tables, store logs, per-CPU clocks — in structure-of-arrays kernels
(flat parallel columns of ints/doubles).  The original per-object
implementations are retained as *reference* engines: same public API,
same simulated decisions, same bit-identical ``sim_ns``, different
in-memory representation.

Two toggles select an engine:

* :attr:`~repro.mmu.mmap_region.MappedRegion.batch` — the existing walk
  toggle — switches between the batched charge kernels and the
  per-event reference *walk*;
* this module's flag switches between the array-backed and the
  per-object reference *state* structures.

The equivalence and property-differential suites flip both and compare
clocks, counters, and statfs byte-for-byte; that comparison is the
safety argument for every structure swap.  Production code never reads
this flag on a hot path: it is consulted once per structure
*construction* (``FreePool(...)``, ``PageTable(...)`` dispatch in
``__new__``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: True -> new FreePool/PageTable instances use the per-object reference
#: implementations.  Seeded from the environment so CI can run the whole
#: suite against the reference engine without code changes.
_reference_state = os.environ.get("REPRO_REFERENCE_STATE", "") not in ("", "0")


def reference_state() -> bool:
    """Are new structures built on the per-object reference engine?"""
    return _reference_state


def use_reference_state(flag: bool) -> None:
    """Select the state engine for structures built from now on.

    Existing instances keep the engine they were built with; flipping
    mid-run affects only later constructions (tests build the whole
    scenario under one setting).
    """
    global _reference_state
    _reference_state = bool(flag)


@contextmanager
def reference_state_scope(flag: bool = True) -> Iterator[None]:
    """Run a block under the given state engine, then restore."""
    prev = _reference_state
    use_reference_state(flag)
    try:
        yield
    finally:
        use_reference_state(prev)
