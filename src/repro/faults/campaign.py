"""Seeded fault campaigns for SLO reporting.

A *campaign* is the fault schedule behind ``repro slo``: a deterministic
mix of runtime faults (latency spikes, an allocator blip, a failing
block write) plus, for file systems that support degraded mounts, a
post-crash media scar that forces tolerant recovery to skip journal
records and remount read-only.  Everything derives from one integer
seed via :func:`repro.rng.make_rng`, so the same seed always produces
the same plan and therefore the same SLO report.

Two builders, matching the two phases of a campaign cell
(:func:`repro.harness.fleet.slo_cell`):

* :func:`campaign_plan` — runtime faults active while the workload runs;
* :func:`crash_plan` — the damage applied between a simulated crash and
  the remount (a poisoned journal head), which is what drives the
  degraded-mode timeline.
"""

from __future__ import annotations

from ..rng import make_rng
from .plan import FaultPlan, FaultSpec

__all__ = ["campaign_plan", "crash_plan", "serve_campaign_plan"]

#: poisoned bytes at the journal head for :func:`crash_plan` (one
#: cacheline — enough to break the first record's checksum)
CRASH_SCAR_BYTES = 64


def campaign_plan(seed: int) -> FaultPlan:
    """Runtime fault mix for one campaign cell.

    The mix exercises every masked/surfaced path that feeds the error
    ledger without depending on the workload's exact op count:

    * two transient device latency windows (hit every file system);
    * one allocator ``enospc`` blip (surfaced as ENOSPC; inert on
      baselines, which never consult the allocator hook);
    * one failing block write (masked by WineFS's retry-with-relocation;
      inert on baselines).

    Placement and magnitude come from the campaign seed, so distinct
    seeds stress distinct op windows.
    """
    rng = make_rng(seed)
    specs = [
        FaultSpec("latency", at_op=50 + rng.randrange(0, 400),
                  count=150 + rng.randrange(0, 100),
                  latency_mult=float(2 + rng.randrange(0, 3))),
        FaultSpec("latency", at_op=1500 + rng.randrange(0, 1000),
                  count=250, latency_mult=4.0),
        FaultSpec("enospc", at_op=10 + rng.randrange(0, 30), count=1),
        FaultSpec("write_error", blocks=(), count=1),
    ]
    return FaultPlan(seed=seed, specs=specs)


def serve_campaign_plan(seed: int) -> FaultPlan:
    """Runtime fault mix for one *served* campaign cell.

    Same fault vocabulary as :func:`campaign_plan`, re-placed for the
    service workload: an object verb expands to a handful of VFS calls,
    so a few hundred served requests give a few thousand fault-visible
    ops.  The windows land early enough that even a short load crosses
    them, and the latency spikes are sized so service-class tail
    objectives survive while the error ledger records the damage.
    """
    rng = make_rng(seed, salt=1)
    specs = [
        FaultSpec("latency", at_op=20 + rng.randrange(0, 120),
                  count=100 + rng.randrange(0, 80),
                  latency_mult=float(2 + rng.randrange(0, 3))),
        FaultSpec("latency", at_op=400 + rng.randrange(0, 400),
                  count=150, latency_mult=3.0),
        FaultSpec("enospc", at_op=5 + rng.randrange(0, 20), count=1),
        FaultSpec("write_error", blocks=(), count=1),
    ]
    return FaultPlan(seed=seed, specs=specs)


def crash_plan(seed: int, journal_base: int,
               length: int = CRASH_SCAR_BYTES) -> FaultPlan:
    """Post-crash media damage for the remount phase.

    Poisons *length* bytes at *journal_base* (the head of CPU 0's
    journal, read from the pre-crash instance) so the tolerant journal
    scan on the next mount skips at least one record and the file
    system degrades to read-only — the deterministic trigger for a
    degraded-mode interval on the timeline.
    """
    return FaultPlan(seed=seed, specs=[
        FaultSpec("poison", addr=journal_base, length=length)])
