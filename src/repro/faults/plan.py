"""The fault-plan engine: specs, deterministic scheduling, accounting.

See the package docstring for the fault model and DESIGN.md ("Fault
model") for the plan format and degradation ladder.  Determinism contract:
the same ``(seed, specs)`` against the same workload fires the same faults
at the same operations — all randomness flows through one
seeded RNG (``repro.rng.make_rng``) owned by the plan.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import InvalidArgumentError, MediaError
from ..params import CACHELINE
from ..rng import make_rng

FAULT_KINDS = ("poison", "torn_store", "latency", "enospc", "write_error")

#: bounded retry budget for failed block writes (relocations per write op)
MAX_WRITE_RETRIES = 3

#: outcome labels used in counts / metrics
OUTCOMES = ("injected", "masked", "surfaced")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Fields are interpreted per *kind*:

    * ``poison``: lines covering ``[addr, addr+length)`` are poisoned when
      the plan attaches to a device (a discovered bad range).
    * ``torn_store``: the ``at_op``-th device store (0-based, counted only
      while the plan is active) keeps only a seeded 8-byte-granular prefix.
    * ``latency``: device loads/stores in ops ``[at_op, at_op+count)``
      charge ``latency_mult`` times their normal cost.
    * ``enospc``: allocator calls ``[at_op, at_op+count)`` raise ENOSPC.
    * ``write_error``: writes touching any block in ``blocks`` fail (empty
      tuple = every block fails); fires at most ``count`` times (0 =
      unlimited).
    """

    kind: str
    addr: int = -1
    length: int = CACHELINE
    at_op: int = 0
    count: int = 1
    latency_mult: float = 8.0
    blocks: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InvalidArgumentError(f"unknown fault kind {self.kind!r}")
        if self.kind == "poison" and (self.addr < 0 or self.length <= 0):
            raise InvalidArgumentError("poison needs addr >= 0, length > 0")
        if self.at_op < 0 or self.count < 0:
            raise InvalidArgumentError("at_op/count must be non-negative")
        if self.latency_mult < 1.0:
            raise InvalidArgumentError("latency_mult must be >= 1.0")
        object.__setattr__(self, "blocks", tuple(self.blocks))


class FaultPlan:
    """A deterministic schedule of faults plus the fault ledger.

    The plan is attached to a :class:`~repro.pm.device.PMDevice` (which
    calls the ``on_load`` / ``on_store`` hooks) and handed by WineFS to
    its allocator (``take_enospc`` / ``failing_block``).  Every event is
    recorded in :attr:`counts` keyed ``(kind, outcome)``; when a context
    is available the event is mirrored into the metrics registry
    (``fault_events`` counter series, created lazily so an idle plan
    leaves the registry untouched) and, with tracing on, emitted as a
    zero-width trace record.
    """

    def __init__(self, seed: int = 0,
                 specs: Sequence[FaultSpec] = ()) -> None:
        self.seed = seed
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.rng = make_rng(seed)
        self.counts: Dict[Tuple[str, str], int] = {}
        # op counters (advance only while the plan is active)
        self.device_ops = 0
        self.alloc_ops = 0
        self._device = None
        # -- compiled schedule -------------------------------------------
        self._poisoned: Set[int] = set()
        self._pmin = 0
        self._pmax = -1
        self._torn_at: Dict[int, FaultSpec] = {}
        self._latency: List[FaultSpec] = []
        self._enospc: List[FaultSpec] = []
        self._write_errors: List[FaultSpec] = []
        self._we_fired: List[int] = []
        for spec in self.specs:
            if spec.kind == "poison":
                first = spec.addr // CACHELINE
                last = (spec.addr + spec.length - 1) // CACHELINE
                self._poisoned.update(range(first, last + 1))
            elif spec.kind == "torn_store":
                self._torn_at[spec.at_op] = spec
            elif spec.kind == "latency":
                self._latency.append(spec)
            elif spec.kind == "enospc":
                self._enospc.append(spec)
            elif spec.kind == "write_error":
                self._write_errors.append(spec)
                self._we_fired.append(0)
        if self._poisoned:
            self._pmin = min(self._poisoned)
            self._pmax = max(self._poisoned)

    # -- activity -------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        """Plans without specs behave exactly like no plan at all."""
        return bool(self.specs)

    def attach(self, device) -> None:
        """Bind to *device* (gives the hooks the machine cost model) and
        account the pre-poisoned lines."""
        self._device = device
        if self._poisoned and ("poison", "injected") not in self.counts:
            self.counts[("poison", "injected")] = len(self._poisoned)

    @property
    def poisoned_lines(self) -> Set[int]:
        return set(self._poisoned)

    @property
    def wants_write_checks(self) -> bool:
        """Does the FS write path need to consult :meth:`failing_block`?"""
        return bool(self._write_errors)

    # -- ledger ---------------------------------------------------------------

    def note(self, kind: str, outcome: str, ctx=None, **attrs) -> None:
        """Record one fault event (and mirror it to obs when possible)."""
        key = (kind, outcome)
        self.counts[key] = self.counts.get(key, 0) + 1
        if ctx is not None:
            ctx.counters.registry.counter(
                "fault_events", kind=kind, outcome=outcome).inc()
            if ctx.trace.enabled:
                now = ctx.now
                ctx.trace.record(f"fault.{kind}", ctx.cpu, now, now,
                                 outcome=outcome, **attrs)

    def count(self, kind: str, outcome: str) -> int:
        return self.counts.get((kind, outcome), 0)

    # -- device hooks ----------------------------------------------------------

    def on_load(self, addr: int, length: int, ctx) -> None:
        """Device load hook: poison check + latency spikes.

        Raises :class:`~repro.errors.MediaError` when the read intersects
        a poisoned line; otherwise may charge extra latency to *ctx*.
        """
        op = self.device_ops
        self.device_ops = op + 1
        if length <= 0:
            return
        if self._poisoned:
            first = addr // CACHELINE
            last = (addr + length - 1) // CACHELINE
            if first <= self._pmax and last >= self._pmin:
                for line in range(first, last + 1):
                    if line in self._poisoned:
                        self.note("poison", "surfaced", ctx,
                                  addr=addr, line=line)
                        raise MediaError(
                            f"uncorrectable media error: load [{addr:#x}, "
                            f"+{length}) hits poisoned line {line}")
        if self._latency and ctx is not None:
            mult = self._latency_mult_at(op)
            if mult > 1.0:
                machine = self._device.machine
                base = machine.pm_load_ns + machine.pm_read_ns(length)
                ctx.charge((mult - 1.0) * base)
                self.note("latency", "injected", ctx, op=op, load=length)

    def on_store(self, addr: int, data, ctx):
        """Device store hook: torn stores, latency, poison healing.

        Returns the bytes that actually land (a prefix when torn).
        """
        op = self.device_ops
        self.device_ops = op + 1
        length = len(data)
        if length == 0:
            return data
        spec = self._torn_at.get(op)
        if spec is not None and length >= 8:
            # keep a seeded 8-byte-granular prefix strictly shorter than
            # the store (x86 guarantees aligned 8-byte atomicity, §5.2)
            keep = 8 * self.rng.randrange(0, length // 8)
            self.note("torn_store", "injected", ctx, addr=addr,
                      kept=keep, dropped=length - keep)
            data = data[:keep]
            length = keep
        if self._latency and ctx is not None and length:
            mult = self._latency_mult_at(op)
            if mult > 1.0:
                ctx.charge((mult - 1.0)
                           * self._device.machine.pm_write_ns(length))
                self.note("latency", "injected", ctx, op=op, store=length)
        if self._poisoned and length:
            # an overwrite that fully covers a poisoned line heals it
            first_full = (addr + CACHELINE - 1) // CACHELINE
            last_full = (addr + length) // CACHELINE - 1
            if first_full <= last_full and first_full <= self._pmax \
                    and last_full >= self._pmin:
                for line in range(first_full, last_full + 1):
                    if line in self._poisoned:
                        self._poisoned.discard(line)
                        self.note("poison", "masked", ctx, line=line)
                if self._poisoned:
                    self._pmin = min(self._poisoned)
                    self._pmax = max(self._poisoned)
        return data

    def _latency_mult_at(self, op: int) -> float:
        mult = 1.0
        for spec in self._latency:
            if spec.at_op <= op < spec.at_op + spec.count:
                mult = max(mult, spec.latency_mult)
        return mult

    # -- allocator hooks -------------------------------------------------------

    def take_enospc(self, ctx=None) -> bool:
        """Should this allocator call fail with ENOSPC?"""
        op = self.alloc_ops
        self.alloc_ops = op + 1
        for spec in self._enospc:
            if spec.at_op <= op < spec.at_op + spec.count:
                self.note("enospc", "injected", ctx, op=op)
                self.note("enospc", "surfaced", ctx, op=op)
                return True
        return False

    def failing_block(self, blocks: Iterable[int],
                      ctx=None) -> Optional[int]:
        """First physical block in *blocks* whose write would fail.

        Counts one injection per firing; an exhausted spec (``count``
        firings spent) stops failing.
        """
        if not self._write_errors:
            return None
        armed = [i for i, spec in enumerate(self._write_errors)
                 if spec.count == 0 or self._we_fired[i] < spec.count]
        if not armed:
            return None
        for block in blocks:
            for i in armed:
                spec = self._write_errors[i]
                if not spec.blocks or block in spec.blocks:
                    self._we_fired[i] += 1
                    self.note("write_error", "injected", ctx, block=block)
                    return block
        return None

    # -- (de)serialization -----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "specs": [asdict(spec) for spec in self.specs],
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        raw = json.loads(text)
        specs = []
        for entry in raw.get("specs", []):
            entry = dict(entry)
            entry["blocks"] = tuple(entry.get("blocks", ()))
            specs.append(FaultSpec(**entry))
        return cls(seed=int(raw.get("seed", 0)), specs=specs)

    def report_rows(self) -> List[Tuple[str, int, int, int]]:
        """(kind, injected, masked, surfaced) rows for every kind seen."""
        kinds = sorted({k for (k, _o) in self.counts})
        return [(k,
                 self.count(k, "injected"),
                 self.count(k, "masked"),
                 self.count(k, "surfaced")) for k in kinds]

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, specs={len(self.specs)}, "
                f"events={sum(self.counts.values())})")
