"""Deterministic PM fault injection (``repro.faults``).

A :class:`FaultPlan` is a seed-driven, JSON-serializable schedule of
failures injected at the :class:`~repro.pm.device.PMDevice` and
:class:`~repro.core.allocator.AlignmentAwareAllocator` layers:

* ``poison``      — uncorrectable media errors on cachelines (loads raise
  :class:`~repro.errors.MediaError`; a full-line overwrite heals the line);
* ``torn_store``  — a store at a chosen crash point lands only an
  8-byte-granular prefix (journal checksums catch the tear);
* ``latency``     — transient load/store latency spikes over an op window;
* ``enospc``      — allocator space exhaustion on chosen allocations;
* ``write_error`` — block writes to chosen (or all) physical blocks fail,
  exercising the bounded retry-with-relocation path in WineFS.

Injection is **default-off and bit-identical-off**: a device without a
plan (or with an empty plan) takes exactly the code paths and float-add
sequences it does on current main.  The degradation responses live in the
layers themselves (journal, filesystem, allocator, vfs); this package only
decides *when* a fault fires and counts what happened to it.
"""

from .campaign import campaign_plan, crash_plan, serve_campaign_plan
from .plan import (FAULT_KINDS, FaultPlan, FaultSpec, MAX_WRITE_RETRIES)

__all__ = ["FAULT_KINDS", "FaultPlan", "FaultSpec", "MAX_WRITE_RETRIES",
           "campaign_plan", "crash_plan", "serve_campaign_plan"]
