"""Committed baseline of grandfathered lint findings.

The baseline maps finding fingerprints to a human-readable note so
reviewers can see *what* was grandfathered without re-running the lint.
``repro lint`` fails only on findings absent from the baseline;
``repro lint --write-baseline`` regenerates the file from the current
tree (sorted, so the diff is the set change and nothing else).
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import Dict, Iterable, List, Tuple

from .findings import Finding

BASELINE_VERSION = 1


def load_baseline(path: str) -> Dict[str, str]:
    """fingerprint -> note; empty when the file does not exist."""
    if not path or not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline version in {path}")
    return dict(doc.get("findings", {}))


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write every finding's fingerprint; returns the entry count."""
    entries = {
        f.fingerprint: f"{f.rule} {f.path}:{f.qualname or '<module>'} "
                       f"{f.detail}".rstrip()
        for f in findings
    }
    doc = {"version": BASELINE_VERSION,
           "findings": {k: entries[k] for k in sorted(entries)}}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)


def apply_baseline(findings: List[Finding],
                   baseline: Dict[str, str]) -> Tuple[List[Finding], List[str]]:
    """Mark baselined findings; returns (findings, stale fingerprints).

    Stale entries are baseline fingerprints no current finding matches —
    informational (the debt was paid down), never an error.
    """
    out: List[Finding] = []
    live = set()
    for f in findings:
        fp = f.fingerprint
        if fp in baseline:
            live.add(fp)
            f = replace(f, baselined=True)
        out.append(f)
    stale = sorted(set(baseline) - live)
    return out, stale
