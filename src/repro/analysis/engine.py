"""The lint engine: file walking, suppression, caching, reporting.

One parse per file; every rule sees the same :class:`FileContext`.
Rules come in two shapes:

* :class:`FileRule` — looks at one file in isolation and returns
  findings directly (determinism, persistence-ordering, lock-discipline).
* :class:`ProjectRule` — records JSON-serializable *facts* per file,
  then ``finalize()`` crosses file boundaries once every file has been
  seen (snapshot-whitelist drift, metric-name registry resolution).

Findings are suppressed by ``# repro: allow[rule-id] <why>`` on the
flagged line or the line directly above, baselined via the committed
``baseline.json``, and reported in a deterministic order so ``--json``
output is byte-stable for a given tree.
"""

from __future__ import annotations

import ast
import json
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .baseline import apply_baseline, load_baseline, write_baseline
from .cache import LintCache, content_key
from .findings import Finding, number_occurrences

SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([a-z0-9-]+)\]")

#: default lint root and baseline location, relative to the repo root
DEFAULT_TARGET = os.path.join("src", "repro")
DEFAULT_BASELINE = os.path.join("src", "repro", "analysis", "baseline.json")
DEFAULT_CACHE = ".repro-lint-cache.json"


class FileContext:
    """Everything a rule may want to know about one source file."""

    def __init__(self, path: str, relpath: str, source: str,
                 module: Optional[str] = None):
        self.path = path
        self.relpath = relpath.replace(os.sep, "/")
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self.module = module if module is not None else derive_module(path)
        self.suppressions = scan_suppressions(self.lines)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        return _suppressed(self.lines, self.suppressions, rule_id, line)


def derive_module(path: str) -> str:
    """Dotted module name, walking up through ``__init__.py`` package dirs."""
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    d = os.path.dirname(path)
    while os.path.exists(os.path.join(d, "__init__.py")):
        parts.append(os.path.basename(d))
        parent = os.path.dirname(d)
        if parent == d:
            break
        d = parent
    if parts[0] == "__init__":
        parts = parts[1:] or parts
    return ".".join(reversed(parts))


def scan_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """1-based line -> rule ids allowed on that line."""
    out: Dict[int, Set[str]] = {}
    for i, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        ids = set(SUPPRESS_RE.findall(text))
        if ids:
            out[i] = ids
    return out


def _suppressed(lines: Sequence[str], sup: Dict[int, Set[str]],
                rule_id: str, line: int) -> bool:
    """Allowed on the flagged line, or by a comment-only line above.

    A *trailing* allow comment applies only to its own line, so one
    justified site never silently blesses the statement below it.
    """
    if rule_id in sup.get(line, ()):
        return True
    above = line - 1
    if rule_id in sup.get(above, ()) and 0 < above <= len(lines) and \
            lines[above - 1].lstrip().startswith("#"):
        return True
    return False


class FileRule:
    id = "file-rule"
    def run(self, ctx: FileContext) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError


class ProjectRule:
    id = "project-rule"
    def collect(self, ctx: FileContext) -> Dict[str, object]:  # pragma: no cover
        raise NotImplementedError
    def finalize(self, facts: Dict[str, Dict[str, object]]) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError


def default_rules() -> Tuple[List[FileRule], List[ProjectRule]]:
    from .rules.array_state import ArrayStateRule
    from .rules.determinism import DeterminismRule
    from .rules.locks import LockDisciplineRule
    from .rules.metric_names import MetricNamesRule
    from .rules.persistence import PersistenceOrderingRule
    from .rules.snapshot import SnapshotWhitelistRule
    return ([DeterminismRule(), PersistenceOrderingRule(),
             LockDisciplineRule(), ArrayStateRule()],
            [SnapshotWhitelistRule(), MetricNamesRule()])


def iter_python_files(targets: Iterable[str]) -> List[str]:
    out: List[str] = []
    for target in targets:
        if os.path.isfile(target):
            out.append(target)
            continue
        for root, dirs, files in os.walk(target):
            dirs[:] = sorted(d for d in dirs
                             if d not in ("__pycache__", ".git"))
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return sorted(set(out))


class LintResult:
    def __init__(self, findings: List[Finding], stale: List[str],
                 files: int, cache_hits: int, errors: List[str]):
        self.findings = findings
        self.stale = stale
        self.files = files
        self.cache_hits = cache_hits
        self.errors = errors

    @property
    def new_findings(self) -> List[Finding]:
        return [f for f in self.findings if not f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if (self.new_findings or self.errors) else 0

    def render_text(self, verbose: bool = False) -> str:
        lines = [f.render() for f in self.findings
                 if verbose or not f.baselined]
        lines.extend(f"lint error: {e}" for e in self.errors)
        n = len(self.new_findings)
        b = len(self.findings) - n
        tail = (f"{self.files} files checked: {n} finding(s)"
                + (f", {b} baselined" if b else ""))
        if self.stale:
            tail += f", {len(self.stale)} stale baseline entrie(s)"
        lines.append(tail)
        return "\n".join(lines)

    def render_json(self) -> str:
        doc = {
            "files": self.files,
            "findings": [f.as_dict() for f in self.findings],
            "new": len(self.new_findings),
            "baselined": len(self.findings) - len(self.new_findings),
            "stale_baseline": self.stale,
            "errors": self.errors,
            "exit_code": self.exit_code,
        }
        return json.dumps(doc, indent=2, sort_keys=True)


def run_lint(targets: Sequence[str],
             baseline_path: Optional[str] = None,
             cache_path: Optional[str] = None,
             root: Optional[str] = None,
             rules: Optional[Tuple[List[FileRule], List[ProjectRule]]] = None,
             ) -> LintResult:
    """Lint *targets* (files or directories) and return the result.

    *root* anchors the relative paths used in findings and fingerprints
    (default: the common prefix's CWD), so output is location-independent.
    """
    root = os.path.abspath(root or os.getcwd())
    file_rules, project_rules = rules if rules is not None else default_rules()
    cache = LintCache(cache_path)
    per_file: List[Finding] = []
    facts: Dict[str, Dict[str, Dict[str, object]]] = {
        r.id: {} for r in project_rules}
    contexts: Dict[str, FileContext] = {}
    errors: List[str] = []
    paths = iter_python_files(targets)

    for path in paths:
        relpath = os.path.relpath(os.path.abspath(path), root)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
            key = content_key(raw)
            cached = cache.get(relpath.replace(os.sep, "/"), key)
            if cached is not None:
                per_file.extend(LintCache.decode_findings(cached))
                for rid, rf in (cached.get("facts") or {}).items():
                    if rid in facts:
                        facts[rid][relpath.replace(os.sep, "/")] = rf
                continue
            ctx = FileContext(path, relpath, raw.decode("utf-8"))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            errors.append(f"{relpath}: {exc}")
            continue
        contexts[ctx.relpath] = ctx
        file_findings: List[Finding] = []
        for rule in file_rules:
            for f in rule.run(ctx):
                if not ctx.is_suppressed(rule.id, f.line):
                    file_findings.append(f)
        file_facts: Dict[str, Dict[str, object]] = {}
        for rule in project_rules:
            rf = rule.collect(ctx)
            file_facts[rule.id] = rf
            facts[rule.id][ctx.relpath] = rf
        per_file.extend(file_findings)
        cache.put(ctx.relpath, key, file_findings, file_facts)

    project_findings: List[Finding] = []
    for rule in project_rules:
        for f in rule.finalize(facts[rule.id]):
            ctx = contexts.get(f.path)
            if ctx is not None and ctx.is_suppressed(rule.id, f.line):
                continue
            if ctx is None and _suppressed_on_disk(root, f, rule.id):
                continue
            project_findings.append(f)

    cache.save()
    findings = per_file + project_findings
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.detail))
    findings = number_occurrences(findings)

    baseline = load_baseline(baseline_path) if baseline_path else {}
    findings, stale = apply_baseline(findings, baseline)
    return LintResult(findings, stale, files=len(paths),
                      cache_hits=cache.hits, errors=errors)


def _suppressed_on_disk(root: str, f: Finding, rule_id: str) -> bool:
    """Suppression check for findings in cache-hit files (no live ctx)."""
    path = os.path.join(root, f.path)
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError:
        return False
    return _suppressed(lines, scan_suppressions(lines), rule_id, f.line)


def update_baseline(targets: Sequence[str], baseline_path: str,
                    root: Optional[str] = None,
                    cache_path: Optional[str] = None) -> int:
    """Regenerate the baseline from the current findings; returns count."""
    result = run_lint(targets, baseline_path=None, cache_path=cache_path,
                      root=root)
    return write_baseline(baseline_path, result.findings)
