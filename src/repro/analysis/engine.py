"""The lint engine: file walking, suppression, caching, reporting.

One parse per file; every rule sees the same :class:`FileContext`.
Rules come in two shapes:

* :class:`FileRule` — looks at one file in isolation and returns
  findings directly (determinism, persistence-ordering, lock-discipline).
* :class:`ProjectRule` — records JSON-serializable *facts* per file,
  then ``finalize()`` crosses file boundaries once every file has been
  seen (snapshot-whitelist drift, metric-name registry resolution, the
  interprocedural flow analysis).

Findings are suppressed by ``# repro: allow[rule-id] <why>`` on the
flagged line or a comment-only line directly above (stacked allow
comments all apply; an allow above a decorator covers the decorated
``def``; a trailing allow anywhere inside one multi-line statement
covers the whole statement).  Findings are baselined via the committed
``baseline.json`` and reported in a deterministic order so ``--json``
output is byte-stable for a given tree.

Severity tiers: ``error`` findings fail the lint, ``warning`` findings
are reported but never block, ``info`` findings appear only with
``--verbose``.

Incremental mode (``--changed``): the cache records each file's module
name and imported modules, which gives a file-granular over-approximation
of the call graph (a call edge cannot exist without an import edge or
living inside one file).  ``--changed`` re-analyzes only the git-dirty
files plus their strongly-connected region of that graph; every other
file is served straight from the cache.  Per-file results are a pure
function of file content, so the findings are byte-identical to a full
run over the same tree.
"""

from __future__ import annotations

import ast
import json
import os
import re
import subprocess
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .baseline import apply_baseline, load_baseline, write_baseline
from .cache import LintCache, content_key
from .findings import Finding, number_occurrences

SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([a-z0-9-]+)\]")

#: default lint root and baseline location, relative to the repo root
DEFAULT_TARGET = os.path.join("src", "repro")
DEFAULT_BASELINE = os.path.join("src", "repro", "analysis", "baseline.json")
DEFAULT_CACHE = ".repro-lint-cache.json"
#: the flow rules keep their own baseline and cache: their finding set is
#: disjoint from the per-file rules and the caches store different facts
DEFAULT_FLOW_BASELINE = os.path.join(
    "src", "repro", "analysis", "baseline_flow.json")
DEFAULT_FLOW_CACHE = ".repro-lint-flow-cache.json"

_SIMPLE_STMTS = (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr,
                 ast.Return, ast.Raise, ast.Assert, ast.Delete)


class SuppressionIndex:
    """Resolves ``# repro: allow[rule-id]`` comments for one file.

    Three anchors beyond "same line":

    * a run of comment-only lines directly above the flagged line — every
      allow in the run applies, so stacked suppressions for different
      rules don't shadow each other;
    * decorated ``def``/``class`` statements — an allow above (or on) the
      first decorator covers findings anchored at the ``def`` line, where
      the comment physically cannot sit adjacent;
    * multi-line simple statements — a trailing allow on any line of the
      statement covers findings anywhere in its span (compound bodies are
      not spans; an allow inside an ``if`` cannot bless the whole block).
    """

    def __init__(self, lines: Sequence[str],
                 tree: Optional[ast.AST] = None):
        self.lines = lines
        self.sup = scan_suppressions(lines)
        self.extra: Dict[int, Set[str]] = {}
        if tree is not None:
            self._index_tree(tree)

    def _index_tree(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)) and node.decorator_list:
                first = node.decorator_list[0].lineno
                ids = self.sup.get(first, set()) | self._chain_above(first)
                if ids:
                    self.extra.setdefault(node.lineno, set()).update(ids)
            elif isinstance(node, _SIMPLE_STMTS):
                end = getattr(node, "end_lineno", None) or node.lineno
                if end > node.lineno:
                    ids: Set[str] = set()
                    for ln in range(node.lineno, end + 1):
                        ids |= self.sup.get(ln, set())
                    if ids:
                        for ln in range(node.lineno, end + 1):
                            self.extra.setdefault(ln, set()).update(ids)

    def _chain_above(self, line: int) -> Set[str]:
        ids: Set[str] = set()
        i = line - 1
        while 0 < i <= len(self.lines) and \
                self.lines[i - 1].lstrip().startswith("#"):
            ids |= self.sup.get(i, set())
            i -= 1
        return ids

    def allowed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.sup.get(line, ()):
            return True
        if rule_id in self._chain_above(line):
            return True
        return rule_id in self.extra.get(line, ())


class FileContext:
    """Everything a rule may want to know about one source file."""

    def __init__(self, path: str, relpath: str, source: str,
                 module: Optional[str] = None):
        self.path = path
        self.relpath = relpath.replace(os.sep, "/")
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self.module = module if module is not None else derive_module(path)
        self._index = SuppressionIndex(self.lines, self.tree)
        self.suppressions = self._index.sup

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        return self._index.allowed(rule_id, line)


def derive_module(path: str) -> str:
    """Dotted module name, walking up through ``__init__.py`` package dirs."""
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    d = os.path.dirname(path)
    while os.path.exists(os.path.join(d, "__init__.py")):
        parts.append(os.path.basename(d))
        parent = os.path.dirname(d)
        if parent == d:
            break
        d = parent
    if parts[0] == "__init__":
        parts = parts[1:] or parts
    return ".".join(reversed(parts))


def scan_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """1-based line -> rule ids allowed on that line."""
    out: Dict[int, Set[str]] = {}
    for i, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        ids = set(SUPPRESS_RE.findall(text))
        if ids:
            out[i] = ids
    return out


def _suppressed(lines: Sequence[str], sup: Dict[int, Set[str]],
                rule_id: str, line: int) -> bool:
    """Line-based subset of :class:`SuppressionIndex` (no AST anchors)."""
    if rule_id in sup.get(line, ()):
        return True
    above = line - 1
    if rule_id in sup.get(above, ()) and 0 < above <= len(lines) and \
            lines[above - 1].lstrip().startswith("#"):
        return True
    return False


def resolve_import_base(module: str, node: ast.ImportFrom) -> str:
    """Absolute module named by a (possibly relative) ``from X import``."""
    if node.level == 0:
        return node.module or ""
    pkg = module.split(".")[:-1]          # containing package
    drop = node.level - 1
    if drop:
        pkg = pkg[:-drop] if drop <= len(pkg) else []
    base = ".".join(pkg)
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base


def module_imports(tree: ast.AST, module: str) -> List[str]:
    """Modules this file imports (absolute dotted names, sorted)."""
    deps: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                deps.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = resolve_import_base(module, node)
            if base:
                deps.add(base)
                for alias in node.names:
                    deps.add(f"{base}.{alias.name}")
    deps.discard(module)
    return sorted(deps)


def strongly_connected(edges: Dict[str, Iterable[str]],
                       ordered: bool = False) -> List[List[str]]:
    """Tarjan SCCs of a digraph; each component sorted.

    With *ordered*, components come in Tarjan emission order — callees
    before callers — which is the fixpoint order the flow analyses want;
    otherwise the outer list is sorted for stable membership queries.
    """
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    out: List[List[str]] = []
    counter = [0]
    nodes = sorted(set(edges) | {w for ws in edges.values() for w in ws})

    def strong(v: str) -> None:
        # iterative Tarjan: (node, iterator) frames to survive deep graphs
        work = [(v, iter(sorted(edges.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(edges.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                out.append(sorted(comp))

    for v in nodes:
        if v not in index:
            strong(v)
    return out if ordered else sorted(out)


class FileRule:
    id = "file-rule"
    def run(self, ctx: FileContext) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError


class ProjectRule:
    id = "project-rule"
    def collect(self, ctx: FileContext) -> Dict[str, object]:  # pragma: no cover
        raise NotImplementedError
    def finalize(self, facts: Dict[str, Dict[str, object]]) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError


def default_rules() -> Tuple[List[FileRule], List[ProjectRule]]:
    from .rules.array_state import ArrayStateRule
    from .rules.determinism import DeterminismRule
    from .rules.locks import LockDisciplineRule
    from .rules.metric_names import MetricNamesRule
    from .rules.persistence import PersistenceOrderingRule
    from .rules.snapshot import SnapshotWhitelistRule
    return ([DeterminismRule(), PersistenceOrderingRule(),
             LockDisciplineRule(), ArrayStateRule()],
            [SnapshotWhitelistRule(), MetricNamesRule()])


def flow_rules() -> Tuple[List[FileRule], List[ProjectRule]]:
    """The interprocedural rule set behind ``repro lint --flow``."""
    from .flow import FlowAnalysis
    return ([], [FlowAnalysis()])


def iter_python_files(targets: Iterable[str]) -> List[str]:
    out: List[str] = []
    for target in targets:
        if os.path.isfile(target):
            out.append(target)
            continue
        for root, dirs, files in os.walk(target):
            dirs[:] = sorted(d for d in dirs
                             if d not in ("__pycache__", ".git"))
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return sorted(set(out))


class LintResult:
    def __init__(self, findings: List[Finding], stale: List[str],
                 files: int, cache_hits: int, errors: List[str],
                 reanalyzed: Optional[int] = None):
        self.findings = findings
        self.stale = stale
        self.files = files
        self.cache_hits = cache_hits
        self.errors = errors
        self.reanalyzed = (files - cache_hits) if reanalyzed is None \
            else reanalyzed

    @property
    def new_findings(self) -> List[Finding]:
        return [f for f in self.findings if not f.baselined]

    @property
    def new_errors(self) -> List[Finding]:
        return [f for f in self.new_findings if f.severity == "error"]

    @property
    def new_warnings(self) -> List[Finding]:
        return [f for f in self.new_findings if f.severity == "warning"]

    @property
    def exit_code(self) -> int:
        return 1 if (self.new_errors or self.errors) else 0

    def render_text(self, verbose: bool = False) -> str:
        lines = [f.render() for f in self.findings
                 if (verbose or not f.baselined)
                 and (verbose or f.severity != "info")]
        lines.extend(f"lint error: {e}" for e in self.errors)
        n = len(self.new_findings)
        b = len(self.findings) - n
        tail = (f"{self.files} files checked: {n} finding(s)"
                + (f", {b} baselined" if b else ""))
        w = len(self.new_warnings)
        if w:
            tail += f" ({w} warning-level)"
        if self.stale:
            tail += f", {len(self.stale)} stale baseline entrie(s)"
        lines.append(tail)
        return "\n".join(lines)

    def render_json(self) -> str:
        doc = {
            "files": self.files,
            "reanalyzed": self.reanalyzed,
            "findings": [f.as_dict() for f in self.findings],
            "new": len(self.new_findings),
            "new_errors": len(self.new_errors),
            "new_warnings": len(self.new_warnings),
            "baselined": len(self.findings) - len(self.new_findings),
            "stale_baseline": self.stale,
            "errors": self.errors,
            "exit_code": self.exit_code,
        }
        return json.dumps(doc, indent=2, sort_keys=True)


def _git_dirty(root: str) -> Optional[Set[str]]:
    """Worktree-dirty files as posix relpaths under *root*, or None."""
    try:
        top = subprocess.run(
            ["git", "-C", root, "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, timeout=30)
        if top.returncode != 0:
            return None
        toplevel = top.stdout.strip()
        st = subprocess.run(
            ["git", "-C", root, "status", "--porcelain", "-uall"],
            capture_output=True, text=True, timeout=60)
        if st.returncode != 0:
            return None
    except (OSError, subprocess.SubprocessError):
        return None
    out: Set[str] = set()
    for line in st.stdout.splitlines():
        if len(line) < 4:
            continue
        p = line[3:]
        if " -> " in p:
            p = p.split(" -> ")[-1]
        p = p.strip().strip('"')
        rel = os.path.relpath(os.path.join(toplevel, p), root)
        out.add(rel.replace(os.sep, "/"))
    return out


def _dirty_region(cache: LintCache, dirty: Set[str]) -> Set[str]:
    """Dirty files + their strongly-connected region of the module graph."""
    mod_to_rel: Dict[str, str] = {}
    for rel in cache.relpaths():
        mod = (cache.entry(rel) or {}).get("module") or ""
        if mod:
            mod_to_rel[mod] = rel
    edges: Dict[str, List[str]] = {}
    for rel in cache.relpaths():
        entry = cache.entry(rel) or {}
        targets = []
        for dep in entry.get("deps", []):
            # "pkg.mod.symbol" dep names resolve through their module prefix
            while dep and dep not in mod_to_rel:
                dep = dep.rpartition(".")[0]
            if dep and mod_to_rel[dep] != rel:
                targets.append(mod_to_rel[dep])
        edges[rel] = sorted(set(targets))
    region = set(dirty)
    for comp in strongly_connected(edges):
        if any(member in dirty for member in comp):
            region.update(comp)
    return region


def run_lint(targets: Sequence[str],
             baseline_path: Optional[str] = None,
             cache_path: Optional[str] = None,
             root: Optional[str] = None,
             rules: Optional[Tuple[List[FileRule], List[ProjectRule]]] = None,
             changed_only: bool = False,
             ) -> LintResult:
    """Lint *targets* (files or directories) and return the result.

    *root* anchors the relative paths used in findings and fingerprints
    (default: the common prefix's CWD), so output is location-independent.

    With *changed_only*, files outside the git-dirty strongly-connected
    region are served from the cache without so much as a content hash;
    falls back to a full run when git state is unavailable.
    """
    root = os.path.abspath(root or os.getcwd())
    file_rules, project_rules = rules if rules is not None else default_rules()
    cache = LintCache(cache_path)
    per_file: List[Finding] = []
    facts: Dict[str, Dict[str, Dict[str, object]]] = {
        r.id: {} for r in project_rules}
    contexts: Dict[str, FileContext] = {}
    errors: List[str] = []
    reanalyzed = 0
    paths = iter_python_files(targets)

    forced: Optional[Set[str]] = None   # None => --changed inactive
    if changed_only and cache_path:
        dirty = _git_dirty(root)
        if dirty is not None:
            forced = _dirty_region(cache, dirty)

    for path in paths:
        relpath = os.path.relpath(os.path.abspath(path), root)
        rel = relpath.replace(os.sep, "/")
        try:
            cached = None
            raw: Optional[bytes] = None
            if forced is not None and rel not in forced:
                cached = cache.entry(rel)
            if cached is None:
                with open(path, "rb") as fh:
                    raw = fh.read()
                key = content_key(raw)
                cached = cache.get(rel, key)
            else:
                cache.hits += 1
            entry_facts = (cached.get("facts") or {}) if cached else {}
            if cached is not None and \
                    all(r.id in entry_facts for r in project_rules):
                per_file.extend(LintCache.decode_findings(cached))
                for rid, rf in entry_facts.items():
                    if rid in facts:
                        facts[rid][rel] = rf
                continue
            # miss, or cache written under a different rule set
            if raw is None:
                with open(path, "rb") as fh:
                    raw = fh.read()
                key = content_key(raw)
            ctx = FileContext(path, relpath, raw.decode("utf-8"))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            errors.append(f"{rel}: {exc}")
            reanalyzed += 1
            continue
        reanalyzed += 1
        contexts[ctx.relpath] = ctx
        file_findings: List[Finding] = []
        for rule in file_rules:
            for f in rule.run(ctx):
                if not ctx.is_suppressed(f.rule, f.line):
                    file_findings.append(f)
        file_facts: Dict[str, Dict[str, object]] = {}
        for rule in project_rules:
            rf = rule.collect(ctx)
            file_facts[rule.id] = rf
            facts[rule.id][ctx.relpath] = rf
        per_file.extend(file_findings)
        cache.put(ctx.relpath, key, file_findings, file_facts,
                  module=ctx.module,
                  deps=module_imports(ctx.tree, ctx.module))

    project_findings: List[Finding] = []
    for rule in project_rules:
        for f in rule.finalize(facts[rule.id]):
            ctx = contexts.get(f.path)
            if ctx is not None and ctx.is_suppressed(f.rule, f.line):
                continue
            if ctx is None and _suppressed_on_disk(root, f, f.rule):
                continue
            project_findings.append(f)

    cache.save()
    findings = per_file + project_findings
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.detail))
    findings = number_occurrences(findings)

    baseline = load_baseline(baseline_path) if baseline_path else {}
    findings, stale = apply_baseline(findings, baseline)
    return LintResult(findings, stale, files=len(paths),
                      cache_hits=cache.hits, errors=errors,
                      reanalyzed=reanalyzed)


def _suppressed_on_disk(root: str, f: Finding, rule_id: str) -> bool:
    """Suppression check for findings in cache-hit files (no live ctx)."""
    path = os.path.join(root, f.path)
    try:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
    except OSError:
        return False
    lines = source.splitlines()
    try:
        tree: Optional[ast.AST] = ast.parse(source)
    except (SyntaxError, ValueError):
        tree = None
    return SuppressionIndex(lines, tree).allowed(rule_id, f.line)


def update_baseline(targets: Sequence[str], baseline_path: str,
                    root: Optional[str] = None,
                    cache_path: Optional[str] = None,
                    rules: Optional[Tuple[List[FileRule],
                                          List[ProjectRule]]] = None) -> int:
    """Regenerate the baseline from the current findings; returns count."""
    result = run_lint(targets, baseline_path=None, cache_path=cache_path,
                      root=root, rules=rules)
    return write_baseline(baseline_path, result.findings)
