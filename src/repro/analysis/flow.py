"""Project-wide call graph + dataflow facts for interprocedural lint.

This is the layer behind ``repro lint --flow``.  Per file it extracts a
compact, JSON-serializable IR (so the facts ride in the ``LintCache``
like any other project-rule fact):

* every function/method with a structural mini-IR of its body — call
  sites, attribute stores, returns/raises, and the if/loop/try/with
  skeleton the dataflow rules walk;
* the class table (name -> base names) and the import table
  (local name -> absolute dotted target).

``CallGraph`` then stitches the facts together: ``self.method`` calls
resolve through an approximate MRO over the project's own class table,
and *virtually* — a call to ``self.m`` in class ``C`` also targets every
override of ``m`` in subclasses of ``C``.  That is what makes the
engine-toggle dispatch pairs (``FreePool``/``ReferenceFreePool``,
array vs reference page tables) analyze as one family: the reference
kernels subclass the array ones, so both implementations are reachable
from every call site.  Constructor calls resolve the same way
(``FreePool(...)`` targets the ``__init__`` of the class and of every
subclass the toggle could substitute).

Receivers we cannot type (``self._helper.foo()``) resolve to nothing;
the three flow rules (``persist-before-commit``, ``lock-order-cycle``,
``degraded-write-guard``) are written so an unresolved call is a no-op,
which biases the analysis toward false negatives instead of noise —
see DESIGN.md "Static analysis v2" for the policy.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .engine import (FileContext, ProjectRule, resolve_import_base,
                     strongly_connected)
from .findings import Finding
from .rules import dotted, fstring_head

# ---------------------------------------------------------------------------
# IR node tags (JSON lists, first element is the tag)
# ---------------------------------------------------------------------------
CALL = "call"     # ["call", line, col, recv, fn, lockspec|None]
ASGN = "asgn"     # ["asgn", line, col, recv, field]
RET = "ret"       # ["ret", line]
RAISE = "raise"   # ["raise", line]
IF = "if"         # ["if", body, orelse]
LOOP = "loop"     # ["loop", body, orelse]
TRY = "try"       # ["try", body, [handler_bodies...], final]
WITH = "with"     # ["with", [item_call_nodes...], body]

_LOCK_FNS = ("acquire", "release", "atomic")

_TRIVIAL_DOC = (ast.Constant,)


def _is_trivial_body(body: Sequence[ast.stmt]) -> bool:
    """Docstring/``...``/``pass``/``raise NotImplementedError`` only."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare ...
        if isinstance(stmt, ast.Raise):
            exc = stmt.exc
            name = None
            if isinstance(exc, ast.Call):
                name = dotted(exc.func)
            elif exc is not None:
                name = dotted(exc)
            if name and name.split(".")[-1] == "NotImplementedError":
                continue
        return False
    return True


def _lock_spec(expr: ast.AST,
               varmap: Dict[str, List[List[str]]]) -> Optional[List[List[str]]]:
    """Static description of a lock-name argument.

    Base specs: ``["lit", s]`` literal, ``["fstr", head]`` f-string,
    ``["call", fn]`` helper call, ``["attr", name]`` attribute read.
    A Name resolves through the function-local assignment map.
    """
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return [["lit", expr.value]]
    if isinstance(expr, ast.JoinedStr):
        return [["fstr", fstring_head(expr)]]
    if isinstance(expr, ast.Name):
        return varmap.get(expr.id)
    if isinstance(expr, ast.Attribute):
        return [["attr", expr.attr]]
    if isinstance(expr, ast.Call):
        fn = dotted(expr.func)
        if fn:
            return [["call", fn.split(".")[-1]]]
    return None


class _Collector:
    """AST -> file fact dict for one :class:`FileContext`."""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.classes: Dict[str, List[str]] = {}
        self.functions: Dict[str, Dict] = {}
        self.imports: Dict[str, str] = {}

    def run(self) -> Dict:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = alias.asname and alias.name or \
                        alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                base = resolve_import_base(self.ctx.module, node)
                if not base:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = \
                        f"{base}.{alias.name}"
        self._visit_body(self.ctx.tree.body, prefix="", cls=None)
        return {
            "module": self.ctx.module,
            "relpath": self.ctx.relpath,
            "classes": self.classes,
            "imports": self.imports,
            "functions": self.functions,
        }

    def _visit_body(self, body: Sequence[ast.stmt], prefix: str,
                    cls: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                bases = [dotted(b) for b in stmt.bases]
                self.classes[stmt.name] = [b for b in bases if b]
                qual = f"{prefix}.{stmt.name}" if prefix else stmt.name
                self._visit_body(stmt.body, prefix=qual, cls=stmt.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{stmt.name}" if prefix else stmt.name
                self._collect_function(qual, cls, stmt)
                # nested defs are separate (rarely-called) closures; their
                # bodies are deliberately NOT inlined into the parent IR
            elif isinstance(stmt, ast.If):
                # defs guarded by TYPE_CHECKING / version checks still count
                self._visit_body(stmt.body, prefix, cls)
                self._visit_body(stmt.orelse, prefix, cls)
            elif isinstance(stmt, ast.Try):
                self._visit_body(stmt.body, prefix, cls)
                for handler in stmt.handlers:
                    self._visit_body(handler.body, prefix, cls)

    def _collect_function(self, qual: str, cls: Optional[str],
                          node: ast.AST) -> None:
        varmap = self._local_lock_vars(node)
        fact = {
            "line": node.lineno,
            "name": node.name,
            "cls": cls,
            "trivial": _is_trivial_body(node.body),
            "body": self._block(node.body, varmap),
            "lock_returns": self._lock_returns(node, varmap),
        }
        self.functions[qual] = fact

    def _local_lock_vars(self, fn: ast.AST) -> Dict[str, List[List[str]]]:
        out: Dict[str, List[List[str]]] = {}
        for node in self._own_walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                spec = _lock_spec(node.value, {})
                if spec:
                    out.setdefault(node.targets[0].id, []).extend(
                        s for s in spec if s not in
                        out.get(node.targets[0].id, []))
        return out

    def _lock_returns(self, fn: ast.AST,
                      varmap: Dict[str, List[List[str]]]) -> List[str]:
        """Lock namespaces this function can return (for helper resolution)."""
        spaces: List[str] = []
        for node in self._own_walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                spec = _lock_spec(node.value, varmap) or []
                for base in spec:
                    ns = namespace_of(base)
                    if ns and ns not in spaces:
                        spaces.append(ns)
        return spaces

    @staticmethod
    def _own_walk(fn: ast.AST) -> Iterable[ast.AST]:
        """ast.walk that does not descend into nested function defs."""
        stack = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # -- statement -> IR ---------------------------------------------------

    def _block(self, body: Sequence[ast.stmt],
               varmap: Dict[str, List[List[str]]]) -> List:
        out: List = []
        for stmt in body:
            self._stmt(stmt, out, varmap)
        return out

    def _calls_in(self, node: ast.AST, out: List,
                  varmap: Dict[str, List[List[str]]]) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            fn_dotted = dotted(sub.func)
            recv, fn = "", ""
            if fn_dotted:
                parts = fn_dotted.split(".")
                fn = parts[-1]
                recv = ".".join(parts[:-1])
            elif isinstance(sub.func, ast.Attribute):
                fn = sub.func.attr
                if isinstance(sub.func.value, ast.Call) and \
                        isinstance(sub.func.value.func, ast.Name) and \
                        sub.func.value.func.id == "super":
                    recv = "super"
                else:
                    recv = "<expr>"
            else:
                continue
            lockspec = None
            if fn in _LOCK_FNS and sub.args:
                lockspec = _lock_spec(sub.args[0], varmap)
            out.append([CALL, sub.lineno, sub.col_offset, recv, fn, lockspec])

    def _asgn_targets(self, stmt: ast.AST, out: List) -> None:
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        flat: List[ast.AST] = []
        for t in targets:
            if isinstance(t, (ast.Tuple, ast.List)):
                flat.extend(t.elts)
            else:
                flat.append(t)
        for t in flat:
            if isinstance(t, ast.Attribute):
                recv = dotted(t.value) or "<expr>"
                out.append([ASGN, t.lineno, t.col_offset, recv, t.attr])
            elif isinstance(t, ast.Subscript) and \
                    isinstance(t.value, ast.Attribute):
                recv = dotted(t.value.value) or "<expr>"
                out.append([ASGN, t.lineno, t.col_offset, recv, t.value.attr])

    def _stmt(self, stmt: ast.stmt, out: List,
              varmap: Dict[str, List[List[str]]]) -> None:
        if isinstance(stmt, ast.If):
            self._calls_in(stmt.test, out, varmap)
            out.append([IF, self._block(stmt.body, varmap),
                        self._block(stmt.orelse, varmap)])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._calls_in(stmt.iter, out, varmap)
            out.append([LOOP, self._block(stmt.body, varmap),
                        self._block(stmt.orelse, varmap)])
        elif isinstance(stmt, ast.While):
            self._calls_in(stmt.test, out, varmap)
            out.append([LOOP, self._block(stmt.body, varmap),
                        self._block(stmt.orelse, varmap)])
        elif isinstance(stmt, ast.Try):
            handlers = [self._block(h.body, varmap) for h in stmt.handlers]
            out.append([TRY,
                        self._block(stmt.body + stmt.orelse, varmap),
                        handlers,
                        self._block(stmt.finalbody, varmap)])
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            items: List = []
            for item in stmt.items:
                self._calls_in(item.context_expr, items, varmap)
            out.append([WITH, items, self._block(stmt.body, varmap)])
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._calls_in(stmt.value, out, varmap)
            out.append([RET, stmt.lineno])
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._calls_in(stmt.exc, out, varmap)
            out.append([RAISE, stmt.lineno])
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested scope: not part of this function's control flow
        else:
            self._calls_in(stmt, out, varmap)
            self._asgn_targets(stmt, out)


def collect_file_facts(ctx: FileContext) -> Dict:
    return _Collector(ctx).run()


def namespace_of(base_spec: Sequence[str]) -> Optional[str]:
    """Lock namespace named by one base spec, "?" unknown, None for none."""
    kind, val = base_spec[0], base_spec[1]
    if kind in ("lit", "fstr"):
        head = val.split(":")[0].strip()
        return head or "?"
    if kind in ("attr", "call"):
        return "?"
    return None


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------

class FuncInfo:
    __slots__ = ("fid", "module", "relpath", "qual", "cls", "name",
                 "line", "body", "lock_returns", "trivial")

    def __init__(self, fid: str, module: str, relpath: str, qual: str,
                 fact: Dict):
        self.fid = fid
        self.module = module
        self.relpath = relpath
        self.qual = qual
        self.cls = fact.get("cls")
        self.name = fact.get("name", qual.split(".")[-1])
        self.line = fact.get("line", 1)
        self.body = fact.get("body", [])
        self.lock_returns = fact.get("lock_returns", [])
        self.trivial = bool(fact.get("trivial"))


ClassKey = Tuple[str, str]   # (module, class name)


class CallGraph:
    def __init__(self, facts: Dict[str, Dict]):
        #: fid ("module:qual") -> FuncInfo
        self.functions: Dict[str, FuncInfo] = {}
        #: module -> {bare function name -> fid}
        self.module_funcs: Dict[str, Dict[str, str]] = {}
        #: (module, cls) -> {method name -> fid}
        self.class_methods: Dict[ClassKey, Dict[str, str]] = {}
        #: (module, cls) -> base class keys (resolved, in order)
        self.class_bases: Dict[ClassKey, List[ClassKey]] = {}
        #: (module, cls) -> transitive subclasses
        self.subclasses: Dict[ClassKey, Set[ClassKey]] = {}
        #: class name -> every key with that name (fallback resolution)
        self._by_name: Dict[str, List[ClassKey]] = {}
        self._imports: Dict[str, Dict[str, str]] = {}
        self._mro_cache: Dict[ClassKey, List[ClassKey]] = {}
        self._edges_cache: Dict[str, List[str]] = {}

        for relpath in sorted(facts):
            fact = facts[relpath] or {}
            module = fact.get("module", "")
            self._imports[module] = fact.get("imports", {})
            for cls in fact.get("classes", {}):
                key = (module, cls)
                self.class_methods.setdefault(key, {})
                self._by_name.setdefault(cls, []).append(key)
            for qual in sorted(fact.get("functions", {})):
                ffact = fact["functions"][qual]
                fid = f"{module}:{qual}"
                info = FuncInfo(fid, module, relpath, qual, ffact)
                self.functions[fid] = info
                if info.cls:
                    self.class_methods.setdefault(
                        (module, info.cls), {})[info.name] = fid
                elif "." not in qual:
                    self.module_funcs.setdefault(module, {})[qual] = fid

        # resolve base-class names now that every class is known
        for relpath in sorted(facts):
            fact = facts[relpath] or {}
            module = fact.get("module", "")
            for cls, bases in fact.get("classes", {}).items():
                key = (module, cls)
                resolved = []
                for base in bases:
                    bk = self._resolve_class_name(module, base)
                    if bk is not None:
                        resolved.append(bk)
                self.class_bases[key] = resolved
        for key in self.class_bases:
            for anc in self.mro(key)[1:]:
                self.subclasses.setdefault(anc, set()).add(key)

    # -- class machinery ---------------------------------------------------

    def _resolve_class_name(self, module: str,
                            name: str) -> Optional[ClassKey]:
        parts = name.split(".")
        imports = self._imports.get(module, {})
        if len(parts) == 1:
            if (module, name) in self.class_methods:
                return (module, name)
            target = imports.get(name)
            if target:
                mod, _, cls = target.rpartition(".")
                if (mod, cls) in self.class_methods:
                    return (mod, cls)
                return self._global_class(cls)
            return self._global_class(name)
        head, rest = parts[0], parts[1:]
        prefix = imports.get(head, head)
        full = ".".join([prefix] + rest)
        mod, _, cls = full.rpartition(".")
        if (mod, cls) in self.class_methods:
            return (mod, cls)
        return self._global_class(parts[-1])

    def _global_class(self, name: str) -> Optional[ClassKey]:
        keys = self._by_name.get(name, [])
        return keys[0] if len(keys) == 1 else None

    def mro(self, key: ClassKey) -> List[ClassKey]:
        cached = self._mro_cache.get(key)
        if cached is not None:
            return cached
        order: List[ClassKey] = []
        seen: Set[ClassKey] = set()

        def visit(k: ClassKey) -> None:
            if k in seen:
                return
            seen.add(k)
            order.append(k)
            for base in self.class_bases.get(k, []):
                visit(base)

        visit(key)
        self._mro_cache[key] = order
        return order

    def resolve_method(self, key: ClassKey, name: str,
                       skip_self: bool = False) -> Optional[str]:
        mro = self.mro(key)
        for k in (mro[1:] if skip_self else mro):
            fid = self.class_methods.get(k, {}).get(name)
            if fid is not None:
                return fid
        return None

    def virtual_targets(self, key: ClassKey, name: str) -> List[str]:
        """MRO target plus every subclass override (the toggle family)."""
        out: Set[str] = set()
        base = self.resolve_method(key, name)
        if base is not None:
            out.add(base)
        for sub in self.subclasses.get(key, ()):  # overrides below `key`
            fid = self.class_methods.get(sub, {}).get(name)
            if fid is not None:
                out.add(fid)
        return sorted(out)

    def constructor_targets(self, key: ClassKey) -> List[str]:
        out: Set[str] = set()
        for k in [key] + sorted(self.subclasses.get(key, set())):
            fid = self.resolve_method(k, "__init__")
            if fid is not None:
                out.add(fid)
        return sorted(out)

    # -- call resolution ---------------------------------------------------

    def resolve_call(self, caller: FuncInfo, recv: str,
                     fn: str) -> List[str]:
        if recv in ("self", "cls"):
            if caller.cls:
                return self.virtual_targets((caller.module, caller.cls), fn)
            return []
        if recv == "super":
            if caller.cls:
                fid = self.resolve_method((caller.module, caller.cls), fn,
                                          skip_self=True)
                return [fid] if fid else []
            return []
        if recv == "":
            funcs = self.module_funcs.get(caller.module, {})
            if fn in funcs:
                return [funcs[fn]]
            if (caller.module, fn) in self.class_methods:
                return self.constructor_targets((caller.module, fn))
            target = self._imports.get(caller.module, {}).get(fn)
            if target:
                mod, _, name = target.rpartition(".")
                if name in self.module_funcs.get(mod, {}):
                    return [self.module_funcs[mod][name]]
                if (mod, name) in self.class_methods:
                    return self.constructor_targets((mod, name))
                ck = self._global_class(name)
                if ck is not None:
                    return self.constructor_targets(ck)
            return []
        if recv == "<expr>":
            return []
        # dotted receiver: module alias or imported module attribute
        parts = recv.split(".")
        prefix = self._imports.get(caller.module, {}).get(parts[0])
        if prefix is None and parts[0] in self.module_funcs:
            prefix = parts[0]
        if prefix is not None:
            mod = ".".join([prefix] + parts[1:])
            if fn in self.module_funcs.get(mod, {}):
                return [self.module_funcs[mod][fn]]
            if (mod, fn) in self.class_methods:
                return self.constructor_targets((mod, fn))
        return []

    def call_edges(self, fid: str) -> List[str]:
        """Resolved callee fids for every call site in *fid* (cached)."""
        cached = self._edges_cache.get(fid)
        if cached is not None:
            return cached
        info = self.functions[fid]
        out: Set[str] = set()

        def walk(block: List) -> None:
            for node in block:
                tag = node[0]
                if tag == CALL:
                    out.update(self.resolve_call(info, node[3], node[4]))
                elif tag == IF or tag == LOOP:
                    walk(node[1])
                    walk(node[2])
                elif tag == TRY:
                    walk(node[1])
                    for h in node[2]:
                        walk(h)
                    walk(node[3])
                elif tag == WITH:
                    walk(node[1])
                    walk(node[2])

        walk(info.body)
        out.discard(fid)
        edges = sorted(out)
        self._edges_cache[fid] = edges
        return edges

    def topo_sccs(self) -> List[List[str]]:
        """Function SCCs, callees before callers (fixpoint order)."""
        edges = {fid: self.call_edges(fid) for fid in sorted(self.functions)}
        return strongly_connected(edges, ordered=True)

    def resolve_lock_namespaces(self, caller: FuncInfo,
                                lockspec: Optional[List]) -> List[str]:
        """Namespaces a lock-name spec can denote ("?" = unresolvable)."""
        if not lockspec:
            return ["?"]
        out: List[str] = []
        for base in lockspec:
            ns = namespace_of(base)
            if base[0] == "call":
                # helper function that builds the name (e.g. _ino_lock)
                spaces: List[str] = []
                for fid in self.resolve_call(caller, "self", base[1]) or \
                        self.resolve_call(caller, "", base[1]):
                    spaces.extend(self.functions[fid].lock_returns)
                concrete = [s for s in spaces if s != "?"]
                if concrete:
                    for s in concrete:
                        if s not in out:
                            out.append(s)
                    continue
                ns = "?"
            if ns and ns not in out:
                out.append(ns)
        concrete = [s for s in out if s != "?"]
        return concrete or ["?"]


class FlowAnalysis(ProjectRule):
    """Umbrella project rule running the interprocedural checkers.

    One fact-collection pass feeds all three rules; findings carry the
    individual rule ids (``persist-before-commit``, ``lock-order-cycle``,
    ``degraded-write-guard``) so suppressions and baselines stay
    per-rule.
    """

    id = "flow"

    def __init__(self, checkers: Optional[List] = None):
        if checkers is None:
            from .rules.flow_guards import DegradedWriteGuard
            from .rules.flow_locks import LockOrderCycle
            from .rules.flow_persist import PersistBeforeCommit
            checkers = [PersistBeforeCommit(), LockOrderCycle(),
                        DegradedWriteGuard()]
        self.checkers = checkers

    def collect(self, ctx: FileContext) -> Dict[str, object]:
        return collect_file_facts(ctx)

    def finalize(self, facts: Dict[str, Dict[str, object]]) -> List[Finding]:
        graph = CallGraph(facts)
        findings: List[Finding] = []
        for checker in self.checkers:
            findings.extend(checker.check(graph))
        return findings
