"""Content-hash keyed per-file lint cache.

The AST pass over ``src/repro`` is cheap but not free; CI runs it on
every push.  The cache keys each file's findings by the sha256 of its
*content* (never mtime — CI checkouts have fresh mtimes) salted with a
**rule-set hash**: a digest over every ``repro.analysis`` source file.
Editing any rule, the engine, or the flow layer therefore invalidates
the whole cache automatically — no manual version bump to forget —
while an untouched tree re-lints from the cache in milliseconds.

Only per-file rule results are cached.  Project rules (snapshot
whitelist drift, metric registry, the interprocedural flow analysis)
cross file boundaries, so they cache their per-file *facts* the same
way but always re-run the cross-file finalize step — it is O(files)
dict work, not parsing.

Each entry also records the file's module name and imported-module
list; the engine uses those to rebuild the module dependency graph
without re-parsing, which is what makes ``--changed`` (re-analyze only
the git-dirty strongly-connected region) possible.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from .findings import Finding

#: bump when cache-key semantics themselves change (content of entries
#: is guarded by ruleset_hash(), which tracks rule/engine edits)
ENGINE_VERSION = 2

_CACHE_SCHEMA = 2

_RULESET_HASH: Optional[str] = None


def ruleset_hash() -> str:
    """Digest of every source file in the ``repro.analysis`` package.

    Folding this into the content key means a cached file can never skip
    re-analysis after a rule edit: change one byte of any rule module and
    every key changes.  Computed once per process.
    """
    global _RULESET_HASH
    if _RULESET_HASH is None:
        pkg_dir = os.path.dirname(os.path.abspath(__file__))
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(pkg_dir)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, pkg_dir)
                h.update(rel.encode())
                try:
                    with open(full, "rb") as fh:
                        h.update(fh.read())
                except OSError:
                    h.update(b"<unreadable>")
        _RULESET_HASH = h.hexdigest()
    return _RULESET_HASH


def content_key(source: bytes) -> str:
    h = hashlib.sha256()
    h.update(f"repro-lint-v{ENGINE_VERSION}|{ruleset_hash()}|".encode())
    h.update(source)
    return h.hexdigest()


class LintCache:
    """findings + project-rule facts per (relpath, content sha256)."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self._entries: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        if path and os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as fh:
                    doc = json.load(fh)
                if doc.get("schema") == _CACHE_SCHEMA and \
                        doc.get("engine") == ENGINE_VERSION and \
                        doc.get("ruleset") == ruleset_hash():
                    self._entries = doc.get("files", {})
            except (OSError, ValueError):
                self._entries = {}

    def get(self, relpath: str, key: str) -> Optional[Dict]:
        entry = self._entries.get(relpath)
        if entry and entry.get("key") == key:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def entry(self, relpath: str) -> Optional[Dict]:
        """Raw cached entry regardless of content key (for dep graphs)."""
        return self._entries.get(relpath)

    def relpaths(self) -> List[str]:
        return sorted(self._entries)

    def put(self, relpath: str, key: str, findings: List[Finding],
            facts: Dict[str, object], module: str = "",
            deps: Optional[List[str]] = None) -> None:
        self._entries[relpath] = {
            "key": key,
            "findings": [f.as_dict() for f in findings],
            "facts": facts,
            "module": module,
            "deps": sorted(deps or []),
        }

    @staticmethod
    def decode_findings(entry: Dict) -> List[Finding]:
        out = []
        for d in entry.get("findings", []):
            out.append(Finding(
                rule=d["rule"], path=d["path"], line=d["line"],
                col=d["col"], message=d["message"], hint=d.get("hint", ""),
                qualname=d.get("qualname", ""), detail=d.get("detail", ""),
                occurrence=d.get("occurrence", 0),
                severity=d.get("severity", "error"),
                witness=tuple((hop[0], hop[1], hop[2])
                              for hop in d.get("witness", [])),
            ))
        return out

    def save(self) -> None:
        if not self.path:
            return
        doc = {"schema": _CACHE_SCHEMA, "engine": ENGINE_VERSION,
               "ruleset": ruleset_hash(), "files": self._entries}
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            os.replace(tmp, self.path)
        except OSError:
            pass  # cache is best-effort; never fail the lint over it
