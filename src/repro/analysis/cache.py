"""Content-hash keyed per-file lint cache.

The AST pass over ``src/repro`` is cheap but not free; CI runs it on
every push.  The cache keys each file's findings by the sha256 of its
*content* (never mtime — CI checkouts have fresh mtimes) salted with
``ENGINE_VERSION``, so editing a rule invalidates everything while an
untouched tree re-lints from the cache in milliseconds.

Only per-file rule results are cached.  Project rules (snapshot
whitelist drift, metric registry) cross file boundaries, so they cache
their per-file *facts* the same way but always re-run the cross-file
finalize step — it is O(files) dict work, not parsing.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from .findings import Finding

#: bump when any rule or the engine changes observable behaviour
ENGINE_VERSION = 1

_CACHE_SCHEMA = 1


def content_key(source: bytes) -> str:
    h = hashlib.sha256()
    h.update(f"repro-lint-v{ENGINE_VERSION}|".encode())
    h.update(source)
    return h.hexdigest()


class LintCache:
    """findings + project-rule facts per (relpath, content sha256)."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self._entries: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        if path and os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as fh:
                    doc = json.load(fh)
                if doc.get("schema") == _CACHE_SCHEMA and \
                        doc.get("engine") == ENGINE_VERSION:
                    self._entries = doc.get("files", {})
            except (OSError, ValueError):
                self._entries = {}

    def get(self, relpath: str, key: str) -> Optional[Dict]:
        entry = self._entries.get(relpath)
        if entry and entry.get("key") == key:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, relpath: str, key: str, findings: List[Finding],
            facts: Dict[str, object]) -> None:
        self._entries[relpath] = {
            "key": key,
            "findings": [f.as_dict() for f in findings],
            "facts": facts,
        }

    @staticmethod
    def decode_findings(entry: Dict) -> List[Finding]:
        out = []
        for d in entry.get("findings", []):
            out.append(Finding(
                rule=d["rule"], path=d["path"], line=d["line"],
                col=d["col"], message=d["message"], hint=d.get("hint", ""),
                qualname=d.get("qualname", ""), detail=d.get("detail", ""),
            ))
        return out

    def save(self) -> None:
        if not self.path:
            return
        doc = {"schema": _CACHE_SCHEMA, "engine": ENGINE_VERSION,
               "files": self._entries}
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            os.replace(tmp, self.path)
        except OSError:
            pass  # cache is best-effort; never fail the lint over it
