"""Finding records and fingerprints for the lint engine.

A finding pins a rule violation to ``path:line:col`` for the human, and
to a *line-independent* fingerprint for the baseline: the fingerprint
hashes (rule, path, enclosing qualname, detail slug, occurrence index)
so grandfathered findings survive unrelated edits that only shift line
numbers, while a second identical violation in the same function is a
new finding.

Findings carry a severity tier:

* ``error`` — invariant violation; blocks the lint (non-zero exit)
* ``warning`` — reported and counted, but does not fail the run
* ``info`` — shown only with ``--verbose``

Interprocedural findings additionally carry a *witness* call chain:
``(label, path, line)`` hops from the defect's origin to the point the
invariant breaks (store site → … → commit site).  The witness is for
the human and the SARIF export; it never feeds the fingerprint, so a
baseline entry survives refactors that merely reroute the chain.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

SEVERITIES = ("error", "warning", "info")

#: ``severity`` -> SARIF 2.1.0 ``level``
SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


@dataclass(frozen=True)
class Finding:
    rule: str            # rule id, e.g. "determinism"
    path: str            # file path as linted (posix separators)
    line: int
    col: int
    message: str
    hint: str = ""
    qualname: str = ""   # enclosing Class.method / function, "" = module
    detail: str = ""     # stable slug (API name, receiver, field, ...)
    occurrence: int = 0  # disambiguates identical (qualname, detail) hits
    severity: str = "error"
    #: interprocedural witness chain: (label, path, line) hops
    witness: Tuple[Tuple[str, str, int], ...] = field(default=())
    baselined: bool = False

    @property
    def fingerprint(self) -> str:
        raw = "|".join([self.rule, self.path.replace("\\", "/"),
                        self.qualname, self.detail, str(self.occurrence)])
        return hashlib.sha1(raw.encode()).hexdigest()[:16]

    def render(self) -> str:
        head = f"{self.path}:{self.line}:{self.col}: [{self.rule}] "
        if self.severity != "error":
            head += f"{self.severity}: "
        out = head + self.message
        if self.hint:
            out += f"  (hint: {self.hint})"
        if self.baselined:
            out += "  [baselined]"
        for label, path, line in self.witness:
            out += f"\n    via {label} ({path}:{line})"
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule, "path": self.path, "line": self.line,
            "col": self.col, "message": self.message, "hint": self.hint,
            "qualname": self.qualname, "detail": self.detail,
            "occurrence": self.occurrence, "severity": self.severity,
            "witness": [list(hop) for hop in self.witness],
            "fingerprint": self.fingerprint, "baselined": self.baselined,
        }


def number_occurrences(findings: List[Finding]) -> List[Finding]:
    """Assign occurrence indexes to otherwise-identical findings.

    Input order (source order within a file) determines the index, so the
    numbering is deterministic for a given tree state.
    """
    seen: Dict[str, int] = {}
    out: List[Finding] = []
    for f in findings:
        key = "|".join([f.rule, f.path, f.qualname, f.detail])
        n = seen.get(key, 0)
        seen[key] = n + 1
        out.append(replace(f, occurrence=n) if n else f)
    return out
