"""repro.analysis — the invariant-enforcing static analysis suite.

``repro lint`` parses ``src/repro`` once and runs six codebase-specific
per-file rules over the ASTs (see :mod:`repro.analysis.rules`):
determinism, persistence-ordering, lock-discipline, array-kernel
containment, snapshot-whitelist drift, and metric/span-name registry
resolution.  ``repro lint --flow`` runs the interprocedural layer
(:mod:`repro.analysis.flow`): a project-wide call graph feeding three
summary-based checkers — persist-before-commit, lock-order-cycle and
degraded-write-guard — whose findings carry witness call chains.

Findings are suppressed inline with ``# repro: allow[rule-id] <why>``,
or grandfathered in the committed ``baseline.json`` /
``baseline_flow.json``; CI fails on anything new.  ``--sarif`` exports
SARIF 2.1.0; ``--changed`` re-analyzes only the git-dirty strongly-
connected region of the module graph.

Public surface:

* :func:`run_lint` / :class:`LintResult` — programmatic entry point
* :func:`update_baseline` — regenerate a committed baseline
* :func:`default_rules` / :func:`flow_rules` — the two rule sets
* :class:`FileContext`, :class:`FileRule`, :class:`ProjectRule` — for
  writing new rules (and for the fixture tests)
* :func:`to_sarif` / :func:`validate_sarif` — SARIF 2.1.0 export
"""

from .engine import (DEFAULT_BASELINE, DEFAULT_CACHE, DEFAULT_FLOW_BASELINE,
                     DEFAULT_FLOW_CACHE, DEFAULT_TARGET, FileContext,
                     FileRule, LintResult, ProjectRule, default_rules,
                     flow_rules, run_lint, update_baseline)
from .findings import Finding
from .sarif import to_sarif, validate_sarif

__all__ = [
    "DEFAULT_BASELINE", "DEFAULT_CACHE", "DEFAULT_FLOW_BASELINE",
    "DEFAULT_FLOW_CACHE", "DEFAULT_TARGET",
    "FileContext", "FileRule", "Finding", "LintResult", "ProjectRule",
    "default_rules", "flow_rules", "run_lint", "to_sarif",
    "update_baseline", "validate_sarif",
]
