"""repro.analysis — the invariant-enforcing static analysis suite.

``repro lint`` parses ``src/repro`` once and runs five codebase-specific
rules over the ASTs (see :mod:`repro.analysis.rules`): determinism,
persistence-ordering, lock-discipline, snapshot-whitelist drift, and
metric/span-name registry resolution.  Findings are suppressed inline
with ``# repro: allow[rule-id] <why>``, or grandfathered in the
committed ``baseline.json``; CI fails on anything new.

Public surface:

* :func:`run_lint` / :class:`LintResult` — programmatic entry point
* :func:`update_baseline` — regenerate the committed baseline
* :class:`FileContext`, :class:`FileRule`, :class:`ProjectRule` — for
  writing new rules (and for the fixture tests)
"""

from .engine import (DEFAULT_BASELINE, DEFAULT_CACHE, DEFAULT_TARGET,
                     FileContext, FileRule, LintResult, ProjectRule,
                     default_rules, run_lint, update_baseline)
from .findings import Finding

__all__ = [
    "DEFAULT_BASELINE", "DEFAULT_CACHE", "DEFAULT_TARGET",
    "FileContext", "FileRule", "Finding", "LintResult", "ProjectRule",
    "default_rules", "run_lint", "update_baseline",
]
