"""SARIF 2.1.0 export for lint results.

CI uploads the document as an artifact (and code-scanning UIs ingest it
directly), so the export sticks to the well-trodden core of the spec:
one run, a tool driver with per-rule metadata, one result per finding
with level, message, physical location, a stable partial fingerprint
(the same line-drift-immune fingerprint the baseline uses), and the
witness call chain as ``relatedLocations``.

``validate_sarif`` structurally checks the constraints of the 2.1.0
schema this exporter exercises — required properties, enum values,
location shape — without fetching the schema (CI runs offline).  Tests
and the CI job both run every emitted document through it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .findings import SARIF_LEVELS, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = ("none", "note", "warning", "error")

#: rule id -> (short description, default severity)
RULE_META: Dict[str, tuple] = {
    "determinism": ("wall-clock, global RNG, or unordered iteration in "
                    "simulated code", "error"),
    "persistence-ordering": ("PMDevice.store not flushed+fenced on every "
                             "path out of the function", "error"),
    "lock-discipline": ("inode-field mutation outside a lock acquisition, "
                        "or unregistered lock namespace", "error"),
    "snapshot-whitelist": ("persisted-graph module missing from the "
                           "snapshot codec whitelist", "error"),
    "metric-names": ("counter/gauge/span name absent from repro.obs.names",
                     "error"),
    "array-kernel": ("array-backed hot state mutated outside its kernel "
                     "modules", "error"),
    "persist-before-commit": ("PM store reaches a journal commit without "
                              "an intervening persist()/fence", "error"),
    "lock-order-cycle": ("cycle in the global lock-order graph", "error"),
    "degraded-write-guard": ("mutating VFS entry point does not dominate "
                             "a _check_writable() call", "error"),
}


def to_sarif(findings: List[Finding],
             tool_version: str = "2.0",
             base_uri: Optional[str] = None) -> Dict:
    rule_ids = sorted({f.rule for f in findings} | set(RULE_META))
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    rules = []
    for rid in rule_ids:
        desc, default = RULE_META.get(rid, (rid, "error"))
        rules.append({
            "id": rid,
            "shortDescription": {"text": desc},
            "defaultConfiguration": {"level": SARIF_LEVELS.get(default,
                                                               "error")},
        })
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": SARIF_LEVELS.get(f.severity, "error"),
            "message": {"text": f.message + (f"  (hint: {f.hint})"
                                             if f.hint else "")},
            "locations": [_location(f.path, f.line, f.col + 1)],
            "partialFingerprints": {"reproLint/v1": f.fingerprint},
            "baselineState": "unchanged" if f.baselined else "new",
        }
        if f.witness:
            result["relatedLocations"] = [
                dict(_location(path, line, 1),
                     message={"text": label})
                for (label, path, line) in f.witness
            ]
        results.append(result)
    run: Dict = {
        "tool": {"driver": {
            "name": "repro-lint",
            "informationUri": "https://example.invalid/repro",
            "version": tool_version,
            "rules": rules,
        }},
        "results": results,
        "columnKind": "utf16CodeUnits",
    }
    if base_uri:
        uri = base_uri if base_uri.endswith("/") else base_uri + "/"
        run["originalUriBaseIds"] = {"SRCROOT": {"uri": "file://" + uri}}
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def _location(path: str, line: int, col: int) -> Dict:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": {"startLine": max(1, int(line)),
                       "startColumn": max(1, int(col))},
        }
    }


def validate_sarif(doc: object) -> List[str]:
    """Structural 2.1.0 validation; returns a list of problems (empty=ok)."""
    problems: List[str] = []

    def err(msg: str) -> None:
        problems.append(msg)

    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("version") != SARIF_VERSION:
        err(f"version must be '{SARIF_VERSION}'")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not isinstance(run, dict):
            err(f"{where} is not an object")
            continue
        driver = (run.get("tool") or {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if not isinstance(driver, dict) or \
                not isinstance(driver.get("name"), str) or \
                not driver.get("name"):
            err(f"{where}.tool.driver.name missing")
            driver = {}
        rule_ids = set()
        for i, rule in enumerate(driver.get("rules", []) or []):
            if not isinstance(rule, dict) or \
                    not isinstance(rule.get("id"), str):
                err(f"{where}.tool.driver.rules[{i}].id missing")
                continue
            rule_ids.add(rule["id"])
            level = (rule.get("defaultConfiguration") or {}).get("level")
            if level is not None and level not in _LEVELS:
                err(f"{where}.tool.driver.rules[{i}] bad level {level!r}")
        results = run.get("results")
        if results is None:
            continue
        if not isinstance(results, list):
            err(f"{where}.results is not an array")
            continue
        for i, res in enumerate(results):
            rwhere = f"{where}.results[{i}]"
            if not isinstance(res, dict):
                err(f"{rwhere} is not an object")
                continue
            msg = res.get("message")
            if not isinstance(msg, dict) or \
                    not isinstance(msg.get("text"), str):
                err(f"{rwhere}.message.text missing")
            if "level" in res and res["level"] not in _LEVELS:
                err(f"{rwhere}.level {res['level']!r} not in {_LEVELS}")
            rid = res.get("ruleId")
            if rid is not None and rule_ids and rid not in rule_ids:
                err(f"{rwhere}.ruleId {rid!r} not declared by the driver")
            if "ruleIndex" in res:
                idx = res["ruleIndex"]
                if not isinstance(idx, int) or idx < 0 or \
                        idx >= len(driver.get("rules", []) or []):
                    err(f"{rwhere}.ruleIndex out of range")
            for loc_field in ("locations", "relatedLocations"):
                for j, loc in enumerate(res.get(loc_field, []) or []):
                    problems.extend(
                        _validate_location(loc, f"{rwhere}.{loc_field}[{j}]"))
            pf = res.get("partialFingerprints")
            if pf is not None and (
                    not isinstance(pf, dict) or
                    not all(isinstance(v, str) for v in pf.values())):
                err(f"{rwhere}.partialFingerprints must map to strings")
            if "baselineState" in res and res["baselineState"] not in (
                    "new", "unchanged", "updated", "absent"):
                err(f"{rwhere}.baselineState invalid")
    return problems


def _validate_location(loc: object, where: str) -> List[str]:
    out: List[str] = []
    if not isinstance(loc, dict):
        return [f"{where} is not an object"]
    phys = loc.get("physicalLocation")
    if phys is None:
        return out
    if not isinstance(phys, dict):
        return [f"{where}.physicalLocation is not an object"]
    art = phys.get("artifactLocation")
    if art is not None and (not isinstance(art, dict) or
                            not isinstance(art.get("uri"), str)):
        out.append(f"{where}.physicalLocation.artifactLocation.uri missing")
    region = phys.get("region")
    if region is not None:
        if not isinstance(region, dict):
            out.append(f"{where}.physicalLocation.region is not an object")
        else:
            for key in ("startLine", "startColumn", "endLine", "endColumn"):
                if key in region and (not isinstance(region[key], int)
                                      or region[key] < 1):
                    out.append(f"{where}.physicalLocation.region.{key} "
                               "must be a positive integer")
    return out
