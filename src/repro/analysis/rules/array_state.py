"""Rule ``array-kernel`` — array-backed state mutated outside its kernel.

The hot simulator state lives in structure-of-arrays kernels: the
per-CPU clock array (``SimClock._cpu_ns``), the allocator run store
(``FreePool._rs`` / :class:`~repro.structures.runstore.RunStore`), and
the PM device's store-log columns (``_log_seqs`` / ``_log_addrs`` /
``_log_data`` / ``_log_flushed``).  Their invariants — parallel columns
stay aligned, derived indexes track the extent set, clock adds replay
the reference float sequence — hold only because every mutation goes
through an audited kernel function.

A ``+=``/``[...] =``/``.append(...)`` against one of these attributes
from an unsanctioned module bypasses those kernels: it may keep tests
green (the columns still *read* fine) while silently breaking
bit-identity with the reference engine or corrupting a derived index
that only an aged workload consults.  This rule flags any mutation of a
watched attribute outside the modules sanctioned to own it.

Reading the arrays is fine anywhere (``ctx.clock._cpu_ns[cpu]`` as a
timestamp, benchmarks summing clocks); only mutation is gated.  New
fused-kernel call sites are added by extending ``_SANCTIONED`` in the
same change that audits their add-sequence, or — for a one-off — with
``# repro: allow[array-kernel]`` and a justification.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from ..engine import FileContext, FileRule
from ..findings import Finding
from . import dotted, enclosing_qualnames

#: watched attribute -> modules sanctioned to mutate it.  The module
#: that defines the structure always is; the others are the audited
#: fused-charge kernels that write the clock array directly.
_SANCTIONED: Dict[str, Tuple[str, ...]] = {
    "_cpu_ns": ("repro.clock", "repro.vfs.interface",
                "repro.core.allocator", "repro.core.filesystem",
                "repro.core.journal", "repro.fs.common.dirindex",
                "repro.mmu.mmap_region"),
    "_rs": ("repro.structures.runstore", "repro.fs.common.freespace"),
    "_log_seqs": ("repro.pm.device",),
    "_log_addrs": ("repro.pm.device",),
    "_log_data": ("repro.pm.device",),
    "_log_flushed": ("repro.pm.device",),
}

#: method calls that mutate a list / bytearray / dict column in place
_MUTATORS = frozenset({
    "append", "extend", "insert", "pop", "remove", "clear", "sort",
    "reverse", "update", "setdefault", "popitem", "frombytes",
})


def _watched_segment(chain: str) -> str:
    """The watched attribute a dotted receiver chain touches, or ''."""
    for seg in chain.split("."):
        if seg in _SANCTIONED:
            return seg
    return ""


class ArrayStateRule(FileRule):
    id = "array-kernel"

    def run(self, ctx: FileContext) -> List[Finding]:
        if not ctx.module.startswith("repro."):
            return []
        quals = None
        findings: List[Finding] = []
        occurrences: Dict[Tuple[str, str], int] = {}

        def flag(node: ast.AST, attr: str, how: str) -> None:
            nonlocal quals
            if ctx.is_suppressed(self.id, node.lineno):
                return
            if quals is None:
                quals = enclosing_qualnames(ctx.tree)
            qual = quals.get(id(node), "")
            key = (qual, attr)
            occ = occurrences.get(key, 0)
            occurrences[key] = occ + 1
            owners = ", ".join(_SANCTIONED[attr])
            findings.append(Finding(
                rule=self.id, path=ctx.relpath, line=node.lineno,
                col=node.col_offset,
                message=f"{how} of array-backed state '{attr}' outside "
                        f"its kernel modules",
                hint=f"mutate '{attr}' only via its kernel API (owners: "
                     f"{owners}), or extend _SANCTIONED alongside an "
                     f"audited kernel",
                qualname=qual, detail=attr, occurrence=occ))

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    attr = self._target_attr(target)
                    if attr and ctx.module not in _SANCTIONED[attr]:
                        flag(node, attr, "direct write")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = self._target_attr(target)
                    if attr and ctx.module not in _SANCTIONED[attr]:
                        flag(node, attr, "element delete")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _MUTATORS:
                chain = dotted(node.func.value) or ""
                attr = _watched_segment(chain)
                if attr and ctx.module not in _SANCTIONED[attr]:
                    flag(node, attr, f"mutating call .{node.func.attr}()")
        return findings

    @staticmethod
    def _target_attr(target: ast.AST) -> str:
        """Watched attribute a store target mutates, or ''.

        ``x._cpu_ns[i] = v`` and ``x._rs.starts[i] = v`` are subscript
        stores whose value chain names the attribute; a bare attribute
        store only counts when the chain *passes through* a watched
        name (``pool._rs.free_blocks = 0``) — rebinding the attribute
        itself (``self._rs = RunStore()``) is construction, which the
        engine toggle must stay free to do.
        """
        if isinstance(target, ast.Subscript):
            chain = dotted(target.value) or ""
            return _watched_segment(chain)
        if isinstance(target, ast.Attribute):
            chain = dotted(target.value) or ""
            return _watched_segment(chain)
        return ""
