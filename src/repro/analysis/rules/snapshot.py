"""Rule ``snapshot-whitelist`` — persisted-graph drift vs the codec.

The aged-image snapshot codec (:mod:`repro.snapshot.codec`) only
revives objects whose classes live in its ``_MODULE_WHITELIST``; a new
module that becomes reachable from the persisted ``{fs, ctx}`` object
graph but is missing from the whitelist turns into a load-time
``SnapshotFormatError`` for anyone with a cached aged image.

Static approximation of "reachable": a module under ``repro.fs`` /
``repro.core`` / ``repro.structures`` that defines classes and is
imported by an already-whitelisted module is one hop from the persisted
graph, so it must either be whitelisted too or carry an allow comment
on the import (for modules that are provably never stored in persisted
object attributes — pure-function helpers, exceptions, etc.).

The rule also guards the wire format itself: every ``_T_<NAME>`` tag
byte defined in a ``repro.snapshot`` module must be unique across the
package.  The v2 columnar frames added tags next to the v1 set in the
same byte namespace — one decoder dispatches on all of them — so a new
tag reusing an existing byte would silently misparse every committed
golden blob rather than fail a test.

Facts per file: module name, whether it defines top-level classes, its
resolved intra-``repro`` imports, its ``_T_*`` tag-byte constants, and
(for the codec itself) the whitelist literal.  ``finalize`` crosses
them.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from ..engine import FileContext, ProjectRule
from ..findings import Finding

_SCOPES = ("repro.fs", "repro.core", "repro.structures")
_CODEC_SUFFIX = "snapshot.codec"
_WHITELIST_NAME = "_MODULE_WHITELIST"


def _resolve_from(module: str, node: ast.ImportFrom) -> str:
    """Absolute dotted base module of a (possibly relative) from-import."""
    if node.level == 0:
        return node.module or ""
    # level=1 strips the leaf module name, each extra level one package
    parts = module.split(".")[:-node.level]
    if node.module:
        parts.append(node.module)
    return ".".join(parts)


class SnapshotWhitelistRule(ProjectRule):
    id = "snapshot-whitelist"

    def collect(self, ctx: FileContext) -> Dict[str, object]:
        defines_classes = any(isinstance(n, ast.ClassDef)
                              for n in ctx.tree.body)
        imports: List[List[object]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports.append([alias.name, node.lineno])
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_from(ctx.module, node)
                if base:
                    imports.append([base, node.lineno])
                    for alias in node.names:
                        if alias.name != "*":
                            imports.append([f"{base}.{alias.name}",
                                            node.lineno])
        facts: Dict[str, object] = {
            "module": ctx.module,
            "defines_classes": defines_classes,
            "imports": imports,
        }
        if ctx.module.startswith("repro.snapshot"):
            facts["tags"] = self._collect_tags(ctx.tree)
        if ctx.module.endswith(_CODEC_SUFFIX):
            wl = self._parse_whitelist(ctx.tree)
            if wl is not None:
                facts["whitelist"] = wl
        return facts

    @staticmethod
    def _collect_tags(tree: ast.Module) -> List[List[object]]:
        """``[name, byte, lineno]`` for every ``_T_X = b"?"`` constant."""
        tags: List[List[object]] = []
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (isinstance(target, ast.Name)
                        and target.id.startswith("_T_")
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, bytes)
                        and len(node.value.value) == 1):
                    tags.append([target.id, node.value.value[0],
                                 node.lineno])
        return tags

    @staticmethod
    def _parse_whitelist(tree: ast.Module):
        for node in tree.body:
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == _WHITELIST_NAME
                    for t in node.targets):
                value = node.value
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    return [elt.value for elt in value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)]
        return None

    def _tag_findings(self, facts: Dict[str, Dict[str, object]]
                      ) -> List[Finding]:
        """One finding per tag byte claimed by two ``_T_*`` constants."""
        seen: Dict[int, str] = {}
        findings: List[Finding] = []
        for relpath in sorted(facts):
            per_file = facts[relpath]
            for name, byte, line in per_file.get("tags", []):
                owner = f"{per_file['module']}.{name}"
                prior = seen.setdefault(int(byte), owner)
                if prior == owner:
                    continue
                findings.append(Finding(
                    rule=self.id, path=relpath, line=int(line), col=0,
                    message=(f"tag byte {bytes((int(byte),))!r} of {name} "
                             f"is already used by {prior}; a reused tag "
                             "misparses committed snapshot streams"),
                    hint="pick an unused byte for the new frame tag "
                         "(the decoder dispatches v1 and v2 tags in one "
                         "byte namespace)",
                    qualname="", detail=name))
        return findings

    def finalize(self, facts: Dict[str, Dict[str, object]]
                 ) -> List[Finding]:
        findings: List[Finding] = self._tag_findings(facts)
        whitelist: List[str] = []
        for per_file in facts.values():
            if "whitelist" in per_file:
                whitelist = list(per_file["whitelist"])
        if not whitelist:
            return findings   # codec not in the linted set
        wl = set(whitelist)
        by_module = {per_file["module"]: (relpath, per_file)
                     for relpath, per_file in facts.items()}
        flagged = set()
        for w in sorted(wl):
            if w not in by_module:
                continue
            relpath, per_file = by_module[w]
            for imp, line in per_file.get("imports", []):
                if imp in flagged or imp in wl or imp == w:
                    continue
                target = by_module.get(imp)
                if target is None or not imp.startswith(_SCOPES):
                    continue
                if not target[1].get("defines_classes"):
                    continue
                flagged.add(imp)
                findings.append(Finding(
                    rule=self.id, path=relpath, line=int(line), col=0,
                    message=(f"module {imp} is reachable from whitelisted "
                             f"module {w} but absent from "
                             f"{_WHITELIST_NAME}"),
                    hint="add it to repro/snapshot/codec.py "
                         f"{_WHITELIST_NAME}, or allow-comment the import "
                         "if its classes are never persisted",
                    qualname="", detail=imp))
        return findings
