"""Rule ``determinism`` — nondeterminism sources in simulator code.

Every simulated quantity must be a pure function of its seeds, so the
rule flags:

* wall-clock reads (``time.time``/``perf_counter``/``monotonic``/...,
  ``datetime.now``/``utcnow``/``today``) — simulated time comes from
  ``ctx.now()``, wall time belongs only in the obs layer's span *wall*
  annotations (which carry an allow comment);
* calls through the module-level ``random`` API (including
  ``random.Random``) — use :func:`repro.rng.make_rng`;
* ``os.urandom`` — never seedable;
* ``sorted(..., key=id)`` / ``.sort(key=id)`` — id() is the CPython
  heap address, different every run;
* iterating a freshly-built ``set`` literal/call in a ``for`` loop or
  comprehension — hash order leaks into results under
  ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from ..engine import FileContext, FileRule
from ..findings import Finding
from . import dotted, enclosing_qualnames

_WALLCLOCK = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_HINTS = {
    "wallclock": "use ctx.now() (simulated ns), not host wall time",
    "random-global": "use repro.rng.make_rng(seed) for a private stream",
    "urandom": "os.urandom cannot be seeded; derive bytes from make_rng",
    "id-sort": "key=id orders by heap address; sort on a stable field",
    "set-iteration": "wrap in sorted(...) before iterating",
}


class DeterminismRule(FileRule):
    id = "determinism"

    def run(self, ctx: FileContext) -> List[Finding]:
        quals = enclosing_qualnames(ctx.tree)
        imports = _import_map(ctx.tree)
        findings: List[Finding] = []

        def add(node: ast.AST, kind: str, message: str, detail: str) -> None:
            findings.append(Finding(
                rule=self.id, path=ctx.relpath, line=node.lineno,
                col=node.col_offset, message=message,
                hint=_HINTS[kind], qualname=quals.get(id(node), ""),
                detail=detail))

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _resolved_call_name(node, imports)
                if name is not None:
                    if name in _WALLCLOCK:
                        add(node, "wallclock",
                            f"wall-clock read {name}()", name)
                    elif name == "os.urandom":
                        add(node, "urandom", "os.urandom() is unseedable",
                            name)
                    elif name.startswith("random.") or name == "random":
                        add(node, "random-global",
                            f"interpreter-global randomness {name}()", name)
                for kw in node.keywords:
                    if kw.arg == "key" and isinstance(kw.value, ast.Name) \
                            and kw.value.id == "id":
                        fname = dotted(node.func) or "sort"
                        add(node, "id-sort",
                            f"{fname}(key=id) orders by heap address",
                            f"{fname}:key=id")
            elif isinstance(node, ast.For):
                self._check_set_iter(node.iter, add)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    self._check_set_iter(gen.iter, add)
        return findings

    @staticmethod
    def _check_set_iter(iter_node: ast.AST, add) -> None:
        is_set = isinstance(iter_node, ast.Set) or (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "set")
        if is_set:
            add(iter_node, "set-iteration",
                "iteration order of a set is hash-dependent",
                "set-iteration")


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted origin for relevant stdlib imports."""
    interesting = ("time", "random", "os", "datetime")
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in interesting:
                    out[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and \
                node.module and node.module.split(".")[0] in interesting:
            for alias in node.names:
                out[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return out


def _resolved_call_name(node: ast.Call, imports: Dict[str, str]):
    """Canonical dotted name of the called function, import-aware."""
    name = dotted(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    if head in imports:
        name = imports[head] + (("." + rest) if rest else "")
    # normalise datetime.datetime.* regardless of import style
    return name
