"""degraded-write-guard: mutating VFS entry points must check writability.

The degraded-mode ladder (PR 3) remounts a filesystem read-only after
unrecoverable faults; from then on every mutating entry point must fail
with ``ReadOnlyError`` *before* touching shared state.  The contract is
that ``_check_writable()`` dominates the first mutation on every path
through a mutating ``FileSystem`` method.

Mutation events: attribute/subscript stores outside ``__init__``-style
constructors, PM device writes, lock acquisitions (shared state is only
mutated under locks here, so acquiring one is the canonical first step
of a mutation), and calls to callees that (transitively) mutate.

Callee summaries make the check interprocedural and delegation-safe:

* ``checks`` — the callee itself establishes the guard on every
  non-raising exit before any of its own mutations (``BaseFS.write``),
  so delegating wrappers like ``FileSystem.write_zeros`` are clean and
  the wrapper's state becomes "checked" after the call;
* ``mutates`` + a witness chain to the callee's first mutation, so a
  wrapper that skips the guard is reported with the path to the state
  it would have clobbered.

Virtual dispatch joins conservatively: a call checks only if *every*
override in the family checks.  Early returns that did no work (e.g.
``write_zeros`` with ``length <= 0``) are exempt.  Findings anchor at
the entry point's ``def`` line, where a suppression (or a decorator-
aware allow comment) naturally sits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..findings import Finding
from ..flow import ASGN, CALL, IF, LOOP, RAISE, RET, TRY, WITH, CallGraph, FuncInfo

Hop = Tuple[str, str, int]

#: FileSystem methods that mutate state (the degraded ladder's surface)
MUTATING_OPS = frozenset({
    "create", "unlink", "mkdir", "rmdir", "rename", "link", "symlink",
    "write", "write_zeros", "truncate", "ftruncate", "fallocate",
    "setxattr", "removexattr",
})

_ROOT_CLASS = "FileSystem"
_ENTRY_MODULE_PREFIXES = ("repro.fs", "repro.core", "repro.vfs")
_INIT_FNS = {"__init__", "__post_init__", "__new__"}
_DEVICE_SEGMENTS = ("device", "dev", "pm", "pmem")
_DEVICE_WRITE_FNS = {"store", "persist", "write_zeros"}
_CHECK_FNS = {"_check_writable"}
_MAX_SCC_ITER = 5


def _is_device(recv: str) -> bool:
    for seg in recv.lower().split("."):
        seg = seg.lstrip("_")
        if any(d in seg for d in _DEVICE_SEGMENTS):
            return True
    return False


class Summary:
    __slots__ = ("mutates", "mut_chain", "checks")

    def __init__(self) -> None:
        self.mutates = False
        self.mut_chain: Tuple[Hop, ...] = ()
        self.checks = False

    def key(self) -> Tuple:
        return (self.mutates, self.checks)


class _Run:
    """Track (checked?) through one function; record unguarded mutations."""

    def __init__(self, graph: CallGraph, info: FuncInfo,
                 summaries: Dict[str, Summary]):
        self.graph = graph
        self.info = info
        self.summaries = summaries
        self.exit_flags: List[bool] = []    # checked at each non-raise exit
        self.mutates = False
        self.mut_chain: Tuple[Hop, ...] = ()
        self.unguarded: Optional[Tuple[Hop, ...]] = None

    def run(self) -> None:
        final = self.exec_block(self.info.body, False)
        if final is not None:
            self.exit_flags.append(final)

    def _mutation(self, chain: Tuple[Hop, ...], checked: bool) -> None:
        if not self.mutates:
            self.mutates = True
            self.mut_chain = chain
        if not checked and self.unguarded is None:
            self.unguarded = chain

    def _call(self, node: List, checked: bool) -> bool:
        line, recv, fn = node[1], node[3], node[4]
        if fn in _CHECK_FNS and recv in ("self", "cls", "super", ""):
            return True
        if fn == "acquire" and recv.split(".")[-1] == "locks":
            self._mutation(((f"{self.info.qual} acquires a lock",
                             self.info.relpath, line),), checked)
            return checked
        if _is_device(recv) and fn in _DEVICE_WRITE_FNS:
            self._mutation(((f"{self.info.qual}: PM write via {recv}",
                             self.info.relpath, line),), checked)
            return checked
        targets = [t for t in self.graph.resolve_call(self.info, recv, fn)
                   if t in self.summaries
                   and not self.graph.functions[t].trivial]
        if not targets:
            return checked
        sums = [self.summaries[t] for t in targets]
        if all(s.checks for s in sums):
            return True
        mutating = [(t, s) for t, s in zip(targets, sums) if s.mutates]
        if mutating:
            t, s = mutating[0]
            callee_qual = self.graph.functions[t].qual
            hop: Hop = (f"{self.info.qual} calls {callee_qual}",
                        self.info.relpath, line)
            self._mutation((hop,) + s.mut_chain, checked)
        return checked

    def exec_block(self, block: List,
                   checked: Optional[bool]) -> Optional[bool]:
        for node in block:
            if checked is None:
                return None
            tag = node[0]
            if tag == CALL:
                checked = self._call(node, checked)
            elif tag == ASGN:
                recv = node[3]
                if recv.split(".")[0] == "self" and \
                        self.info.name in _INIT_FNS:
                    continue   # object construction, not shared state
                self._mutation(((f"{self.info.qual} writes {recv}.{node[4]}",
                                 self.info.relpath, node[1]),), checked)
            elif tag == RET:
                self.exit_flags.append(checked)
                return None
            elif tag == RAISE:
                return None    # error path: the guard's own raise lands here
            elif tag == IF:
                c1 = self.exec_block(node[1], checked)
                c2 = self.exec_block(node[2], checked)
                checked = self._join(c1, c2)
            elif tag == LOOP:
                c1 = self.exec_block(node[1], checked)
                checked = self._join(checked, c1)
                if node[2]:
                    checked = self.exec_block(node[2], checked)
            elif tag == TRY:
                c1 = self.exec_block(node[1], checked)
                merged = c1
                for handler in node[2]:
                    base = checked if c1 is None else (checked and c1)
                    merged = self._join(merged,
                                        self.exec_block(handler, base))
                if node[3]:
                    base = merged if merged is not None else checked
                    fin = self.exec_block(node[3], base)
                    checked = fin if merged is not None else None
                else:
                    checked = merged
            elif tag == WITH:
                checked = self.exec_block(node[1], checked)
                if checked is None:
                    return None
                checked = self.exec_block(node[2], checked)
        return checked

    @staticmethod
    def _join(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
        if a is None:
            return b
        if b is None:
            return a
        return a and b


class DegradedWriteGuard:
    id = "degraded-write-guard"

    def check(self, graph: CallGraph) -> List[Finding]:
        summaries: Dict[str, Summary] = {}
        for scc in graph.topo_sccs():
            members = [fid for fid in scc if fid in graph.functions]
            for fid in members:
                summaries.setdefault(fid, Summary())
            for _ in range(_MAX_SCC_ITER):
                changed = False
                for fid in members:
                    new = self._summarize(graph, graph.functions[fid],
                                          summaries)
                    if new.key() != summaries[fid].key():
                        changed = True
                    summaries[fid] = new
                if not changed:
                    break

        findings: List[Finding] = []
        for fid in sorted(graph.functions):
            info = graph.functions[fid]
            if not self._is_entry_point(graph, info):
                continue
            run = _Run(graph, info, summaries)
            run.run()
            if run.unguarded is None:
                continue
            findings.append(Finding(
                rule=self.id, path=info.relpath, line=info.line, col=0,
                message=(f"mutating entry point {info.qual} can reach a "
                         "mutation before _check_writable()"),
                hint=("call self._check_writable() (after _check_mounted) "
                      "before touching any state"),
                qualname=info.qual,
                detail="unguarded",
                witness=run.unguarded,
            ))
        return findings

    @staticmethod
    def _summarize(graph: CallGraph, info: FuncInfo,
                   summaries: Dict[str, Summary]) -> Summary:
        s = Summary()
        if info.trivial:
            return s
        run = _Run(graph, info, summaries)
        run.run()
        s.mutates = run.mutates
        s.mut_chain = run.mut_chain
        s.checks = (run.unguarded is None and bool(run.exit_flags)
                    and all(run.exit_flags))
        return s

    def _is_entry_point(self, graph: CallGraph, info: FuncInfo) -> bool:
        if info.trivial or not info.cls or info.name not in MUTATING_OPS:
            return False
        if not info.module.startswith(_ENTRY_MODULE_PREFIXES):
            return False
        mro = graph.mro((info.module, info.cls))
        return any(cls == _ROOT_CLASS for (_mod, cls) in mro)
