"""The nine codebase-specific lint rules.

Shared AST helpers live here; each rule is one module.  Rule ids are
the stable public names used by ``# repro: allow[<id>]`` suppressions
and the committed baselines:

=====================  =====================================================
``determinism``        wall-clock reads, global ``random.*``, ``os.urandom``,
                       ``id()``-keyed sorts, unordered set iteration
``persistence-ordering``  ``PMDevice.store`` not followed by clwb+sfence on
                       every path out of the function
``lock-discipline``    inode-field mutation outside a lock acquisition;
                       acquire sites with unregistered lock namespaces
``snapshot-whitelist``  persisted-graph module missing from the snapshot
                       codec whitelist
``metric-names``       counter/gauge/span names absent from repro.obs.names
``array-kernel``       array-backed hot state (clock array, run store,
                       device store-log columns) mutated outside its
                       sanctioned kernel modules
=====================  =====================================================

Interprocedural rules (``repro lint --flow``; modules ``flow_*``, run
through :class:`repro.analysis.flow.FlowAnalysis`):

=========================  =================================================
``persist-before-commit``  a PM store must reach persist()/clwb+sfence on
                           every path before a journal commit
``lock-order-cycle``       cycle in the global lock-namespace acquisition
                           order graph (witness call chain attached)
``degraded-write-guard``   mutating FileSystem entry point can mutate state
                           before ``_check_writable()``
=========================  =================================================
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_functions(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (qualname, node) for every function/method, outermost first."""
    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                yield qual, child
                yield from visit(child, qual)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                yield from visit(child, qual)
    yield from visit(tree, "")


def enclosing_qualnames(tree: ast.Module) -> "dict[int, str]":
    """Map every AST node id to its enclosing function/class qualname."""
    out: "dict[int, str]" = {}

    def visit(node: ast.AST, qual: str) -> None:
        for child in ast.iter_child_nodes(node):
            q = qual
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                q = f"{qual}.{child.name}" if qual else child.name
            out[id(child)] = q
            visit(child, q)

    visit(tree, "")
    return out


def fstring_head(node: ast.JoinedStr) -> str:
    """Leading literal text of an f-string ('' when it starts dynamic)."""
    if node.values and isinstance(node.values[0], ast.Constant) and \
            isinstance(node.values[0].value, str):
        return node.values[0].value
    return ""
