"""Rule ``persistence-ordering`` — store without clwb+sfence.

On real PM hardware a ``store`` reaches the persistence domain only
after an explicit flush (``clwb``) and ordering fence (``sfence``); the
simulator models that, and the crash explorer will happily drop any
store left unflushed at a crash point.  This rule runs an
intra-procedural abstract interpretation over every function in
``repro.core`` / ``repro.fs``: each PM-device receiver carries a state
in {clean, stored, clwbed}, and any path that can leave the function
with a non-clean device yields a finding at the offending ``store``.

Semantics (mirroring :class:`repro.pm.device.PMDevice`):

* ``recv.store(...)``       -> stored (dirty in the cache hierarchy)
* ``recv.clwb(...)``        -> stored becomes clwbed (flush issued)
* ``recv.sfence()``         -> every clwbed receiver becomes clean
  (the fence is global; un-flushed stores stay dirty)
* ``recv.persist(...)``/``recv.write_zeros(...)`` -> atomic
  store+clwb+sfence helpers: fence effect, never leave debt
* ``recv.drain()``          -> flush+fence everything: all clean
* ``raise``                 -> crash/error path, exempt (the journal
  recovers; flushing on the error path is not required)

Branches join with the *worst* state per receiver; loop bodies execute
once and join with the loop-skip state.  The check is intentionally
intra-procedural: helpers that intentionally return with pending
stores (batched writers) take a ``# repro: allow[persistence-ordering]``
with a pointer to where the fence happens.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..engine import FileContext, FileRule
from ..findings import Finding
from . import dotted, walk_functions

_SCOPES = ("repro.core", "repro.fs")

#: receiver name heuristic: last dotted segment identifies a PM device
_DEVICE_SEGMENTS = ("device", "dev", "pm", "pmem")

_CLEAN, _CLWBED, _STORED = 0, 1, 2

# receiver -> (severity, store_line, store_col)
_State = Dict[str, Tuple[int, int, int]]


def _is_device(recv: str) -> bool:
    seg = recv.split(".")[-1].lower()
    return "device" in seg or seg in _DEVICE_SEGMENTS


class PersistenceOrderingRule(FileRule):
    id = "persistence-ordering"

    def run(self, ctx: FileContext) -> List[Finding]:
        if not ctx.module.startswith(_SCOPES):
            return []
        findings: List[Finding] = []
        for qual, fn in walk_functions(ctx.tree):
            findings.extend(self._check_function(ctx, qual, fn))
        return findings

    def _check_function(self, ctx: FileContext, qual: str,
                        fn: ast.AST) -> List[Finding]:
        reported: Set[Tuple[str, int]] = set()
        findings: List[Finding] = []

        def flag(recv: str, line: int, col: int) -> None:
            if (recv, line) in reported:
                return
            reported.add((recv, line))
            findings.append(Finding(
                rule=self.id, path=ctx.relpath, line=line, col=col,
                message=(f"{recv}.store() may reach a return without "
                         "clwb+sfence"),
                hint="flush with clwb+sfence (or use persist()) on every "
                     "non-raising path",
                qualname=qual, detail=recv))

        def check_exit(state: _State) -> None:
            for recv, (sev, line, col) in state.items():
                if sev != _CLEAN:
                    flag(recv, line, col)

        def apply_calls(node: ast.AST, state: _State) -> None:
            for call in ast.walk(node):
                if not isinstance(call, ast.Call) or \
                        not isinstance(call.func, ast.Attribute):
                    continue
                recv = dotted(call.func.value)
                if recv is None or not _is_device(recv):
                    continue
                method = call.func.attr
                if method == "store":
                    state[recv] = (_STORED, call.lineno, call.col_offset)
                elif method == "clwb":
                    cur = state.get(recv)
                    if cur and cur[0] == _STORED:
                        state[recv] = (_CLWBED, cur[1], cur[2])
                elif method in ("sfence", "persist", "write_zeros"):
                    for r, cur in list(state.items()):
                        if cur[0] == _CLWBED:
                            del state[r]
                elif method == "drain":
                    state.clear()

        def merge(states: List[Optional[_State]]) -> Optional[_State]:
            live = [s for s in states if s is not None]
            if not live:
                return None
            out: _State = {}
            for s in live:
                for recv, cur in s.items():
                    if recv not in out or cur[0] > out[recv][0]:
                        out[recv] = cur
            return out

        def exec_block(stmts, state: _State) -> Optional[_State]:
            for stmt in stmts:
                nxt = exec_stmt(stmt, state)
                if nxt is None:
                    return None
                state = nxt
            return state

        def exec_stmt(stmt: ast.stmt, state: _State) -> Optional[_State]:
            if isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    apply_calls(stmt.value, state)
                check_exit(state)
                return None
            if isinstance(stmt, ast.Raise):
                return None    # crash/error path: recovery owns durability
            if isinstance(stmt, ast.If):
                apply_calls(stmt.test, state)
                return merge([exec_block(stmt.body, dict(state)),
                              exec_block(stmt.orelse, dict(state))])
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                apply_calls(stmt.iter, state)
                once = exec_block(stmt.body, dict(state))
                state2 = merge([state, once])
                if state2 is None:
                    return None
                return exec_block(stmt.orelse, state2) if stmt.orelse \
                    else state2
            if isinstance(stmt, ast.While):
                apply_calls(stmt.test, state)
                once = exec_block(stmt.body, dict(state))
                state2 = merge([state, once])
                if state2 is None:
                    return None
                return exec_block(stmt.orelse, state2) if stmt.orelse \
                    else state2
            if isinstance(stmt, ast.Try):
                after = exec_block(stmt.body, dict(state))
                branches: List[Optional[_State]] = [after]
                entry = merge([dict(state), after]) or dict(state)
                for handler in stmt.handlers:
                    branches.append(exec_block(handler.body, dict(entry)))
                merged = merge(branches)
                if stmt.finalbody:
                    return exec_block(stmt.finalbody,
                                      merged if merged is not None
                                      else dict(state))
                return merged
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    apply_calls(item.context_expr, state)
                return exec_block(stmt.body, state)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                return state   # nested defs are analysed on their own
            apply_calls(stmt, state)
            return state

        final = exec_block(fn.body, {})
        if final is not None:
            check_exit(final)
        return findings
