"""persist-before-commit: PM dirt must be fenced before a journal commit.

The crash-consistency contract of every journaled path in this codebase
is *undo-log, mutate, flush+fence, commit*: once the journal commit
record lands, recovery will NOT roll the transaction back, so any data
store that has not reached ``persist()``/``clwb``+``sfence`` by that
point can be torn or lost across a crash — exactly the dominant bug
class in the PM-issues survey.

The analysis tracks a per-receiver three-level lattice (clean /
stored-and-clwbed / stored) through each function's IR, the same
machine as the per-file ``persistence-ordering`` rule, but crosses
function boundaries with summaries:

* ``exit_dirty`` — can return with unfenced stores of its own making;
* ``fences`` / ``drains`` — guarantees entry dirt (clwbed / any) is
  clean on every non-raising exit;
* ``commits_with_*`` — contains a commit reachable while entry dirt of
  the given level is still unfenced.

A ``with self._meta_txn(...)`` block commits when the block exits, so
the block end is a commit event.  Raise paths are exempt (recovery owns
durability), mirroring the per-file rule.

Findings anchor at the offending store; the witness chain walks
store -> (calls) -> commit so the report reads as the failure path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..findings import Finding
from ..flow import ASGN, CALL, IF, LOOP, RAISE, RET, TRY, WITH, CallGraph, FuncInfo

Hop = Tuple[str, str, int]
State = Dict[str, Tuple[int, Tuple[Hop, ...]]]   # recv -> (level, chain)

_DEVICE_SEGMENTS = ("device", "dev", "pm", "pmem")
_STORE_FNS = {"store"}
_CLWB_FNS = {"clwb"}
_FENCE_FNS = {"sfence"}
_PERSIST_FNS = {"persist", "write_zeros"}
_DRAIN_FNS = {"drain"}
#: with-blocks whose scope object commits the journal on exit
TXN_SCOPE_FNS = {"_meta_txn"}
_COMMIT_RECV_HINTS = ("txn", "transaction", "journal")

_CLWBED_ENTRY = "<entry:clwbed>"
_STORED_ENTRY = "<entry:stored>"
_MAX_SCC_ITER = 5


def _is_device(recv: str) -> bool:
    for seg in recv.lower().split("."):
        seg = seg.lstrip("_")
        if any(d in seg for d in _DEVICE_SEGMENTS):
            return True
    return False


def _is_commit(recv: str, fn: str) -> bool:
    if fn != "commit":
        return False
    last = recv.split(".")[-1].lstrip("_").lower()
    return any(h in last for h in _COMMIT_RECV_HINTS)


class Summary:
    __slots__ = ("exit_dirty", "dirty_chain", "fences", "drains",
                 "commits", "commit_chain",
                 "commits_with_clwbed", "commits_with_stored")

    def __init__(self) -> None:
        self.exit_dirty = False
        self.dirty_chain: Tuple[Hop, ...] = ()
        self.fences = False
        self.drains = False
        self.commits = False
        self.commit_chain: Tuple[Hop, ...] = ()
        self.commits_with_clwbed = False
        self.commits_with_stored = False

    def key(self) -> Tuple:
        return (self.exit_dirty, self.fences, self.drains, self.commits,
                self.commits_with_clwbed, self.commits_with_stored)


def _merge(a: Optional[State], b: Optional[State]) -> Optional[State]:
    if a is None:
        return dict(b) if b is not None else None
    if b is None:
        return dict(a)
    out = dict(a)
    for recv, (lvl, chain) in b.items():
        cur = out.get(recv)
        if cur is None or lvl > cur[0]:
            out[recv] = (lvl, chain)
    return out


class _Run:
    """One abstract execution of a function body."""

    def __init__(self, graph: CallGraph, info: FuncInfo,
                 summaries: Dict[str, Summary], report: bool):
        self.graph = graph
        self.info = info
        self.summaries = summaries
        self.report = report
        self.exits: List[State] = []
        self.commits = False
        self.commit_chain: Tuple[Hop, ...] = ()
        self.commits_with_clwbed = False
        self.commits_with_stored = False
        self.violations: List[Tuple[Tuple[Hop, ...], Tuple[Hop, ...]]] = []
        self._seen_violations: set = set()

    def run(self, initial: State) -> None:
        final = self.exec_block(self.info.body, dict(initial))
        if final is not None:
            self.exits.append(final)

    # -- events ------------------------------------------------------------

    def _commit_event(self, state: State, line: int) -> None:
        self.commits = True
        hop: Hop = (f"{self.info.qual}: journal commit",
                    self.info.relpath, line)
        if not self.commit_chain:
            self.commit_chain = (hop,)
        for recv in sorted(state):
            lvl, chain = state[recv]
            if recv == _CLWBED_ENTRY:
                self.commits_with_clwbed = True
            elif recv == _STORED_ENTRY:
                self.commits_with_stored = True
            elif self.report:
                self._violation(chain, (hop,))

    def _violation(self, chain: Tuple[Hop, ...],
                   commit_chain: Tuple[Hop, ...]) -> None:
        key = (chain[:1], commit_chain[:1])
        if key in self._seen_violations:
            return
        self._seen_violations.add(key)
        self.violations.append((chain, commit_chain))

    def _apply_call(self, state: State, line: int, recv: str,
                    fn: str) -> None:
        if _is_device(recv):
            if fn in _STORE_FNS:
                hop: Hop = (f"{self.info.qual}: store via {recv}",
                            self.info.relpath, line)
                state[recv] = (2, (hop,))
            elif fn in _CLWB_FNS:
                cur = state.get(recv)
                if cur is not None and cur[0] == 2:
                    state[recv] = (1, cur[1])
            elif fn in _FENCE_FNS:
                for r in [r for r, (lvl, _) in state.items() if lvl == 1]:
                    del state[r]
            elif fn in _PERSIST_FNS:
                state.pop(recv, None)
                for r in [r for r, (lvl, _) in state.items() if lvl == 1]:
                    del state[r]
            elif fn in _DRAIN_FNS:
                state.clear()
            return
        if _is_commit(recv, fn):
            self._commit_event(state, line)
            return
        targets = [self.summaries[t]
                   for t in self.graph.resolve_call(self.info, recv, fn)
                   if t in self.summaries]
        if not targets:
            return
        call_hop: Hop = (f"{self.info.qual}: calls {recv + '.' if recv else ''}{fn}",
                         self.info.relpath, line)
        # a dirty caller must not reach a callee that commits first
        for r in sorted(state):
            lvl, chain = state[r]
            if r in (_CLWBED_ENTRY, _STORED_ENTRY):
                for s in targets:
                    if (lvl >= 2 and s.commits_with_stored) or \
                            (lvl == 1 and s.commits_with_clwbed):
                        if lvl >= 2:
                            self.commits_with_stored = True
                        else:
                            self.commits_with_clwbed = True
                        self.commits = True
                        if not self.commit_chain:
                            self.commit_chain = (call_hop,) + \
                                targets[0].commit_chain
                continue
            if self.report:
                for s in targets:
                    if (lvl >= 2 and s.commits_with_stored) or \
                            (lvl == 1 and s.commits_with_clwbed):
                        self._violation(chain, (call_hop,) + s.commit_chain)
                        break
        if all(s.drains for s in targets):
            state.clear()
        elif all(s.fences for s in targets):
            for r in [r for r, (lvl, _) in state.items() if lvl == 1]:
                del state[r]
        dirty = [s for s in targets if s.exit_dirty]
        if dirty:
            chain = dirty[0].dirty_chain + (call_hop,)
            key = chain[0] if chain else call_hop
            state[f"<ret:{key[0]}>"] = (2, chain)

    # -- structural walk ---------------------------------------------------

    def exec_block(self, block: List, state: Optional[State]) -> Optional[State]:
        for node in block:
            if state is None:
                return None
            tag = node[0]
            if tag == CALL:
                self._apply_call(state, node[1], node[3], node[4])
            elif tag == ASGN:
                pass
            elif tag == RET:
                self.exits.append(dict(state))
                return None
            elif tag == RAISE:
                return None    # recovery owns durability on raise paths
            elif tag == IF:
                s1 = self.exec_block(node[1], dict(state))
                s2 = self.exec_block(node[2], dict(state))
                state = _merge(s1, s2)
            elif tag == LOOP:
                s1 = self.exec_block(node[1], dict(state))
                state = _merge(state, s1)
                if node[2]:
                    state = self.exec_block(node[2], state)
            elif tag == TRY:
                sb = self.exec_block(node[1], dict(state))
                entry_h = _merge(state, sb)
                merged: Optional[State] = sb
                for handler in node[2]:
                    sh = self.exec_block(handler, dict(entry_h or {}))
                    merged = _merge(merged, sh)
                if node[3]:
                    base = merged if merged is not None else dict(state)
                    fin = self.exec_block(node[3], base)
                    state = fin if merged is not None else None
                else:
                    state = merged
            elif tag == WITH:
                state = self.exec_block(node[1], state)
                if state is None:
                    return None
                txn_scope = any(item[0] == CALL and item[4] in TXN_SCOPE_FNS
                                for item in node[1])
                scope_line = node[1][0][1] if node[1] else self.info.line
                state = self.exec_block(node[2], state)
                if state is not None and txn_scope:
                    self._commit_event(state, scope_line)
        return state


class PersistBeforeCommit:
    id = "persist-before-commit"

    def check(self, graph: CallGraph) -> List[Finding]:
        summaries: Dict[str, Summary] = {}
        for scc in graph.topo_sccs():
            members = [fid for fid in scc if fid in graph.functions]
            for fid in members:
                summaries.setdefault(fid, Summary())
            for _ in range(_MAX_SCC_ITER):
                changed = False
                for fid in members:
                    new = self._summarize(graph, graph.functions[fid],
                                          summaries)
                    if new.key() != summaries[fid].key():
                        changed = True
                    summaries[fid] = new
                if not changed:
                    break

        findings: List[Finding] = []
        for fid in sorted(graph.functions):
            info = graph.functions[fid]
            if info.trivial:
                continue
            run = _Run(graph, info, summaries, report=True)
            run.run({})
            for chain, commit_chain in run.violations:
                anchor = chain[0] if chain else (info.qual, info.relpath,
                                                 info.line)
                witness = chain[1:] + commit_chain
                findings.append(Finding(
                    rule=self.id, path=anchor[1], line=anchor[2], col=0,
                    message=("PM store reaches a journal commit without an "
                             "intervening persist()/fence"),
                    hint=("flush+fence (device.persist or clwb+sfence) "
                          "before the transaction scope closes"),
                    qualname=info.qual,
                    detail=anchor[0],
                    witness=witness,
                ))
        return findings

    @staticmethod
    def _summarize(graph: CallGraph, info: FuncInfo,
                   summaries: Dict[str, Summary]) -> Summary:
        s = Summary()
        if info.trivial:
            s.fences = s.drains = False
            return s
        run = _Run(graph, info, summaries, report=False)
        run.run({_CLWBED_ENTRY: (1, ()), _STORED_ENTRY: (2, ())})
        s.commits = run.commits
        s.commit_chain = run.commit_chain
        s.commits_with_clwbed = run.commits_with_clwbed
        s.commits_with_stored = run.commits_with_stored
        s.fences = all(_CLWBED_ENTRY not in ex for ex in run.exits) \
            and bool(run.exits)
        s.drains = all(_STORED_ENTRY not in ex for ex in run.exits) \
            and bool(run.exits)
        for ex in run.exits:
            for recv in sorted(ex):
                if recv in (_CLWBED_ENTRY, _STORED_ENTRY):
                    continue
                lvl, chain = ex[recv]
                if lvl > 0:
                    s.exit_dirty = True
                    if not s.dirty_chain:
                        s.dirty_chain = chain
        return s
