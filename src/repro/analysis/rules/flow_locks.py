"""lock-order-cycle: the global lock-order graph must stay acyclic.

Deadlock freedom in the simulator rests on a global acquisition order
between lock *namespaces* (the part of a lock name before the ``:`` —
``ino``, ``winefs-journal``, ``jbd2-handle``, ...).  Each function's IR
yields direct acquisition edges (acquire B while holding A); function
summaries carry the transitive set of namespaces a callee can acquire,
so an edge also forms when a function calls into code that locks while
the caller holds something.  Any cycle in the resulting digraph — a
length-1 self-edge counts: nested acquisition inside one namespace
deadlocks unless instance-ordered — is reported with the witness call
chain from the holding site to the nested acquisition.

Lock names resolve through ``repro.clock.LOCK_NAMESPACES`` plus the
flow layer's helper-return analysis (``self._ino_lock(...)`` resolves to
the ``ino`` namespace via the helper's return statements).  Names we
cannot resolve become the ``?`` namespace, which never participates in
edges: unresolvable locking biases to false negatives, not noise.

``atomic()`` sites are excluded — they are bounded non-blocking
reservations, not held locks, so they cannot participate in a deadlock
cycle.

A separate warning-severity finding flags acquire sites whose namespace
resolves to a name missing from ``LOCK_NAMESPACES``: a renamed lock
family must be registered or it silently leaves every discipline check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..findings import Finding
from ..flow import ASGN, CALL, IF, LOOP, RAISE, RET, TRY, WITH, CallGraph, FuncInfo

Hop = Tuple[str, str, int]

_MAX_SCC_ITER = 5


def _registered_namespaces() -> Set[str]:
    try:
        from repro.clock import LOCK_NAMESPACES
        return set(LOCK_NAMESPACES)
    except Exception:  # lint must run even from a broken tree
        return set()


class _Edge:
    __slots__ = ("src", "dst", "chain", "qual")

    def __init__(self, src: str, dst: str, chain: Tuple[Hop, ...],
                 qual: str):
        self.src = src
        self.dst = dst
        self.chain = chain
        self.qual = qual


class LockOrderCycle:
    id = "lock-order-cycle"

    def check(self, graph: CallGraph) -> List[Finding]:
        acquires = self._transitive_acquires(graph)
        chains = _AcquireChains(graph, acquires)
        edges: Dict[Tuple[str, str], _Edge] = {}
        unregistered: List[Finding] = []
        known = _registered_namespaces()

        for fid in sorted(graph.functions):
            info = graph.functions[fid]
            walker = _HeldWalker(graph, info, acquires, chains, known)
            walker.walk(info.body, [])
            for edge in walker.edges:
                edges.setdefault((edge.src, edge.dst), edge)
            unregistered.extend(walker.unregistered)

        findings = self._cycles(edges)
        findings.extend(unregistered)
        return findings

    # -- summaries ---------------------------------------------------------

    def _transitive_acquires(self, graph: CallGraph) -> Dict[str, Set[str]]:
        acquires: Dict[str, Set[str]] = {}
        for scc in graph.topo_sccs():
            members = [fid for fid in scc if fid in graph.functions]
            for fid in members:
                acquires.setdefault(fid, set())
            for _ in range(_MAX_SCC_ITER):
                changed = False
                for fid in members:
                    info = graph.functions[fid]
                    new = set(_own_acquires(graph, info))
                    for callee in graph.call_edges(fid):
                        new |= acquires.get(callee, set())
                    new.discard("?")
                    if new != acquires[fid]:
                        acquires[fid] = new
                        changed = True
                if not changed:
                    break
        return acquires

    # -- cycle reporting ---------------------------------------------------

    def _cycles(self, edges: Dict[Tuple[str, str], _Edge]) -> List[Finding]:
        graph_edges: Dict[str, List[str]] = {}
        for (src, dst) in sorted(edges):
            graph_edges.setdefault(src, []).append(dst)
        findings: List[Finding] = []
        reported: Set[Tuple[str, ...]] = set()

        from ..engine import strongly_connected
        for comp in strongly_connected(graph_edges):
            cyclic = len(comp) > 1 or \
                (comp[0], comp[0]) in edges
            if not cyclic:
                continue
            cycle = self._witness_cycle(comp, edges)
            if cycle is None or tuple(cycle) in reported:
                continue
            reported.add(tuple(cycle))
            hops: List[Hop] = []
            for i in range(len(cycle) - 1):
                hops.extend(edges[(cycle[i], cycle[i + 1])].chain)
            first = edges[(cycle[0], cycle[1])]
            anchor = first.chain[-1] if first.chain else None
            path, line = (anchor[1], anchor[2]) if anchor else ("", 1)
            findings.append(Finding(
                rule=self.id, path=path, line=line, col=0,
                message=("lock-order cycle "
                         + " -> ".join(cycle)
                         + " can deadlock"),
                hint=("impose one global acquisition order, or suppress "
                      "with the instance-ordering argument"),
                qualname=first.qual,
                detail="->".join(cycle),
                witness=tuple(hops),
            ))
        return findings

    @staticmethod
    def _witness_cycle(comp: List[str],
                       edges: Dict[Tuple[str, str], _Edge]) -> Optional[List[str]]:
        start = comp[0]           # comp is sorted; deterministic choice
        if (start, start) in edges:
            return [start, start]
        # shortest cycle through `start` inside the component (BFS)
        inside = set(comp)
        prev: Dict[str, str] = {}
        queue = [start]
        seen = {start}
        while queue:
            node = queue.pop(0)
            for (src, dst) in sorted(edges):
                if src != node or dst not in inside:
                    continue
                if dst == start:
                    path = [dst]
                    cur = node
                    while cur != start:
                        path.append(cur)
                        cur = prev[cur]
                    path.append(start)
                    return list(reversed(path))
                if dst not in seen:
                    seen.add(dst)
                    prev[dst] = node
                    queue.append(dst)
        return None


def _own_acquires(graph: CallGraph, info: FuncInfo) -> Set[str]:
    out: Set[str] = set()

    def walk(block: List) -> None:
        for node in block:
            tag = node[0]
            if tag == CALL:
                if node[4] == "acquire":
                    out.update(graph.resolve_lock_namespaces(info, node[5]))
            elif tag in (IF, LOOP):
                walk(node[1])
                walk(node[2])
            elif tag == TRY:
                walk(node[1])
                for h in node[2]:
                    walk(h)
                walk(node[3])
            elif tag == WITH:
                walk(node[1])
                walk(node[2])

    walk(info.body)
    return out


class _AcquireChains:
    """Witness chains: where does `fid` (transitively) acquire `ns`?"""

    def __init__(self, graph: CallGraph, acquires: Dict[str, Set[str]]):
        self.graph = graph
        self.acquires = acquires
        self._cache: Dict[Tuple[str, str], Tuple[Hop, ...]] = {}

    def chain(self, fid: str, ns: str,
              _visited: Optional[Set[str]] = None) -> Tuple[Hop, ...]:
        key = (fid, ns)
        if key in self._cache:
            return self._cache[key]
        visited = _visited or set()
        if fid in visited or fid not in self.graph.functions:
            return ()
        visited.add(fid)
        info = self.graph.functions[fid]
        site = self._direct_site(info, ns)
        if site is not None:
            out = ((f"{info.qual} acquires {ns}", info.relpath, site),)
        else:
            out = ()
            for line, callee in self._calls_in_order(info):
                if ns in self.acquires.get(callee, set()):
                    sub = self.chain(callee, ns, visited)
                    callee_qual = self.graph.functions[callee].qual
                    out = ((f"{info.qual} calls {callee_qual}",
                            info.relpath, line),) + sub
                    break
        self._cache[key] = out
        return out

    def _direct_site(self, info: FuncInfo, ns: str) -> Optional[int]:
        found: List[int] = []

        def walk(block: List) -> None:
            for node in block:
                tag = node[0]
                if tag == CALL and node[4] == "acquire":
                    if ns in self.graph.resolve_lock_namespaces(info, node[5]):
                        found.append(node[1])
                elif tag in (IF, LOOP):
                    walk(node[1])
                    walk(node[2])
                elif tag == TRY:
                    walk(node[1])
                    for h in node[2]:
                        walk(h)
                    walk(node[3])
                elif tag == WITH:
                    walk(node[1])
                    walk(node[2])

        walk(info.body)
        return found[0] if found else None

    def _calls_in_order(self, info: FuncInfo) -> List[Tuple[int, str]]:
        out: List[Tuple[int, str]] = []

        def walk(block: List) -> None:
            for node in block:
                tag = node[0]
                if tag == CALL:
                    for callee in self.graph.resolve_call(info, node[3],
                                                          node[4]):
                        out.append((node[1], callee))
                elif tag in (IF, LOOP):
                    walk(node[1])
                    walk(node[2])
                elif tag == TRY:
                    walk(node[1])
                    for h in node[2]:
                        walk(h)
                    walk(node[3])
                elif tag == WITH:
                    walk(node[1])
                    walk(node[2])

        walk(info.body)
        return out


class _HeldWalker:
    """Collect acquisition edges for one function via a held-set walk."""

    def __init__(self, graph: CallGraph, info: FuncInfo,
                 acquires: Dict[str, Set[str]], chains: _AcquireChains,
                 known: Set[str]):
        self.graph = graph
        self.info = info
        self.acquires = acquires
        self.chains = chains
        self.known = known
        self.edges: List[_Edge] = []
        self.unregistered: List[Finding] = []
        self._flagged_sites: Set[int] = set()

    def walk(self, block: List, held: List[str]) -> List[str]:
        for node in block:
            tag = node[0]
            if tag == CALL:
                held = self._call(node, held)
            elif tag in (ASGN, RET, RAISE):
                pass
            elif tag == IF:
                h1 = self.walk(node[1], list(held))
                h2 = self.walk(node[2], list(held))
                held = self._join(h1, h2)
            elif tag == LOOP:
                h1 = self.walk(node[1], list(held))
                if sorted(h1) != sorted(held):
                    # second pass surfaces cross-iteration nesting
                    h1 = self.walk(node[1], list(h1))
                held = self._join(held, h1)
                held = self.walk(node[2], held)
            elif tag == TRY:
                h1 = self.walk(node[1], list(held))
                for handler in node[2]:
                    h1 = self._join(h1, self.walk(handler, list(h1)))
                held = self.walk(node[3], h1)
            elif tag == WITH:
                before = list(held)
                held = self.walk(node[1], held)
                scope_extra: List[str] = []
                for item in node[1]:
                    if item[0] != CALL:
                        continue
                    for callee in self.graph.resolve_call(
                            self.info, item[3], item[4]):
                        for ns in sorted(self.acquires.get(callee, set())):
                            if ns not in held:
                                scope_extra.append(ns)
                # a context manager that locks holds for the body only
                held = self.walk(node[2], held + scope_extra)
                held = [ns for ns in held if ns not in scope_extra or
                        ns in before]
        return held

    @staticmethod
    def _join(a: List[str], b: List[str]) -> List[str]:
        out = list(a)
        for ns in b:
            if out.count(ns) < b.count(ns):
                out.append(ns)
        return out

    def _call(self, node: List, held: List[str]) -> List[str]:
        line, recv, fn, lockspec = node[1], node[3], node[4], node[5]
        locks_recv = recv.split(".")[-1] == "locks"
        if fn == "acquire" and locks_recv:
            spaces = self.graph.resolve_lock_namespaces(self.info, lockspec)
            for ns in spaces:
                if ns == "?":
                    continue
                if ns not in self.known and line not in self._flagged_sites:
                    self._flagged_sites.add(line)
                    self.unregistered.append(Finding(
                        rule="lock-discipline", path=self.info.relpath,
                        line=line, col=0,
                        message=(f"lock namespace '{ns}' is not registered "
                                 "in repro.clock.LOCK_NAMESPACES"),
                        hint="register the namespace or fix the lock name",
                        qualname=self.info.qual, detail=f"unregistered:{ns}",
                        severity="warning",
                    ))
                hop: Hop = (f"{self.info.qual} acquires {ns}",
                            self.info.relpath, line)
                for h in sorted(set(held)):
                    self.edges.append(_Edge(h, ns, (hop,), self.info.qual))
                held = held + [ns]
            return held
        if fn == "release" and locks_recv:
            spaces = self.graph.resolve_lock_namespaces(self.info, lockspec)
            if spaces == ["?"]:
                return []          # unknown release: drop everything held
            out = list(held)
            for ns in spaces:
                if ns in out:
                    out.remove(ns)
            return out
        if fn == "atomic" and locks_recv:
            return held            # bounded reservation, not a held lock
        if held:
            for callee in self.graph.resolve_call(self.info, recv, fn):
                for ns in sorted(self.acquires.get(callee, set())):
                    chain = self.chains.chain(callee, ns)
                    callee_qual = self.graph.functions[callee].qual
                    hop = (f"{self.info.qual} calls {callee_qual}",
                           self.info.relpath, line)
                    for h in sorted(set(held)):
                        self.edges.append(
                            _Edge(h, ns, (hop,) + chain, self.info.qual))
        return held
