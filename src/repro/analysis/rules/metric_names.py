"""Rule ``metric-names`` — observability names resolve to the registry.

Every counter/gauge/histogram name handed to a MetricsRegistry and
every span/record name handed to a Tracer must appear in
:mod:`repro.obs.names` (``METRIC_NAMES`` / ``SPAN_NAMES``); f-string
names must start with an allowed prefix in ``SPAN_PREFIXES``.  A typo'd
label otherwise silently splits one series into two and only a human
staring at a dashboard notices.

Call sites are matched by receiver shape: ``*.registry`` /
``*.metrics`` receivers for ``counter``/``gauge``/``histogram``, and
``*.trace`` / ``*.tracer`` receivers for ``span`` (name is the second
argument, after ctx) and ``record`` (name first).  Names passed as
plain variables are invisible to the AST — the EventCounters facade in
``repro.clock`` is the one such site, covered by a runtime test that
asserts ``_COUNTER_LAYOUT``'s names are a subset of the registry.

The registry itself is read from the AST of ``repro/obs/names.py`` in
the same lint run (never imported), so the lint works on any checkout.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from ..engine import FileContext, ProjectRule
from ..findings import Finding
from . import dotted, enclosing_qualnames, fstring_head

_METRIC_METHODS = ("counter", "gauge", "histogram")
_METRIC_RECV = ("registry", "metrics")
_SPAN_RECV = ("trace", "tracer")
_REGISTRY_SUFFIX = "obs.names"
_REGISTRY_SETS = ("METRIC_NAMES", "SPAN_NAMES", "SPAN_PREFIXES")


def _name_arg(call: ast.Call, index: int) -> Optional[ast.AST]:
    if len(call.args) > index:
        return call.args[index]
    return None


class MetricNamesRule(ProjectRule):
    id = "metric-names"

    def collect(self, ctx: FileContext) -> Dict[str, object]:
        quals = enclosing_qualnames(ctx.tree)
        sites: List[Dict[str, object]] = []

        def record_site(kind: str, arg: ast.AST, call: ast.Call) -> None:
            entry: Dict[str, object] = {
                "kind": kind, "line": call.lineno, "col": call.col_offset,
                "qualname": quals.get(id(call), ""),
            }
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                entry["name"] = arg.value
            elif isinstance(arg, ast.JoinedStr):
                entry["head"] = fstring_head(arg)
            else:
                return   # variable name: runtime-tested, not statically
            sites.append(entry)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or \
                    not isinstance(node.func, ast.Attribute):
                continue
            recv = dotted(node.func.value)
            if recv is None:
                continue
            seg = recv.split(".")[-1].lower()
            method = node.func.attr
            if method in _METRIC_METHODS and seg in _METRIC_RECV:
                arg = _name_arg(node, 0)
                if arg is not None:
                    record_site("metric", arg, node)
            elif method == "span" and seg in _SPAN_RECV:
                arg = _name_arg(node, 1)
                if arg is not None:
                    record_site("span", arg, node)
            elif method == "record" and seg in _SPAN_RECV:
                arg = _name_arg(node, 0)
                if arg is not None:
                    record_site("span", arg, node)

        facts: Dict[str, object] = {"sites": sites}
        if ctx.module.endswith(_REGISTRY_SUFFIX):
            reg = self._parse_registry(ctx.tree)
            if reg:
                facts["registry"] = reg
        return facts

    @staticmethod
    def _parse_registry(tree: ast.Module) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {}
        for node in tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for t in targets:
                if not (isinstance(t, ast.Name) and t.id in _REGISTRY_SETS):
                    continue
                value = node.value
                if isinstance(value, ast.Call) and value.args:
                    value = value.args[0]   # frozenset({...})
                if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
                    out[t.id] = [e.value for e in value.elts
                                 if isinstance(e, ast.Constant)
                                 and isinstance(e.value, str)]
        return out

    def finalize(self, facts: Dict[str, Dict[str, object]]
                 ) -> List[Finding]:
        registry: Dict[str, List[str]] = {}
        for per_file in facts.values():
            if "registry" in per_file:
                registry = dict(per_file["registry"])
        if not registry:
            return []   # names.py outside the linted set
        metrics = set(registry.get("METRIC_NAMES", ()))
        spans = set(registry.get("SPAN_NAMES", ()))
        prefixes = tuple(registry.get("SPAN_PREFIXES", ()))
        findings: List[Finding] = []
        for relpath in sorted(facts):
            for site in facts[relpath].get("sites", []):
                kind = site["kind"]
                allowed = metrics if kind == "metric" else spans
                registry_set = ("METRIC_NAMES" if kind == "metric"
                                else "SPAN_NAMES")
                if "name" in site:
                    name = site["name"]
                    if name in allowed:
                        continue
                    if kind == "span" and name.startswith(prefixes) \
                            and prefixes:
                        continue
                    message = (f"{kind} name {name!r} is not in "
                               f"repro.obs.names.{registry_set}")
                    detail = name
                else:
                    head = site.get("head", "")
                    if kind == "span" and prefixes and head and \
                            head.startswith(prefixes):
                        continue
                    message = (f"dynamic {kind} name f'{head}...' does not "
                               "start with an allowed SPAN_PREFIXES entry")
                    detail = f"fstring:{head}"
                findings.append(Finding(
                    rule=self.id, path=relpath, line=int(site["line"]),
                    col=int(site["col"]), message=message,
                    hint="register the name in src/repro/obs/names.py "
                         "(see --emit-registry)",
                    qualname=str(site.get("qualname", "")), detail=detail))
        return findings


def emit_registry(targets, root=None) -> Dict[str, List[str]]:
    """Every metric/span name referenced at call sites (for names.py)."""
    import os

    from ..engine import FileContext, iter_python_files
    rule = MetricNamesRule()
    metrics, spans, heads = set(), set(), set()
    for path in iter_python_files(targets):
        try:
            with open(path, encoding="utf-8") as fh:
                src = fh.read()
            ctx = FileContext(path, os.path.relpath(path, root or os.getcwd()),
                              src)
        except (OSError, SyntaxError, UnicodeDecodeError):
            continue
        for site in rule.collect(ctx)["sites"]:
            if "name" in site:
                (metrics if site["kind"] == "metric" else spans).add(
                    str(site["name"]))
            elif site.get("head"):
                heads.add(str(site["head"]))
    return {"metrics": sorted(metrics), "spans": sorted(spans),
            "fstring_heads": sorted(heads)}
