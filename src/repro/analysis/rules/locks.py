"""Rule ``lock-discipline`` — inode/dirindex mutation outside a lock.

The per-inode mutex protocol in ``repro.fs`` / ``repro.vfs`` is
``ctx.locks.acquire(inode.lock_name, ctx.cpu)`` ... ``finally:
ctx.locks.release(...)``; concurrent CPUs serialise on simulated time
through it.  A write to a shared inode field outside any acquisition is
a lost-update bug waiting for a workload interleaving to expose it.

The check is an approximation of acquire-dominance: inside a function,
a mutation is considered protected if *some* lock acquisition (an
``*.locks.acquire(...)`` call, or a ``with``-statement whose context
expression mentions a lock) occurs at an earlier line.  Functions that
run strictly single-threaded (``mkfs``/``mount``/``unmount``/
``recover*``/constructors) are exempt, as is everything outside the
two target packages.

Deliberately unlocked sites (e.g. fault handlers that piggyback on the
VFS-level lock of the caller) take ``# repro: allow[lock-discipline]``
with a justification rather than a new lock: adding an acquisition
changes LockManager wait accounting and perturbs bit-identical
simulated timings.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from ..engine import FileContext, FileRule
from ..findings import Finding
from . import dotted, fstring_head, walk_functions

_SCOPES = ("repro.fs", "repro.vfs")

#: shared inode fields whose writes must be serialised
_PROTECTED_FIELDS = {
    "size", "nlink", "written_hwm", "parent_ino", "aligned_hint",
    "owner_cpu", "xattrs", "gen",
}

#: functions that run before/after any concurrency exists
_EXEMPT = {"mkfs", "mount", "unmount", "umount", "__init__",
           "__post_init__", "__repr__"}


def _walk_own(fn: ast.AST):
    """Walk a function's body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


def _is_inode_recv(recv: str) -> bool:
    return any("inode" in seg.lower() for seg in recv.split("."))


def _registered_namespaces() -> Set[str]:
    """Lock namespaces from repro.clock's registry (the source of truth).

    Resolving through the registry instead of string literals means a
    renamed lock family cannot silently fall out of this check — either
    its acquire sites still resolve (registered) or the flow-lint layer
    flags the unregistered name.
    """
    try:
        from repro.clock import LOCK_NAMESPACES
        return set(LOCK_NAMESPACES)
    except Exception:  # lint must run even from a broken tree
        return set()


def _name_arg_namespace(call: ast.Call) -> Optional[str]:
    """Namespace named by an acquire call's first argument, if static."""
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value.split(":", 1)[0]
    if isinstance(arg, ast.JoinedStr):
        head = fstring_head(arg).split(":", 1)[0]
        return head or None
    return None


def _is_lock_stmt(node: ast.AST) -> bool:
    """A statement that acquires a lock (call or with-block)."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            text = dotted(item.context_expr) or \
                (dotted(item.context_expr.func)
                 if isinstance(item.context_expr, ast.Call) else None)
            if text and "lock" in text.lower():
                return True
        return False
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "acquire":
        recv = dotted(node.func.value) or ""
        if recv.split(".")[-1] == "locks" or "lock" in recv.lower():
            return True
        ns = _name_arg_namespace(node)
        return ns is not None and ns in _registered_namespaces()
    return False


class LockDisciplineRule(FileRule):
    id = "lock-discipline"

    def run(self, ctx: FileContext) -> List[Finding]:
        if not ctx.module.startswith(_SCOPES):
            return []
        findings: List[Finding] = []
        for qual, fn in walk_functions(ctx.tree):
            name = qual.rsplit(".", 1)[-1]
            if name in _EXEMPT or name.startswith(("recover", "_recover",
                                                   "mkfs", "_mkfs")):
                continue
            findings.extend(self._check_function(ctx, qual, fn))
        return findings

    def _check_function(self, ctx: FileContext, qual: str,
                        fn: ast.AST) -> List[Finding]:
        first_acquire = None
        for node in _walk_own(fn):
            if _is_lock_stmt(node):
                if first_acquire is None or node.lineno < first_acquire:
                    first_acquire = node.lineno

        findings: List[Finding] = []
        seen: Set[int] = set()

        def flag(node: ast.AST, recv: str, field: str) -> None:
            if node.lineno in seen:
                return
            seen.add(node.lineno)
            findings.append(Finding(
                rule=self.id, path=ctx.relpath, line=node.lineno,
                col=node.col_offset,
                message=(f"mutation of {recv}.{field} outside any lock "
                         "acquisition"),
                hint="acquire the inode lock first, or allow-comment with "
                     "the reason this site is single-threaded",
                qualname=qual, detail=f"{recv}.{field}"))

        for node in _walk_own(fn):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                attr = target
                if isinstance(attr, ast.Subscript):   # inode.xattrs[k] = v
                    attr = attr.value
                if not isinstance(attr, ast.Attribute) or \
                        attr.attr not in _PROTECTED_FIELDS:
                    continue
                recv = dotted(attr.value)
                if recv is None or not _is_inode_recv(recv):
                    continue
                protected = first_acquire is not None and \
                    node.lineno >= first_acquire
                if not protected:
                    flag(node, recv, attr.attr)
        return findings
