"""Exception hierarchy for the repro library.

File-system errors mirror POSIX errno semantics so workloads and tests can
assert on specific failure modes across all seven simulated file systems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """The simulation itself was misused (bad clock, bad topology, ...)."""


class PMError(ReproError):
    """Persistent-memory device errors (out-of-range access, bad flush)."""


class ObservabilityError(ReproError):
    """Misuse of the metrics/tracing layer (kind conflict, label blow-up)."""


class FSError(ReproError):
    """Base class for file-system errors; carries a POSIX errno name."""

    errno_name = "EIO"


class NoSpaceError(FSError):
    """ENOSPC: the allocator could not satisfy the request."""

    errno_name = "ENOSPC"


class NotFoundError(FSError):
    """ENOENT: path or inode does not exist."""

    errno_name = "ENOENT"


class ExistsError(FSError):
    """EEXIST: path already exists."""

    errno_name = "EEXIST"


class NotADirectoryError_(FSError):
    """ENOTDIR: path component is not a directory."""

    errno_name = "ENOTDIR"


class IsADirectoryError_(FSError):
    """EISDIR: operation requires a regular file."""

    errno_name = "EISDIR"


class NotEmptyError(FSError):
    """ENOTEMPTY: directory not empty."""

    errno_name = "ENOTEMPTY"


class BadFileError(FSError):
    """EBADF: stale or closed file handle."""

    errno_name = "EBADF"


class InvalidArgumentError(FSError):
    """EINVAL: malformed argument (negative offset, bad mode, ...)."""

    errno_name = "EINVAL"


class ReadOnlyError(FSError):
    """EROFS: the file system is mounted read-only (e.g. mid-recovery)."""

    errno_name = "EROFS"


class BusyError(FSError):
    """EAGAIN: the service is saturated; retry later.

    Raised by the :mod:`repro.serve` multiplexer when a backend's
    admission queue is full — the loss-based backpressure signal that
    burns the service SLO error budget instead of growing latency."""

    errno_name = "EAGAIN"


class NotMountedError(FSError):
    """The file system has been unmounted or crashed; remount first."""

    errno_name = "ENODEV"


class CorruptionError(FSError):
    """Recovery or a checker detected an inconsistent on-PM state."""

    errno_name = "EUCLEAN"


class ChecksumError(CorruptionError):
    """A per-record checksum did not match (torn or corrupted record)."""

    errno_name = "EUCLEAN"


class MediaError(FSError):
    """EIO: an uncorrectable PM media error (poisoned cacheline).

    Raised by :class:`~repro.pm.device.PMDevice` when a load touches a
    poisoned line, and surfaced by the file systems as ``EIO`` instead of
    crashing — the degradation ladder in DESIGN.md starts here.
    """

    errno_name = "EIO"
