"""repro: a reproduction of WineFS (Kadekodi et al., SOSP 2021).

A hugepage-aware persistent-memory file system, its six baseline file
systems, and the paper's full evaluation, implemented on a simulated PM
machine (device, MMU/TLB, VFS) because the original is a Linux kernel
module tied to Optane hardware.

Quick start::

    from repro import make_machine, WineFS

    machine = make_machine(size_gib=1, num_cpus=4)
    fs = WineFS(machine.device, num_cpus=4)
    fs.mkfs(machine.ctx)
    f = fs.create("/data", machine.ctx)
    f.append(b"hello persistent world", machine.ctx)
    region = f.mmap(machine.ctx)

See README.md and DESIGN.md at the repository root.
"""

from dataclasses import dataclass

from .clock import EventCounters, SimClock, SimContext, make_context
from .obs import (MetricsRegistry, NULL_TRACER, Tracer, chrome_trace,
                  write_chrome_trace, write_metrics_json, write_span_jsonl)
from .params import (DEFAULT_MACHINE, GIB, HUGE_PAGE, KIB, MIB,
                     MachineParams, PartitionParams)
from .pm.device import PMDevice
from .pm.numa import NumaTopology
from .core.filesystem import WineFS
from .fs import Ext4DAX, NovaFS, PMFS, SplitFS, StrataFS, XfsDAX

__version__ = "1.0.0"


@dataclass
class Machine:
    """A bundled simulated machine: device + clock context."""

    device: PMDevice
    ctx: SimContext

    @property
    def elapsed_ns(self) -> float:
        return self.ctx.clock.elapsed


def make_machine(size_gib: float = 1.0, num_cpus: int = 4,
                 numa_nodes: int = 1, track_stores: bool = False,
                 machine_params: MachineParams = DEFAULT_MACHINE) -> Machine:
    """Build a simulated PM machine for examples and tests."""
    size = int(size_gib * GIB)
    size -= size % HUGE_PAGE
    topology = None
    if numa_nodes > 1:
        topology = NumaTopology(num_cpus=num_cpus, nodes=numa_nodes,
                                pm_bytes=size)
    device = PMDevice(size, machine_params, topology,
                      track_stores=track_stores)
    return Machine(device=device, ctx=make_context(num_cpus=num_cpus))


#: file systems with metadata-only consistency (paper Fig 7a-c group)
METADATA_CONSISTENT_FS = ["ext4-DAX", "xfs-DAX", "PMFS", "SplitFS",
                          "NOVA-relaxed", "WineFS-relaxed"]
#: file systems with data+metadata consistency (paper Fig 7d-f group)
DATA_CONSISTENT_FS = ["NOVA", "Strata", "WineFS"]

__all__ = [
    "Machine", "make_machine", "make_context",
    "SimClock", "SimContext", "EventCounters",
    "MetricsRegistry", "NULL_TRACER", "Tracer", "chrome_trace",
    "write_chrome_trace", "write_metrics_json", "write_span_jsonl",
    "MachineParams", "PartitionParams", "DEFAULT_MACHINE",
    "PMDevice", "NumaTopology",
    "WineFS", "Ext4DAX", "NovaFS", "PMFS", "XfsDAX", "SplitFS", "StrataFS",
    "METADATA_CONSISTENT_FS", "DATA_CONSISTENT_FS",
    "KIB", "MIB", "GIB", "HUGE_PAGE",
]
