"""Simulated MMU: page tables, TLB, LLC pollution, and mmap regions.

This package implements the hardware behaviour the WineFS paper's results
hinge on:

* a page fault costs 1-2us and 4KB mappings need 512x more of them than 2MB
  mappings (§1);
* a 2MB mapping is only possible when the backing file extent is physically
  2MB-aligned and contiguous (§2.2);
* even fully pre-faulted, 4KB mappings suffer TLB misses whose page-table
  walks evict application data from the processor caches, raising median
  access latency ~10x (§2.4, Fig 4).
"""

from .page_table import PageTable, Mapping
from .tlb import TLB
from .cache import CacheModel
from .mmap_region import MappedRegion

__all__ = ["PageTable", "Mapping", "TLB", "CacheModel", "MappedRegion"]
