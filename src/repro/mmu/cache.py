"""LLC pollution model.

Paper §2.4 / Fig 4: with a pre-faulted region, base pages still cost ~10x
median latency on random reads because every TLB miss walks the page table
and caches PTE lines in the processor caches, evicting the application's
hot data ("the array element ... has been knocked out of the processor
cache by page table entries").

We model the LLC as a hot-set filter: a configurable fraction of the
application's hot working set is cache-resident while pollution is low.
Each 4KB-TLB miss's page-walk fills PTE lines and, with probability
``pte_pollution``, evicts the *next* hot line the application would have
hit.  This produces exactly the bimodal latency CDF in Fig 4: hugepage
reads mostly hit the LLC (~tens of ns) while base-page reads mostly go to
PM (~hundreds of ns).
"""

from __future__ import annotations

from typing import Optional

from ..errors import SimulationError
from ..params import CACHELINE, MachineParams
from ..rng import make_rng


class CacheModel:
    """Stochastic LLC residency model for one workload's hot set.

    Parameters
    ----------
    machine:
        The machine cost model (provides LLC size and latencies).
    hot_set_bytes:
        Bytes of application data that would be LLC-resident absent
        pollution.
    seed:
        RNG seed for deterministic latency distributions.
    """

    def __init__(self, machine: MachineParams, hot_set_bytes: int,
                 seed: int = 0) -> None:
        if hot_set_bytes < 0:
            raise SimulationError("hot set must be non-negative")
        self.machine = machine
        self.hot_set_bytes = hot_set_bytes
        self._rng = make_rng(seed)
        # Fraction of the hot set that fits in the LLC at all.
        self.base_residency = min(1.0, machine.llc_bytes / hot_set_bytes) \
            if hot_set_bytes else 1.0
        self._pollution_pending = 0.0   # probability next access was evicted
        self.hits = 0
        self.misses = 0

    def pollute(self, lines: int = 8) -> None:
        """A page walk cached *lines* PTE cachelines, evicting hot data."""
        # Each PTE line displaces one hot line; convert to eviction
        # probability for upcoming accesses.
        displaced = lines * CACHELINE
        if self.hot_set_bytes:
            self._pollution_pending = min(
                1.0,
                self._pollution_pending + self.machine.pte_pollution *
                displaced / max(displaced, CACHELINE))
        else:
            self._pollution_pending = min(
                1.0, self._pollution_pending + self.machine.pte_pollution)

    def pollute_batch(self, count: int, lines: int = 8) -> None:
        """*count* :meth:`pollute` calls in one go.

        Pollution saturates at probability 1.0 and no consumer runs
        between the walks of one mapping run, so once pending reaches 1.0
        the remaining calls are no-ops and can be skipped.
        """
        for _ in range(count):
            if self._pollution_pending >= 1.0:
                return
            self.pollute(lines)

    def access_hot_line(self) -> bool:
        """Access one hot cacheline; True if it hit the LLC."""
        p_hit = self.base_residency
        if self._pollution_pending > 0.0:
            p_hit *= (1.0 - self._pollution_pending)
            # pollution is consumed: the walked PTEs stop displacing new
            # lines once the hot line has been refetched
            self._pollution_pending = 0.0
        hit = self._rng.random() < p_hit
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    def access_latency_ns(self, hit: bool, pm_resident: bool = True) -> float:
        """Latency of one 64B load given hit/miss and backing medium."""
        if hit:
            return self.machine.llc_hit_ns
        return self.machine.pm_load_ns if pm_resident else self.machine.dram_load_ns

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
