"""Page tables with mixed 4KB and 2MB mappings.

A :class:`PageTable` maps virtual page numbers of one mmap region to
physical PM addresses.  Mappings are installed by page faults (see
:class:`~repro.mmu.mmap_region.MappedRegion`); a 2MB mapping is installed
only when the backing extent is physically hugepage-aligned and contiguous,
per paper §2.2 ("Even a single byte offset from alignment forces the
operating system to fall back to base pages").

Two storage engines share the API:

- :class:`PageTable` (default) keeps flat ``int -> int`` tables — virtual
  page number to physical byte address — and materializes a
  :class:`Mapping` record only at the :meth:`~PageTable.lookup` /
  ``install_*`` boundary.  The mmap walk fast paths probe the raw int
  tables directly, so the hot loop never boxes a translation.
- :class:`ReferencePageTable` stores one :class:`Mapping` object per
  entry, the per-object layout the flat engine replaced.

Both engines expose identical facts (huge?, physical address, coverage),
so every simulated cost derived from them is bit-identical; the
equivalence suite constructs file systems under
:func:`repro.engine.reference_state_scope` to prove it.
:func:`make_page_table` picks the engine for new regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .. import engine as _engine
from ..errors import SimulationError
from ..params import BASE_PAGE, HUGE_PAGE

_PAGES_PER_HUGE = HUGE_PAGE // BASE_PAGE


@dataclass(frozen=True)
class Mapping:
    """One installed translation."""

    virt_page: int        # virtual page number in units of BASE_PAGE
    phys_addr: int        # physical PM byte address of the mapping start
    huge: bool            # True for a 2MB mapping

    @property
    def span_pages(self) -> int:
        return HUGE_PAGE // BASE_PAGE if self.huge else 1


class PageTable:
    """Per-region page table (flat-int engine).

    Keyed by 4KB virtual page number.  A huge mapping occupies a single PMD
    entry; we index it by its 2MB-range index and keep a secondary count map
    so any of its 512 covered pages resolves to it.
    """

    __slots__ = ("_base", "_huge", "_base_in_huge",
                 "installed_4k", "installed_2m", "generation")

    def __init__(self) -> None:
        #: virt page number -> physical byte address
        self._base: Dict[int, int] = {}
        #: huge-page index -> physical byte address
        self._huge: Dict[int, int] = {}
        self._base_in_huge: Dict[int, int] = {}  # base pages per huge index
        self.installed_4k = 0
        self.installed_2m = 0
        #: bumped whenever mappings are torn down; callers holding memoized
        #: facts about this table (e.g. the region's last-run memo) compare
        #: generations instead of revalidating against the dicts
        self.generation = 0

    @staticmethod
    def _huge_index(virt_page: int) -> int:
        return virt_page // _PAGES_PER_HUGE

    def lookup(self, virt_page: int) -> Optional[Mapping]:
        idx = virt_page // _PAGES_PER_HUGE
        phys = self._huge.get(idx)
        if phys is not None:
            return Mapping(idx * _PAGES_PER_HUGE, phys, huge=True)
        phys = self._base.get(virt_page)
        if phys is None:
            return None
        return Mapping(virt_page, phys, huge=False)

    def is_mapped(self, virt_page: int) -> bool:
        return (virt_page // _PAGES_PER_HUGE in self._huge
                or virt_page in self._base)

    def _check_base(self, virt_page: int, phys_addr: int) -> None:
        if virt_page // _PAGES_PER_HUGE in self._huge:
            raise SimulationError(f"page {virt_page} already covered by a "
                                  "huge mapping")
        if virt_page in self._base:
            raise SimulationError(f"page {virt_page} already mapped")
        if phys_addr % BASE_PAGE:
            raise SimulationError("physical address not page-aligned")

    def install_base(self, virt_page: int, phys_addr: int) -> Mapping:
        self._check_base(virt_page, phys_addr)
        self._base[virt_page] = phys_addr
        idx = virt_page // _PAGES_PER_HUGE
        self._base_in_huge[idx] = self._base_in_huge.get(idx, 0) + 1
        self.installed_4k += 1
        return Mapping(virt_page, phys_addr, huge=False)

    def install_base_fast(self, virt_page: int, phys_addr: int) -> None:
        """:meth:`install_base` without materializing the ``Mapping``
        return (the hot fault path; callers that need the object re-look
        it up)."""
        self._check_base(virt_page, phys_addr)
        self._base[virt_page] = phys_addr
        idx = virt_page // _PAGES_PER_HUGE
        self._base_in_huge[idx] = self._base_in_huge.get(idx, 0) + 1
        self.installed_4k += 1

    def _check_huge(self, virt_page: int, phys_addr: int) -> int:
        if virt_page % _PAGES_PER_HUGE:
            raise SimulationError("huge mapping must start on a 2MB virtual "
                                  "boundary")
        if phys_addr % HUGE_PAGE:
            raise SimulationError("huge mapping needs a 2MB-aligned physical "
                                  "address")
        idx = virt_page // _PAGES_PER_HUGE
        if idx in self._huge:
            raise SimulationError(f"huge page {idx} already mapped")
        if self._base_in_huge.get(idx):
            for vp in range(virt_page, virt_page + _PAGES_PER_HUGE):
                if vp in self._base:
                    raise SimulationError(f"base page {vp} already mapped "
                                          "inside prospective huge range")
        return idx

    def install_huge(self, virt_page: int, phys_addr: int) -> Mapping:
        idx = self._check_huge(virt_page, phys_addr)
        self._huge[idx] = phys_addr
        self.installed_2m += 1
        return Mapping(virt_page, phys_addr, huge=True)

    def base_unmapped_run(self, virt_page: int, max_pages: int) -> int:
        """Consecutive pages from *virt_page* with no base mapping.

        Caller guarantees no huge mapping covers the probed range.
        """
        base = self._base
        n = 0
        while n < max_pages and (virt_page + n) not in base:
            n += 1
        return n

    def install_base_run(self, first: int, count: int,
                         phys0: int) -> Mapping:
        """install_base for *count* consecutive pages inside ONE 2MB range,
        physically contiguous from *phys0*.  The caller guarantees the
        pages are unmapped and the range holds no huge mapping; alignment
        is still checked.  Returns the last mapping installed.
        """
        if phys0 % BASE_PAGE:
            raise SimulationError("physical address not page-aligned")
        base = self._base
        phys = phys0
        for vp in range(first, first + count):
            base[vp] = phys
            phys += BASE_PAGE
        idx = first // _PAGES_PER_HUGE
        self._base_in_huge[idx] = self._base_in_huge.get(idx, 0) + count
        self.installed_4k += count
        assert count > 0
        return Mapping(first + count - 1, phys - BASE_PAGE, huge=False)

    def unmap_all(self) -> None:
        self._base.clear()
        self._huge.clear()
        self._base_in_huge.clear()
        self.generation += 1

    def covered(self, huge_base_page: int) -> bool:
        """Any mapping inside the huge-page range starting at
        *huge_base_page* (equivalent to probing all 512 pages)."""
        idx = huge_base_page // _PAGES_PER_HUGE
        return idx in self._huge or bool(self._base_in_huge.get(idx))

    def base_run_length(self, virt_page: int, max_pages: int) -> int:
        """Length of the consecutive base-mapped run at *virt_page*,
        capped at *max_pages*."""
        base = self._base
        n = 0
        while n < max_pages and (virt_page + n) in base:
            n += 1
        return n

    def translate(self, virt_addr: int) -> int:
        """Virtual byte offset within the region -> physical PM address."""
        virt_page = virt_addr // BASE_PAGE
        idx = virt_page // _PAGES_PER_HUGE
        phys = self._huge.get(idx)
        if phys is not None:
            return phys + (virt_addr - idx * HUGE_PAGE)
        phys = self._base.get(virt_page)
        if phys is None:
            raise SimulationError(f"address {virt_addr:#x} not mapped")
        return phys + (virt_addr % BASE_PAGE)

    def bind_metrics(self, registry, **labels) -> None:
        """Expose mapping counts through callback gauges on *registry*."""
        registry.gauge("pt_mapped_pages", fn=lambda: len(self._base),
                       size="4k", **labels)
        registry.gauge("pt_mapped_pages", fn=lambda: len(self._huge),
                       size="2m", **labels)
        registry.gauge("pt_installed_total", fn=lambda: self.installed_4k,
                       size="4k", **labels)
        registry.gauge("pt_installed_total", fn=lambda: self.installed_2m,
                       size="2m", **labels)

    @property
    def mapped_pages_4k(self) -> int:
        return len(self._base)

    @property
    def mapped_pages_2m(self) -> int:
        return len(self._huge)

    def hugepage_fraction(self, total_pages: int) -> float:
        """Fraction of mapped 4KB-page-equivalents covered by hugepages."""
        if total_pages <= 0:
            raise SimulationError("total_pages must be positive")
        covered = len(self._huge) * (HUGE_PAGE // BASE_PAGE)
        return covered / total_pages


class ReferencePageTable(PageTable):
    """Per-object engine: one boxed :class:`Mapping` per installed entry.

    The membership helpers (``covered``, run probes, counts) are inherited
    — they only test key presence, which both layouts share.  Fast paths
    that probe the raw tables must treat values as opaque (None-check
    only); :class:`~repro.mmu.mmap_region.MappedRegion` does.
    """

    __slots__ = ()

    def lookup(self, virt_page: int) -> Optional[Mapping]:
        m = self._huge.get(virt_page // _PAGES_PER_HUGE)
        if m is not None:
            return m
        return self._base.get(virt_page)

    def install_base(self, virt_page: int, phys_addr: int) -> Mapping:
        self._check_base(virt_page, phys_addr)
        m = Mapping(virt_page, phys_addr, huge=False)
        self._base[virt_page] = m
        idx = virt_page // _PAGES_PER_HUGE
        self._base_in_huge[idx] = self._base_in_huge.get(idx, 0) + 1
        self.installed_4k += 1
        return m

    def install_base_fast(self, virt_page: int, phys_addr: int) -> None:
        # the reference layout stores the Mapping either way
        self.install_base(virt_page, phys_addr)

    def install_huge(self, virt_page: int, phys_addr: int) -> Mapping:
        idx = self._check_huge(virt_page, phys_addr)
        m = Mapping(virt_page, phys_addr, huge=True)
        self._huge[idx] = m
        self.installed_2m += 1
        return m

    def install_base_run(self, first: int, count: int,
                         phys0: int) -> Mapping:
        if phys0 % BASE_PAGE:
            raise SimulationError("physical address not page-aligned")
        base = self._base
        m = None
        phys = phys0
        for vp in range(first, first + count):
            base[vp] = m = Mapping(vp, phys, huge=False)
            phys += BASE_PAGE
        idx = first // _PAGES_PER_HUGE
        self._base_in_huge[idx] = self._base_in_huge.get(idx, 0) + count
        self.installed_4k += count
        assert m is not None
        return m

    def translate(self, virt_addr: int) -> int:
        virt_page = virt_addr // BASE_PAGE
        m = self.lookup(virt_page)
        if m is None:
            raise SimulationError(f"address {virt_addr:#x} not mapped")
        if m.huge:
            base_virt = m.virt_page * BASE_PAGE
            return m.phys_addr + (virt_addr - base_virt)
        return m.phys_addr + (virt_addr % BASE_PAGE)


def make_page_table() -> PageTable:
    """Engine-selected page table for a new mapping."""
    if _engine.reference_state():
        return ReferencePageTable()
    return PageTable()
