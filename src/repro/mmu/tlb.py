"""TLB model.

A fully-associative-per-size LRU TLB with separate capacity for 4KB and 2MB
entries (modern STLBs share capacity; a split model keeps the reach math
transparent).  The decisive property for the paper's results is *reach*:
1536 4KB entries cover 6MB of address space while 1024 2MB entries cover
2GB, so a large working set thrashes the 4KB TLB but fits entirely in the
2MB TLB.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from ..errors import SimulationError


#: entry keys pack (region_id, page_no) into one int — ``region << 48 |
#: page`` — because the lookup dicts are the hottest structures in the
#: simulator and int keys hash/compare much faster than tuples.  48 bits
#: of page number cover 2^60 bytes of mapping, far beyond any simulated
#: device.
_KEY_SHIFT = 48
_PAGE_MASK = (1 << _KEY_SHIFT) - 1


class TLB:
    """LRU TLB keyed by (region id, page number, huge?)."""

    def __init__(self, entries_4k: int, entries_2m: int) -> None:
        if entries_4k < 1 or entries_2m < 1:
            raise SimulationError("TLB needs at least one entry per size")
        self._cap_4k = entries_4k
        self._cap_2m = entries_2m
        # OrderedDict, deliberately: a plain insertion-ordered dict can
        # mimic the LRU (del + reinsert, evict first key) but its
        # eviction scan walks delete tombstones and measures ~5x slower
        # under miss-dominated thrash; popitem(last=False) is O(1)
        self._map_4k: "OrderedDict[int, None]" = OrderedDict()
        self._map_2m: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, region_id: int, page_no: int, huge: bool) -> bool:
        """Look up a translation; returns True on hit.

        On a miss the translation is installed (the walk result), evicting
        the LRU entry if at capacity.
        """
        table = self._map_2m if huge else self._map_4k
        cap = self._cap_2m if huge else self._cap_4k
        key = (region_id << _KEY_SHIFT) | page_no
        if key in table:
            table.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        table[key] = None
        if len(table) > cap:
            table.popitem(last=False)
        return False

    def access_run(self, region_id: int, start_page: int, npages: int,
                   huge: bool) -> Tuple[int, int]:
        """*npages* sequential accesses; returns ``(hits, misses)``.

        Table updates (LRU promotion, install, eviction) happen op-for-op
        exactly as *npages* :meth:`access` calls would make them; only the
        hit/miss counter bumps are grouped.
        """
        table = self._map_2m if huge else self._map_4k
        cap = self._cap_2m if huge else self._cap_4k
        move_to_end = table.move_to_end
        popitem = table.popitem
        hits = 0
        base_key = region_id << _KEY_SHIFT
        for page_no in range(start_page, start_page + npages):
            key = base_key | page_no
            if key in table:
                move_to_end(key)
                hits += 1
            else:
                table[key] = None
                if len(table) > cap:
                    popitem(last=False)
        misses = npages - hits
        self.hits += hits
        self.misses += misses
        return hits, misses

    def invalidate_region(self, region_id: int) -> int:
        """TLB shootdown for one region; returns entries dropped."""
        dropped = 0
        for table in (self._map_4k, self._map_2m):
            stale = [k for k in table if k >> _KEY_SHIFT == region_id]
            for k in stale:
                del table[k]
            dropped += len(stale)
        return dropped

    def flush(self) -> None:
        self._map_4k.clear()
        self._map_2m.clear()

    def bind_metrics(self, registry, **labels) -> None:
        """Expose this TLB through callback gauges on *registry*.

        Reads live state at collection time; nothing is charged to the
        simulated clock and the hot ``access`` path is untouched.
        """
        registry.gauge("tlb_occupancy", fn=lambda: len(self._map_4k),
                       size="4k", **labels)
        registry.gauge("tlb_occupancy", fn=lambda: len(self._map_2m),
                       size="2m", **labels)
        registry.gauge("tlb_lookups_total", fn=lambda: self.hits,
                       result="hit", **labels)
        registry.gauge("tlb_lookups_total", fn=lambda: self.misses,
                       result="miss", **labels)
        registry.gauge("tlb_miss_rate", fn=lambda: self.miss_rate, **labels)

    @property
    def occupancy(self) -> Tuple[int, int]:
        return len(self._map_4k), len(self._map_2m)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
