"""Memory-mapped regions.

A :class:`MappedRegion` is what an application gets back from ``mmap()`` on
a simulated file system: a window of virtual address space backed by the
file's physical extents.  Accessing it triggers the full hardware pipeline:

1. page fault on first touch of an unmapped page (4KB or 2MB, depending on
   whether the backing extent is hugepage-aligned and contiguous);
2. TLB lookup per touched page on every access;
3. on a 4KB TLB miss, a page walk that pollutes the LLC (Fig 4 effect);
4. the data copy itself at PM bandwidth.

All costs are charged to the caller's :class:`~repro.clock.SimContext` and
counted in its :class:`~repro.clock.EventCounters`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..clock import SimContext
from ..errors import InvalidArgumentError, SimulationError
from ..params import BASE_PAGE, HUGE_PAGE, MachineParams
from ..pm.device import PMDevice
from ..structures.extents import ExtentList, Extent
from .cache import CacheModel
from .page_table import PageTable
from .tlb import TLB

_PAGES_PER_HUGE = HUGE_PAGE // BASE_PAGE
_next_region_id = [0]


class MappedRegion:
    """One mmap of one file.

    Parameters
    ----------
    device, machine:
        The PM device and its cost model.
    extents:
        The file's physical block map at mmap time.  File systems hand this
        out; a region sees a *snapshot* (remapping after file growth
        requires a fresh mmap, as with real ``mmap``).
    block_size:
        FS block size in bytes (4KB everywhere in this repro).
    tlb, cache:
        Shared TLB/LLC models.  Pass the same instances across regions to
        model one core's hardware; defaults create private ones.
    fault_zero_fill:
        True if this file system zeroes pages inside the fault handler
        (ext4-DAX behaviour, §5.4 PmemKV discussion); False if allocation
        time already zeroed them (NOVA behaviour).
    track_data:
        When True, reads/writes move real bytes through the PM device;
        when False only costs and counters are produced (large benches).
    """

    def __init__(self, device: PMDevice, machine: MachineParams,
                 extents: ExtentList, length: int, block_size: int,
                 tlb: Optional[TLB] = None, cache: Optional[CacheModel] = None,
                 fault_zero_fill: bool = False, track_data: bool = True) -> None:
        if length <= 0:
            raise InvalidArgumentError("mmap length must be positive")
        if extents.total_blocks * block_size < length:
            raise InvalidArgumentError(
                f"extents cover {extents.total_blocks * block_size} bytes, "
                f"cannot map {length}")
        self.device = device
        self.machine = machine
        self.extents = extents
        self.length = length
        self.block_size = block_size
        self.page_table = PageTable()
        self.tlb = tlb if tlb is not None else TLB(machine.tlb_4k_entries,
                                                   machine.tlb_2m_entries)
        self.cache = cache
        self.fault_zero_fill = fault_zero_fill
        self.track_data = track_data
        self.region_id = _next_region_id[0]
        _next_region_id[0] += 1
        self._blocks_per_page = BASE_PAGE // block_size if block_size < BASE_PAGE else 1

    # -- fault handling -----------------------------------------------------------

    def _phys_of_virt_page(self, virt_page: int) -> int:
        """Physical byte address backing a virtual 4KB page."""
        logical_block = virt_page * (BASE_PAGE // self.block_size)
        return self.extents.physical_block(logical_block) * self.block_size

    def _can_map_huge(self, virt_page: int) -> bool:
        """A 2MB mapping needs virtual & physical 2MB alignment and 512
        physically contiguous blocks (paper §2.2)."""
        if virt_page % _PAGES_PER_HUGE:
            return False
        huge_start = virt_page - (virt_page % _PAGES_PER_HUGE)
        if (huge_start + _PAGES_PER_HUGE) * BASE_PAGE > self.length:
            return False
        base_phys = self._phys_of_virt_page(huge_start)
        if base_phys % HUGE_PAGE:
            return False
        # contiguity: every covered page must be at the expected offset
        logical0 = huge_start * (BASE_PAGE // self.block_size)
        blocks_needed = HUGE_PAGE // self.block_size
        try:
            runs = self.extents.slice_logical(logical0, blocks_needed)
        except IndexError:
            return False
        return len(runs) == 1

    def fault(self, virt_page: int, ctx: SimContext) -> bool:
        """Handle a page fault at *virt_page*; returns True if huge.

        Mirrors the kernel DAX fault path: try a PMD (2MB) mapping first,
        fall back to a PTE (4KB) mapping.
        """
        if not ctx.trace.enabled:
            return self._handle_fault(virt_page, ctx)
        start = ctx.now
        huge = self._handle_fault(virt_page, ctx)
        ctx.trace.record("mmu.fault", ctx.cpu, start, ctx.now,
                         page=virt_page, huge=huge)
        return huge

    def _handle_fault(self, virt_page: int, ctx: SimContext) -> bool:
        huge_base = virt_page - (virt_page % _PAGES_PER_HUGE)
        if self._can_map_huge(huge_base) and not any(
                self.page_table.lookup(p) is not None
                for p in range(huge_base, huge_base + _PAGES_PER_HUGE)):
            # (a PMD install is only possible when no PTE in the range is
            # already populated — otherwise the kernel falls back to 4KB)
            phys = self._phys_of_virt_page(huge_base)
            self.page_table.install_huge(huge_base, phys)
            ns = self.machine.fault_huge_ns
            if self.fault_zero_fill and self._page_unwritten(huge_base):
                ns += self.machine.pm_write_ns(HUGE_PAGE) * self.machine.fault_zero_page_mult
            ctx.charge(ns)
            ctx.counters.page_faults_2m += 1
            ctx.counters.fault_ns += ns
            return True
        phys = self._phys_of_virt_page(virt_page)
        self.page_table.install_base(virt_page, phys)
        ns = self.machine.fault_base_ns
        if self.fault_zero_fill and self._page_unwritten(virt_page):
            ns += self.machine.pm_write_ns(BASE_PAGE) * self.machine.fault_zero_page_mult
        ctx.charge(ns)
        ctx.counters.page_faults_4k += 1
        ctx.counters.fault_ns += ns
        return False

    def _page_unwritten(self, virt_page: int) -> bool:
        """Does this page lie beyond the file's written bytes?

        DAX file systems only zero *unwritten* (fallocated or demand-
        allocated) extents inside the fault handler; populated file
        contents are mapped as-is.  The base region has no file, so it
        treats everything as unwritten.
        """
        return True

    def prefault(self, ctx: SimContext) -> None:
        """Touch every page once (MAP_POPULATE / application warm-up)."""
        page = 0
        total_pages = (self.length + BASE_PAGE - 1) // BASE_PAGE
        while page < total_pages:
            if not self.page_table.is_mapped(page):
                huge = self.fault(page, ctx)
                page += _PAGES_PER_HUGE if huge else 1
            else:
                m = self.page_table.lookup(page)
                page += m.span_pages if m else 1

    # -- TLB/walk accounting ----------------------------------------------------------

    def _touch_translation(self, virt_page: int, ctx: SimContext) -> None:
        m = self.page_table.lookup(virt_page)
        if m is None:
            self.fault(virt_page, ctx)
            m = self.page_table.lookup(virt_page)
            assert m is not None
        key_page = m.virt_page if m.huge else virt_page
        hit = self.tlb.access(self.region_id, key_page, m.huge)
        if hit:
            ctx.counters.tlb_hits += 1
            ctx.charge(self.machine.tlb_hit_ns)
        else:
            ctx.counters.tlb_misses += 1
            ctx.charge(self.machine.page_walk_ns)
            if self.cache is not None and not m.huge:
                # a 4-level walk caches PTE lines, evicting hot data (Fig 4)
                self.cache.pollute()

    def _walk_pages(self, offset: int, size: int, ctx: SimContext) -> None:
        first = offset // BASE_PAGE
        last = (offset + size - 1) // BASE_PAGE
        page = first
        while page <= last:
            self._touch_translation(page, ctx)
            m = self.page_table.lookup(page)
            assert m is not None
            if m.huge:
                page = m.virt_page + _PAGES_PER_HUGE
            else:
                page += 1

    # -- data access -----------------------------------------------------------------

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.length:
            raise InvalidArgumentError(
                f"access [{offset}, +{size}) outside mapping of {self.length}")

    def read(self, offset: int, size: int, ctx: SimContext) -> bytes:
        """memcpy out of the mapping."""
        self._check_range(offset, size)
        if size == 0:
            return b""
        self._walk_pages(offset, size, ctx)
        ns = self.machine.pm_read_ns(size)
        ctx.charge(ns)
        ctx.counters.copy_ns += ns
        ctx.counters.pm_bytes_read += size
        if not self.track_data:
            return b"\x00" * size
        return self._copy_out(offset, size, ctx)

    def write(self, offset: int, data: bytes, ctx: SimContext) -> None:
        """memcpy into the mapping (non-temporal stores + fence)."""
        self._check_range(offset, len(data))
        if not data:
            return
        self._walk_pages(offset, len(data), ctx)
        ns = self.machine.pm_write_ns(len(data)) + self.machine.sfence_ns
        ctx.charge(ns)
        ctx.counters.copy_ns += ns
        ctx.counters.pm_bytes_written += len(data)
        if self.track_data:
            self._copy_in(offset, data)

    def read_element(self, offset: int, ctx: SimContext) -> float:
        """One dependent 64B load (the Fig 4 / Fig 8 pointer-chase probe).

        Returns the access latency in ns (also charged to the context).
        """
        self._check_range(offset, 1)
        before = ctx.now
        self._touch_translation(offset // BASE_PAGE, ctx)
        if self.cache is not None:
            hit = self.cache.access_hot_line()
            lat = self.cache.access_latency_ns(hit)
            if hit:
                ctx.counters.llc_hits += 1
            else:
                ctx.counters.llc_misses += 1
        else:
            lat = self.machine.pm_load_ns
            ctx.counters.llc_misses += 1
        ctx.charge(lat)
        return ctx.now - before

    # -- raw data movement helpers ----------------------------------------------------

    def _segments(self, offset: int, size: int) -> List[Tuple[int, int]]:
        """(physical address, length) runs covering [offset, +size)."""
        out: List[Tuple[int, int]] = []
        pos = offset
        end = offset + size
        while pos < end:
            block = pos // self.block_size
            within = pos % self.block_size
            phys_block = self.extents.physical_block(block)
            take = min(self.block_size - within, end - pos)
            out.append((phys_block * self.block_size + within, take))
            pos += take
        # merge physically adjacent runs
        merged: List[Tuple[int, int]] = []
        for addr, ln in out:
            if merged and merged[-1][0] + merged[-1][1] == addr:
                merged[-1] = (merged[-1][0], merged[-1][1] + ln)
            else:
                merged.append((addr, ln))
        return merged

    def _copy_out(self, offset: int, size: int, ctx: SimContext) -> bytes:
        chunks = []
        for addr, ln in self._segments(offset, size):
            chunks.append(self.device.load(addr, ln))
        return b"".join(chunks)

    def _copy_in(self, offset: int, data: bytes) -> None:
        pos = 0
        for addr, ln in self._segments(offset, len(data)):
            self.device.store(addr, data[pos:pos + ln])
            self.device.clwb(addr, ln)
            pos += ln
        self.device.sfence()

    # -- metrics -------------------------------------------------------------------------

    @property
    def hugepage_fraction(self) -> float:
        """Fraction of the mapping currently covered by 2MB mappings."""
        total_pages = (self.length + BASE_PAGE - 1) // BASE_PAGE
        return self.page_table.hugepage_fraction(total_pages)

    def mappable_hugepages(self) -> int:
        return self.extents.mappable_hugepages()

    def unmap(self) -> int:
        """Tear down; returns number of TLB entries shot down."""
        dropped = self.tlb.invalidate_region(self.region_id)
        self.page_table.unmap_all()
        return dropped
