"""Memory-mapped regions.

A :class:`MappedRegion` is what an application gets back from ``mmap()`` on
a simulated file system: a window of virtual address space backed by the
file's physical extents.  Accessing it triggers the full hardware pipeline:

1. page fault on first touch of an unmapped page (4KB or 2MB, depending on
   whether the backing extent is hugepage-aligned and contiguous);
2. TLB lookup per touched page on every access;
3. on a 4KB TLB miss, a page walk that pollutes the LLC (Fig 4 effect);
4. the data copy itself at PM bandwidth.

All costs are charged to the caller's :class:`~repro.clock.SimContext` and
counted in its :class:`~repro.clock.EventCounters`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..clock import SimContext
from ..errors import InvalidArgumentError, SimulationError
from ..params import BASE_PAGE, HUGE_PAGE, MachineParams
from ..pm.device import PMDevice
from ..pm.zeros import Zeros, zero_bytes
from ..structures.extents import ExtentList, Extent
from .cache import CacheModel
from .page_table import Mapping, PageTable, make_page_table
from .tlb import TLB

_PAGES_PER_HUGE = HUGE_PAGE // BASE_PAGE
_next_region_id = [0]


class MappedRegion:
    """One mmap of one file.

    Parameters
    ----------
    device, machine:
        The PM device and its cost model.
    extents:
        The file's physical block map at mmap time.  File systems hand this
        out; a region sees a *snapshot* (remapping after file growth
        requires a fresh mmap, as with real ``mmap``).
    block_size:
        FS block size in bytes (4KB everywhere in this repro).
    tlb, cache:
        Shared TLB/LLC models.  Pass the same instances across regions to
        model one core's hardware; defaults create private ones.
    fault_zero_fill:
        True if this file system zeroes pages inside the fault handler
        (ext4-DAX behaviour, §5.4 PmemKV discussion); False if allocation
        time already zeroed them (NOVA behaviour).
    track_data:
        When True, reads/writes move real bytes through the PM device;
        when False only costs and counters are produced (large benches).
    """

    #: class-wide switch between the batched walk engine (charge costs per
    #: mapping *run*) and the per-event reference walk (one TLB event per
    #: page).  Both produce bit-identical simulated time and counters; the
    #: equivalence suite flips this to prove it.
    batch = True

    def __init__(self, device: PMDevice, machine: MachineParams,
                 extents: ExtentList, length: int, block_size: int,
                 tlb: Optional[TLB] = None, cache: Optional[CacheModel] = None,
                 fault_zero_fill: bool = False, track_data: bool = True) -> None:
        if length <= 0:
            raise InvalidArgumentError("mmap length must be positive")
        if extents.total_blocks * block_size < length:
            raise InvalidArgumentError(
                f"extents cover {extents.total_blocks * block_size} bytes, "
                f"cannot map {length}")
        self.device = device
        self.machine = machine
        self.extents = extents
        self.length = length
        self.block_size = block_size
        self.page_table = make_page_table()
        self.tlb = tlb if tlb is not None else TLB(machine.tlb_4k_entries,
                                                   machine.tlb_2m_entries)
        self.cache = cache
        self.fault_zero_fill = fault_zero_fill
        self.track_data = track_data
        self.region_id = _next_region_id[0]
        _next_region_id[0] += 1
        self._blocks_per_page = BASE_PAGE // block_size if block_size < BASE_PAGE else 1
        self._init_walk_state()

    def _init_walk_state(self) -> None:
        """Walk-engine state shared by every constructor path.

        ``_FSMappedRegion.__init__`` bypasses ``MappedRegion.__init__``
        (sparse mappings fail its extents-cover-length check), so this
        must stay a separate call both constructors make.
        """
        #: mapping installed by the most recent _handle_fault (saves the
        #: fault-then-lookup round trip on the walk path)
        self._last_fault: Optional[Mapping] = None
        #: last-run memo: [_memo_lo, _memo_hi] is a span of pages verified
        #: base-mapped while the page table was at generation _memo_gen;
        #: sequential access inside it skips the page-table dict entirely
        self._memo_lo = 0
        self._memo_hi = -1
        self._memo_gen = -1
        #: per-fault charge for a zero-filling fault, precomputed: the sum
        #: is the same float every fault, so hoisting it out of
        #: _handle_fault changes nothing bit-wise
        machine = self.machine
        self._fault_base_zero_ns = machine.fault_base_ns \
            + machine.pm_write_ns(BASE_PAGE) * machine.fault_zero_page_mult
        self._fault_huge_zero_ns = machine.fault_huge_ns \
            + machine.pm_write_ns(HUGE_PAGE) * machine.fault_zero_page_mult

    # -- fault handling -----------------------------------------------------------

    def _phys_of_virt_page(self, virt_page: int) -> int:
        """Physical byte address backing a virtual 4KB page."""
        logical_block = virt_page * (BASE_PAGE // self.block_size)
        return self.extents.physical_block(logical_block) * self.block_size

    def _huge_phys_or_none(self, virt_page: int) -> Optional[int]:
        """Physical address for a 2MB mapping at *virt_page*, or None.

        A 2MB mapping needs virtual & physical 2MB alignment and 512
        physically contiguous blocks (paper §2.2).  Returning the
        physical address lets the fault handler skip a second extent
        lookup when the mapping is possible.
        """
        if virt_page % _PAGES_PER_HUGE:
            return None
        if (virt_page + _PAGES_PER_HUGE) * BASE_PAGE > self.length:
            return None
        base_phys = self._phys_of_virt_page(virt_page)
        if base_phys % HUGE_PAGE:
            return None
        # contiguity: every covered page must be at the expected offset
        logical0 = virt_page * (BASE_PAGE // self.block_size)
        blocks_needed = HUGE_PAGE // self.block_size
        try:
            runs = self.extents.slice_logical(logical0, blocks_needed)
        except IndexError:
            return None
        return base_phys if len(runs) == 1 else None

    def _can_map_huge(self, virt_page: int) -> bool:
        """A 2MB mapping needs virtual & physical 2MB alignment and 512
        physically contiguous blocks (paper §2.2)."""
        return self._huge_phys_or_none(virt_page) is not None

    def fault(self, virt_page: int, ctx: SimContext) -> bool:
        """Handle a page fault at *virt_page*; returns True if huge.

        Mirrors the kernel DAX fault path: try a PMD (2MB) mapping first,
        fall back to a PTE (4KB) mapping.
        """
        if not ctx.trace.enabled:
            return self._handle_fault(virt_page, ctx)
        start = ctx.now
        huge = self._handle_fault(virt_page, ctx)
        ctx.trace.record("mmu.fault", ctx.cpu, start, ctx.now,
                         page=virt_page, huge=huge)
        return huge

    def _handle_fault(self, virt_page: int, ctx: SimContext) -> bool:
        huge_base = virt_page - (virt_page % _PAGES_PER_HUGE)
        # (a PMD install is only possible when no PTE in the range is
        # already populated — otherwise the kernel falls back to 4KB);
        # checking coverage first skips the contiguity probe for every
        # later fault inside an already part-populated 2MB range
        huge_phys = None if self.page_table.covered(huge_base) \
            else self._huge_phys_or_none(huge_base)
        # counter/clock writes are inlined (the read_element pattern):
        # same values in the same order as ctx.charge + the counter
        # properties, minus the dispatch overhead — this path runs once
        # per unique page in every aged/rand workload
        counters = ctx.counters
        if huge_phys is not None:
            self._last_fault = self.page_table.install_huge(huge_base,
                                                            huge_phys)
            if self.fault_zero_fill and self._page_unwritten(huge_base):
                ns = self._fault_huge_zero_ns
            else:
                ns = self.machine.fault_huge_ns
            ctx.clock._cpu_ns[ctx.cpu] += ns
            counters._page_faults_2m.value += 1
            counters._fault_ns.value += ns
            return True
        phys = self._phys_of_virt_page(virt_page)
        # no-Mapping install: _resolve_page re-looks the entry up via its
        # None fallback on the paths that need the object
        self.page_table.install_base_fast(virt_page, phys)
        self._last_fault = None
        if self.fault_zero_fill and self._page_unwritten(virt_page):
            ns = self._fault_base_zero_ns
        else:
            ns = self.machine.fault_base_ns
        ctx.clock._cpu_ns[ctx.cpu] += ns
        counters._page_faults_4k.value += 1
        counters._fault_ns.value += ns
        return False

    def _page_unwritten(self, virt_page: int) -> bool:
        """Does this page lie beyond the file's written bytes?

        DAX file systems only zero *unwritten* (fallocated or demand-
        allocated) extents inside the fault handler; populated file
        contents are mapped as-is.  The base region has no file, so it
        treats everything as unwritten.
        """
        return True

    def _first_unwritten_page(self) -> int:
        """First page :meth:`_page_unwritten` holds for (written bytes end
        at a single high-water mark, so the predicate is monotone)."""
        return 0

    def _prefault_run_ready(self, first_page: int, last_page: int) -> bool:
        """True when faulting [first_page, last_page] cannot demand-
        allocate (all backing blocks already exist)."""
        return True

    def _prefault_base_run(self, start: int, last: int,
                           ctx: SimContext) -> int:
        """Fault-in the unmapped run at *start* (bounded by *last*, inside
        one 2MB range whose coverage already forbids a PMD install),
        charging bit-identically to per-page :meth:`fault` calls.
        Returns the next page for the prefault loop to consider.
        """
        pt = self.page_table
        n = pt.base_unmapped_run(start, last - start + 1)
        if n == 0:
            return start
        machine = self.machine
        base_ns = machine.fault_base_ns
        counters = ctx.counters
        if self.fault_zero_fill:
            zbound = self._first_unwritten_page()
            n_written = min(max(zbound - start, 0), n)
            zero_ns = self._fault_base_zero_ns
        else:
            n_written = n
            zero_ns = base_ns
        # pages ascend, so written pages (below the high-water mark)
        # precede zero-filled ones: two charge_repeat calls reproduce the
        # per-page charge sequence exactly
        if n_written:
            ctx.charge_repeat(base_ns, n_written)
            counters.add_repeat("fault_ns", base_ns, n_written)
        n_zero = n - n_written
        if n_zero:
            ctx.charge_repeat(zero_ns, n_zero)
            counters.add_repeat("fault_ns", zero_ns, n_zero)
        counters.page_faults_4k += n
        # block_size == BASE_PAGE on this path, so logical blocks and
        # pages coincide; install one run per physically contiguous extent
        page = start
        m = None
        for run in self.extents.slice_logical(start, n):
            m = pt.install_base_run(page, run.length, run.start * BASE_PAGE)
            page += run.length
        self._last_fault = m
        return start + n

    def prefault(self, ctx: SimContext) -> None:
        """Touch every page once (MAP_POPULATE / application warm-up)."""
        page = 0
        total_pages = (self.length + BASE_PAGE - 1) // BASE_PAGE
        lookup = self.page_table.lookup
        can_batch = (self.batch and not ctx.trace.enabled
                     and self.block_size == BASE_PAGE)
        while page < total_pages:
            m = lookup(page)
            if m is not None:
                page += m.span_pages
                continue
            if self.fault(page, ctx):
                page += _PAGES_PER_HUGE
                continue
            page += 1
            if not can_batch:
                continue
            # a base page now populates this 2MB range, so every later
            # fault inside it can only install base pages: bulk-install
            # the rest of the range
            range_end = ((page - 1) // _PAGES_PER_HUGE + 1) * _PAGES_PER_HUGE
            last = min(range_end, total_pages) - 1
            if last >= page and self._prefault_run_ready(page, last):
                page = self._prefault_base_run(page, last, ctx)

    # -- TLB/walk accounting ----------------------------------------------------------

    def _resolve_page(self, virt_page: int, ctx: SimContext) -> Mapping:
        """Mapping covering *virt_page*, faulting it in if absent."""
        m = self.page_table.lookup(virt_page)
        if m is None:
            self._last_fault = None
            self.fault(virt_page, ctx)
            m = self._last_fault
            if m is None:
                # a fault override that bypassed _handle_fault
                m = self.page_table.lookup(virt_page)
                assert m is not None
        return m

    def _touch_translation(self, virt_page: int, ctx: SimContext) -> Mapping:
        """One per-event page touch: fault if needed + one TLB access.

        Returns the mapping so callers never look the page up again.
        """
        m = self._resolve_page(virt_page, ctx)
        key_page = m.virt_page if m.huge else virt_page
        hit = self.tlb.access(self.region_id, key_page, m.huge)
        if hit:
            ctx.counters.tlb_hits += 1
            ctx.charge(self.machine.tlb_hit_ns)
        else:
            ctx.counters.tlb_misses += 1
            ctx.charge(self.machine.page_walk_ns)
            if self.cache is not None and not m.huge:
                # a 4-level walk caches PTE lines, evicting hot data (Fig 4)
                self.cache.pollute()
        return m

    def translate_range(self, offset: int, size: int,
                        ctx: SimContext) -> Iterator[Tuple[int, int, Mapping]]:
        """Resolve [offset, offset+size) into mapping *runs*.

        Yields ``(start_page, npages, mapping)`` in ascending page order:
        a run is either the touched slice of one 2MB mapping or a span of
        consecutive 4KB mappings.  Unmapped pages are faulted through the
        normal fault path at the position they occupy in the range, so a
        consumer charging TLB costs per yielded run observes the same
        event order as the per-event walk.  *mapping* is the entry for the
        run's first page.
        """
        self._check_range(offset, size)
        if size == 0:
            return
        pt = self.page_table
        page = offset // BASE_PAGE
        last = (offset + size - 1) // BASE_PAGE
        while page <= last:
            if pt.generation == self._memo_gen and \
                    self._memo_lo <= page <= self._memo_hi:
                # verified base-mapped span: skip the page-table dict
                run_end = self._memo_hi if self._memo_hi < last else last
                yield page, run_end - page + 1, pt.lookup(page)
                page = run_end + 1
                continue
            m = self._resolve_page(page, ctx)
            if m.huge:
                end = m.virt_page + _PAGES_PER_HUGE
                span_last = end - 1 if end - 1 < last else last
                yield page, span_last - page + 1, m
                page = end
            else:
                n = pt.base_run_length(page, last - page + 1)
                self._memo_note(page, page + n - 1, pt.generation)
                yield page, n, m
                page += n

    def _memo_note(self, lo: int, hi: int, gen: int) -> None:
        """Record a verified base-mapped span, merging adjacent spans."""
        if gen == self._memo_gen and lo <= self._memo_hi + 1 \
                and hi >= self._memo_lo - 1:
            if lo < self._memo_lo:
                self._memo_lo = lo
            if hi > self._memo_hi:
                self._memo_hi = hi
        else:
            self._memo_gen = gen
            self._memo_lo = lo
            self._memo_hi = hi

    def _charge_base_run(self, start_page: int, n: int,
                         ctx: SimContext) -> None:
        """TLB accounting for *n* consecutive base pages, bit-identical to
        n per-event touches."""
        machine = self.machine
        if machine.tlb_hit_ns != 0.0:
            # hit charges interleave with miss charges page by page;
            # batching would regroup float adds, so replicate per-event
            for page in range(start_page, start_page + n):
                hit = self.tlb.access(self.region_id, page, False)
                if hit:
                    ctx.counters.tlb_hits += 1
                    ctx.charge(machine.tlb_hit_ns)
                else:
                    ctx.counters.tlb_misses += 1
                    ctx.charge(machine.page_walk_ns)
                    if self.cache is not None:
                        self.cache.pollute()
            return
        hits, misses = self.tlb.access_run(self.region_id, start_page, n,
                                           False)
        counters = ctx.counters
        if hits:
            # tlb_hit_ns is 0.0: the per-event charge(0.0) is a no-op
            counters._tlb_hits.value += hits
        if misses:
            counters._tlb_misses.value += misses
            # inlined charge_repeat: same one-at-a-time adds on a local
            cpu_ns = ctx.clock._cpu_ns
            cpu = ctx.cpu
            v = cpu_ns[cpu]
            walk_ns = machine.page_walk_ns
            for _ in range(misses):
                v += walk_ns
            cpu_ns[cpu] = v
            if self.cache is not None:
                self.cache.pollute_batch(misses)

    def _charge_tlb_huge(self, key_page: int, ctx: SimContext) -> None:
        """One TLB access against a 2MB entry (no pollute on miss, as in
        the per-event path)."""
        hit = self.tlb.access(self.region_id, key_page, True)
        if hit:
            ctx.counters.tlb_hits += 1
            ctx.charge(self.machine.tlb_hit_ns)
        else:
            ctx.counters.tlb_misses += 1
            ctx.charge(self.machine.page_walk_ns)

    def _walk_pages(self, offset: int, size: int, ctx: SimContext) -> None:
        if not self.batch:
            # per-event reference path
            first = offset // BASE_PAGE
            last = (offset + size - 1) // BASE_PAGE
            page = first
            while page <= last:
                m = self._touch_translation(page, ctx)
                if m.huge:
                    page = m.virt_page + _PAGES_PER_HUGE
                else:
                    page += 1
            return
        # inlined translate_range: the same runs in the same order, but
        # mapped pages are resolved by raw-table membership probes
        # (value-opaque, so both page-table engines branch identically)
        # without materializing a Mapping per run.  Faults still go
        # through fault() at the position the page occupies.
        pt = self.page_table
        huge_tbl = pt._huge
        base_tbl = pt._base
        page = offset // BASE_PAGE
        last = (offset + size - 1) // BASE_PAGE
        while page <= last:
            if pt.generation == self._memo_gen and \
                    self._memo_lo <= page <= self._memo_hi:
                run_end = self._memo_hi if self._memo_hi < last else last
                self._charge_base_run(page, run_end - page + 1, ctx)
                page = run_end + 1
                continue
            idx = page // _PAGES_PER_HUGE
            if idx in huge_tbl:
                self._charge_tlb_huge(idx * _PAGES_PER_HUGE, ctx)
                page = (idx + 1) * _PAGES_PER_HUGE
                continue
            if page in base_tbl:
                n = pt.base_run_length(page, last - page + 1)
                self._memo_note(page, page + n - 1, pt.generation)
                self._charge_base_run(page, n, ctx)
                page += n
                continue
            # both table probes missed, so lookup() would return None:
            # fault directly instead of via _resolve_page and derive the
            # huge-case key page arithmetically (install_huge pins the
            # mapping to the 2MB-aligned base) rather than from the
            # materialized Mapping
            if self.fault(page, ctx):
                hb = page - page % _PAGES_PER_HUGE
                self._charge_tlb_huge(hb, ctx)
                page = hb + _PAGES_PER_HUGE
            else:
                n = pt.base_run_length(page, last - page + 1)
                self._memo_note(page, page + n - 1, pt.generation)
                self._charge_base_run(page, n, ctx)
                page += n

    # -- data access -----------------------------------------------------------------

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.length:
            raise InvalidArgumentError(
                f"access [{offset}, +{size}) outside mapping of {self.length}")

    def read(self, offset: int, size: int, ctx: SimContext) -> bytes:
        """memcpy out of the mapping."""
        self._check_range(offset, size)
        if size == 0:
            return b""
        machine = self.machine
        first = offset // BASE_PAGE
        last = (offset + size - 1) // BASE_PAGE
        if (self.batch and machine.tlb_hit_ns == 0.0
                and last - first < 8 and not ctx.trace.enabled):
            # small-read fast path (the mmap_rand profile: 1-2 touched
            # pages per op).  Applies only when every touched page is
            # already base-mapped: then translate_range would yield the
            # span as ONE base run (base_run_length counts consecutive
            # mapped pages), so one access_run + grouped charges below
            # replays _walk_pages' float-add sequence exactly.  The adds
            # accumulate on a local with a single clock store; stores
            # don't change float values, so the result is bit-identical.
            base = self.page_table._base
            page = first
            while page <= last and page in base:
                page += 1
            if page > last:
                hits, misses = self.tlb.access_run(self.region_id, first,
                                                   last - first + 1, False)
                counters = ctx.counters
                cpu_ns = ctx.clock._cpu_ns
                cpu = ctx.cpu
                v = cpu_ns[cpu]
                if hits:
                    counters._tlb_hits.value += hits
                if misses:
                    counters._tlb_misses.value += misses
                    walk_ns = machine.page_walk_ns
                    for _ in range(misses):
                        v += walk_ns
                    if self.cache is not None:
                        self.cache.pollute_batch(misses)
                ns = machine.pm_read_ns(size)
                v += ns
                cpu_ns[cpu] = v
                counters._copy_ns.value += ns
                counters._pm_bytes_read.value += size
                if not self.track_data:
                    return zero_bytes(size)
                return self._copy_out(offset, size, ctx)
        self._walk_pages(offset, size, ctx)
        ns = machine.pm_read_ns(size)
        # inlined ctx.charge + counter properties: the same single adds
        # on the same cells, minus the dispatch frames (this tail runs on
        # every fault-path read, the mmap_rand common case)
        ctx.clock._cpu_ns[ctx.cpu] += ns
        counters = ctx.counters
        counters._copy_ns.value += ns
        counters._pm_bytes_read.value += size
        if not self.track_data:
            return zero_bytes(size)
        return self._copy_out(offset, size, ctx)

    def write(self, offset: int, data: bytes, ctx: SimContext) -> None:
        """memcpy into the mapping (non-temporal stores + fence)."""
        self._check_range(offset, len(data))
        if not data:
            return
        self._walk_pages(offset, len(data), ctx)
        ns = self.machine.pm_write_ns(len(data)) + self.machine.sfence_ns
        # inlined ctx.charge + counter properties (see read())
        ctx.clock._cpu_ns[ctx.cpu] += ns
        counters = ctx.counters
        counters._copy_ns.value += ns
        counters._pm_bytes_written.value += len(data)
        if self.track_data:
            self._copy_in(offset, data)

    def write_zeros(self, offset: int, length: int, ctx: SimContext) -> None:
        """:meth:`write` of *length* zero bytes without materializing a
        payload buffer (aging churn, zero-fill benches)."""
        if self.track_data:
            self.write(offset, zero_bytes(length), ctx)
        else:
            self.write(offset, Zeros(length), ctx)

    def read_element(self, offset: int, ctx: SimContext) -> float:
        """One dependent 64B load (the Fig 4 / Fig 8 pointer-chase probe).

        Returns the access latency in ns (also charged to the context).
        """
        if not self.batch:
            return self._read_element_ref(offset, ctx)
        if offset < 0 or offset + 1 > self.length:
            self._check_range(offset, 1)
        page = offset // BASE_PAGE
        pt = self.page_table
        # raw-table probes treat values as opaque: key presence alone
        # decides, so both page-table engines take the same branch
        huge = page // _PAGES_PER_HUGE in pt._huge
        if huge:
            key_page = page - page % _PAGES_PER_HUGE
        elif page in pt._base:
            key_page = page
        else:
            # fault path: take the reference walk
            return self._read_element_ref(offset, ctx)
        # inlined _touch_translation + charges: same events, same float
        # adds, minus the call/property dispatch.  The clock writes are
        # deferred onto a local, which keeps the add sequence identical.
        machine = self.machine
        counters = ctx.counters
        cpu_ns = ctx.clock._cpu_ns
        cpu = ctx.cpu
        before = v = cpu_ns[cpu]
        if self.tlb.access(self.region_id, key_page, huge):
            counters._tlb_hits.value += 1
            v += machine.tlb_hit_ns
        else:
            counters._tlb_misses.value += 1
            v += machine.page_walk_ns
            if self.cache is not None and not huge:
                self.cache.pollute()
        cache = self.cache
        if cache is not None:
            hit = cache.access_hot_line()
            lat = cache.access_latency_ns(hit)
            if hit:
                counters._llc_hits.value += 1
            else:
                counters._llc_misses.value += 1
        else:
            lat = machine.pm_load_ns
            counters._llc_misses.value += 1
        v += lat
        cpu_ns[cpu] = v
        return v - before

    def _read_element_ref(self, offset: int, ctx: SimContext) -> float:
        """Per-event reference for :meth:`read_element` (also the fault
        path of the batched version)."""
        self._check_range(offset, 1)
        before = ctx.now
        self._touch_translation(offset // BASE_PAGE, ctx)
        if self.cache is not None:
            hit = self.cache.access_hot_line()
            lat = self.cache.access_latency_ns(hit)
            if hit:
                ctx.counters.llc_hits += 1
            else:
                ctx.counters.llc_misses += 1
        else:
            lat = self.machine.pm_load_ns
            ctx.counters.llc_misses += 1
        ctx.charge(lat)
        return ctx.now - before

    # -- raw data movement helpers ----------------------------------------------------

    def _segments(self, offset: int, size: int) -> List[Tuple[int, int]]:
        """(physical address, length) runs covering [offset, +size)."""
        out: List[Tuple[int, int]] = []
        pos = offset
        end = offset + size
        while pos < end:
            block = pos // self.block_size
            within = pos % self.block_size
            phys_block = self.extents.physical_block(block)
            take = min(self.block_size - within, end - pos)
            out.append((phys_block * self.block_size + within, take))
            pos += take
        # merge physically adjacent runs
        merged: List[Tuple[int, int]] = []
        for addr, ln in out:
            if merged and merged[-1][0] + merged[-1][1] == addr:
                merged[-1] = (merged[-1][0], merged[-1][1] + ln)
            else:
                merged.append((addr, ln))
        return merged

    def _copy_out(self, offset: int, size: int, ctx: SimContext) -> bytes:
        chunks = []
        for addr, ln in self._segments(offset, size):
            chunks.append(self.device.load(addr, ln))
        return b"".join(chunks)

    def _copy_in(self, offset: int, data: bytes) -> None:
        pos = 0
        for addr, ln in self._segments(offset, len(data)):
            self.device.store(addr, data[pos:pos + ln])
            self.device.clwb(addr, ln)
            pos += ln
        self.device.sfence()

    # -- metrics -------------------------------------------------------------------------

    @property
    def hugepage_fraction(self) -> float:
        """Fraction of the mapping currently covered by 2MB mappings."""
        total_pages = (self.length + BASE_PAGE - 1) // BASE_PAGE
        return self.page_table.hugepage_fraction(total_pages)

    def mappable_hugepages(self) -> int:
        return self.extents.mappable_hugepages()

    def unmap(self) -> int:
        """Tear down; returns number of TLB entries shot down."""
        dropped = self.tlb.invalidate_region(self.region_id)
        self.page_table.unmap_all()
        return dropped
