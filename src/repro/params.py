"""Machine cost parameters for the simulated PM machine.

Every constant here is derived from a statement in the WineFS paper
(Kadekodi et al., SOSP 2021) or from the Optane characterization work it
cites.  The simulation charges these costs to per-CPU virtual clocks; the
paper's results are *ratios* between file systems on the same hardware, so
reproducing the ratios only requires a shared, internally consistent cost
model, not the authors' exact testbed numbers.

All times are in nanoseconds, all sizes in bytes, unless noted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Fundamental sizes
# ---------------------------------------------------------------------------

CACHELINE = 64
BASE_PAGE = 4 * 1024           # 4KB base page
HUGE_PAGE = 2 * 1024 * 1024    # 2MB hugepage
PAGES_PER_HUGEPAGE = HUGE_PAGE // BASE_PAGE   # 512 (paper: "512x more page faults")
BLOCK_SIZE = BASE_PAGE         # file systems allocate in 4KB blocks
BLOCKS_PER_HUGEPAGE = HUGE_PAGE // BLOCK_SIZE

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB


@dataclass(frozen=True)
class MachineParams:
    """Cost model of the simulated two-socket Optane machine (paper §5.1).

    The defaults encode the paper's stated ratios:

    * §2.1: "PM reads have 2-3x higher latency than DRAM, while writes have
      similar latency.  PM read bandwidth is 1/3rd that of DRAM, while write
      bandwidth is about 0.17x that of DRAM."
    * §1: "the cost of handling a page fault (1-2 us) is significantly
      higher than the cost of a 64 byte PM read or write (100-200 ns)."
    * Fig 2: writing a 2MB mapped file is ~2x faster with hugepages; without
      them two-thirds of the time is fault handling.
    * Fig 4: median latency of a pre-faulted random read is ~10x higher with
      base pages because PTE fetches evict application data from the LLC.
    """

    # -- DRAM reference ----------------------------------------------------
    dram_load_ns: float = 90.0            # cached-miss DRAM load latency
    dram_read_bw: float = 90.0 * GIB      # bytes/second, streaming
    dram_write_bw: float = 75.0 * GIB

    # -- PM media (ratios from §2.1) ----------------------------------------
    pm_load_ns: float = 240.0             # ~2.7x DRAM load latency
    pm_store_ns: float = 100.0            # "writes have similar latency"
    pm_read_bw: float = 30.0 * GIB        # 1/3 of DRAM read bandwidth
    pm_write_bw: float = 13.0 * GIB       # ~0.17x of DRAM write bandwidth
    remote_numa_read_mult: float = 1.7    # remote socket penalty (cited [51])
    remote_numa_write_mult: float = 2.3   # "remote writes are more expensive"

    # -- persistence instructions -------------------------------------------
    clwb_ns: float = 25.0                 # per-cacheline write-back issue
    sfence_ns: float = 30.0               # ordering fence

    # -- page faults (§1: 1-2us per 4KB fault) ------------------------------
    fault_base_ns: float = 1600.0         # one 4KB minor fault, mapping only
    fault_huge_ns: float = 2600.0         # one 2MB fault, mapping only (one
                                          # PMD entry, slightly costlier trap)
    fault_zero_page_mult: float = 1.0     # extra x of page write bw if the FS
                                          # zeroes the page inside the fault

    # -- TLB / page walk -----------------------------------------------------
    tlb_hit_ns: float = 0.0               # folded into load latency
    page_walk_ns: float = 120.0           # 4-level walk out of caches
    tlb_4k_entries: int = 1536            # L2 STLB reach for 4KB entries
    tlb_2m_entries: int = 1024            # shared entries usable by 2MB pages

    # -- caches ---------------------------------------------------------------
    llc_bytes: int = 38 * MIB             # 28-core Cascade Lake LLC
    llc_hit_ns: float = 22.0
    # A 4KB-page TLB miss caches 8+ PTE lines; model the resulting pollution
    # as a probability that the *next* touch of a hot line misses the LLC.
    pte_pollution: float = 0.9

    # -- kernel crossings ------------------------------------------------------
    syscall_ns: float = 700.0             # trap + VFS dispatch (§2.1: "cost of
                                          # trapping into the kernel ... adds
                                          # significant overhead")
    vfs_lock_ns: float = 150.0            # shared namespace lock hold time
    context_switch_ns: float = 2000.0

    # -- journaling -----------------------------------------------------------
    journal_entry_bytes: int = 64         # §3.6: each log entry is a cacheline
    jbd2_commit_ns: float = 22000.0       # JBD2 stop-the-world commit overhead
    max_txn_entries: int = 10             # §3.6: at most 10 entries = 640B

    def pm_read_ns(self, nbytes: int, remote: bool = False) -> float:
        """Streaming read cost for *nbytes* from PM."""
        ns = nbytes / self.pm_read_bw * 1e9
        return ns * self.remote_numa_read_mult if remote else ns

    def pm_write_ns(self, nbytes: int, remote: bool = False) -> float:
        """Streaming write cost for *nbytes* to PM (excludes clwb/fence)."""
        ns = nbytes / self.pm_write_bw * 1e9
        return ns * self.remote_numa_write_mult if remote else ns

    def persist_ns(self, nbytes: int, remote: bool = False) -> float:
        """Write + flush + fence cost for a durable store of *nbytes*.

        Small updates (journal entries, inode fields) go through the
        store+clwb path and pay per-line write-back; bulk writes use
        non-temporal stores, whose persistence cost is already the PM
        write bandwidth — so the clwb charge is capped at a few lines.
        """
        lines = max(1, (nbytes + CACHELINE - 1) // CACHELINE)
        flush = min(lines, 8) * self.clwb_ns
        return self.pm_write_ns(nbytes, remote) + flush + self.sfence_ns


DEFAULT_MACHINE = MachineParams()


@dataclass(frozen=True)
class PartitionParams:
    """Geometry of a simulated PM partition.

    The paper evaluates a 500GB partition (100GiB for Fig 1).  Pure-Python
    benches default to smaller partitions; aging write volumes are scaled by
    ``size / paper_size`` so utilization and churn match the paper.
    """

    size_bytes: int = 4 * GIB
    block_size: int = BLOCK_SIZE
    num_cpus: int = 4
    numa_nodes: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % HUGE_PAGE:
            raise ValueError("partition size must be a multiple of 2MiB")
        if self.num_cpus < 1:
            raise ValueError("need at least one CPU")
        if self.numa_nodes < 1 or self.num_cpus % self.numa_nodes:
            raise ValueError("CPUs must divide evenly across NUMA nodes")

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_size

    @property
    def num_hugepages(self) -> int:
        return self.size_bytes // HUGE_PAGE


DEFAULT_PARTITION = PartitionParams()
