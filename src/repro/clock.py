"""Simulated time.

All performance results in this reproduction come from *simulated*
nanoseconds, never the wall clock.  Each logical CPU owns a monotonically
increasing virtual clock; file-system and MMU code charge costs to the CPU
they run on through a :class:`SimContext`.

Concurrency model
-----------------
We do not use OS threads (the GIL would make timing meaningless).  Instead a
workload assigns operations to virtual CPUs; a :class:`LockManager` serializes
critical sections in simulated time, which is exactly what determines the
scalability results in the paper (Fig 10): file systems whose fsync path grabs
a global lock serialize, per-CPU designs do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import SimulationError


class SimClock:
    """A set of per-CPU virtual clocks, in nanoseconds."""

    def __init__(self, num_cpus: int) -> None:
        if num_cpus < 1:
            raise SimulationError("SimClock needs at least one CPU")
        self.num_cpus = num_cpus
        self._cpu_ns = [0.0] * num_cpus

    def charge(self, cpu: int, ns: float) -> None:
        """Advance *cpu*'s clock by *ns* nanoseconds."""
        if ns < 0:
            raise SimulationError(f"cannot charge negative time: {ns}")
        self._cpu_ns[cpu] += ns

    def now(self, cpu: int) -> float:
        return self._cpu_ns[cpu]

    def advance_to(self, cpu: int, ns: float) -> None:
        """Move *cpu* forward to absolute time *ns* (no-op if already past)."""
        if ns > self._cpu_ns[cpu]:
            self._cpu_ns[cpu] = ns

    @property
    def elapsed(self) -> float:
        """Makespan: the max across CPU clocks (parallel completion time)."""
        return max(self._cpu_ns)

    @property
    def total_cpu_time(self) -> float:
        """Sum of all per-CPU clocks (total work performed)."""
        return sum(self._cpu_ns)

    def reset(self) -> None:
        self._cpu_ns = [0.0] * self.num_cpus

    def snapshot(self) -> List[float]:
        return list(self._cpu_ns)


class LockManager:
    """Simulated-time mutual exclusion.

    ``acquire(name, cpu)`` advances *cpu* to the lock's free time (modeling
    the wait) and returns; ``release`` records when the holder let go.  This
    deterministic model charges real contention: if CPU 1 holds lock L for
    [t0, t1] and CPU 2 arrives at t < t1, CPU 2's clock jumps to t1.
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._free_at: Dict[str, float] = {}
        self._holder: Dict[str, Optional[int]] = {}
        self._atomic_next: Dict[str, float] = {}
        self.contended_waits = 0
        self.acquisitions = 0

    def acquire(self, name: str, cpu: int) -> None:
        free_at = self._free_at.get(name, 0.0)
        now = self._clock.now(cpu)
        if free_at > now:
            self.contended_waits += 1
            self._clock.advance_to(cpu, free_at)
        self._holder[name] = cpu
        self.acquisitions += 1

    def release(self, name: str, cpu: int) -> None:
        self._holder[name] = None
        # the lock becomes free at the releasing CPU's current time
        self._free_at[name] = self._clock.now(cpu)

    def holding(self, name: str) -> Optional[int]:
        return self._holder.get(name)

    def atomic(self, name: str, cpu: int, hold_ns: float) -> None:
        """A brief serializing operation (atomic instruction, short
        critical section) on a shared resource.

        Unlike acquire/release — whose release time carries the holder's
        *entire* preceding timeline and therefore convoys everything that
        follows — an atomic only consumes ``hold_ns`` of the resource's
        serial capacity per use: the resource saturates at 1/hold_ns uses
        per nanosecond, which is the correct scaling behaviour for
        fetch-add journal reservations and similar.
        """
        if hold_ns < 0:
            raise SimulationError("negative hold time")
        now = self._clock.now(cpu)
        busy = self._atomic_next.get(name, 0.0)
        # fluid model: the resource's busy horizon only ever accumulates
        # hold_ns per use — callers never drag it to their own (late)
        # clocks.  When aggregate demand exceeds 1/hold_ns the horizon
        # outruns the CPU clocks and waits appear (saturation at exactly
        # the resource's serial capacity); under light load it lags and
        # no one waits.  This keeps op-granular round-robin execution
        # from serializing work that would overlap in real time.
        if busy > now:
            self.contended_waits += 1
            self._clock.advance_to(cpu, busy)
        self._clock.charge(cpu, hold_ns)
        self._atomic_next[name] = busy + hold_ns
        self.acquisitions += 1


@dataclass
class EventCounters:
    """Hardware-ish event counters the evaluation reports.

    These feed Table 2 (page faults), Fig 4/8 (TLB and LLC misses), and the
    fault-time breakdowns of Figs 1, 2 and 6.
    """

    page_faults_4k: int = 0
    page_faults_2m: int = 0
    tlb_misses: int = 0
    tlb_hits: int = 0
    llc_misses: int = 0
    llc_hits: int = 0
    pm_bytes_read: int = 0
    pm_bytes_written: int = 0
    fault_ns: float = 0.0          # time spent inside fault handling
    copy_ns: float = 0.0           # time spent moving data
    journal_ns: float = 0.0        # time spent journaling / committing
    syscalls: int = 0

    @property
    def page_faults(self) -> int:
        return self.page_faults_4k + self.page_faults_2m

    def merged_with(self, other: "EventCounters") -> "EventCounters":
        out = EventCounters()
        for f in self.__dataclass_fields__:
            setattr(out, f, getattr(self, f) + getattr(other, f))
        return out


@dataclass
class SimContext:
    """Everything an operation needs to account for its costs.

    Passed down from workloads through the VFS into file systems and the
    MMU.  ``cpu`` is the virtual CPU the operation runs on.
    """

    clock: SimClock
    cpu: int = 0
    counters: EventCounters = field(default_factory=EventCounters)
    locks: LockManager = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.locks is None:
            self.locks = LockManager(self.clock)
        if not 0 <= self.cpu < self.clock.num_cpus:
            raise SimulationError(f"cpu {self.cpu} out of range")

    def charge(self, ns: float) -> None:
        self.clock.charge(self.cpu, ns)

    @property
    def now(self) -> float:
        return self.clock.now(self.cpu)

    def on_cpu(self, cpu: int) -> "SimContext":
        """A view of this context running on a different CPU.

        Shares the clock, counters and lock manager.
        """
        return SimContext(clock=self.clock, cpu=cpu, counters=self.counters,
                          locks=self.locks)


def make_context(num_cpus: int = 4, cpu: int = 0) -> SimContext:
    """Convenience constructor used throughout tests and examples."""
    return SimContext(clock=SimClock(num_cpus), cpu=cpu)
