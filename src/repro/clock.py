"""Simulated time.

All performance results in this reproduction come from *simulated*
nanoseconds, never the wall clock.  Each logical CPU owns a monotonically
increasing virtual clock; file-system and MMU code charge costs to the CPU
they run on through a :class:`SimContext`.

Concurrency model
-----------------
We do not use OS threads (the GIL would make timing meaningless).  Instead a
workload assigns operations to virtual CPUs; a :class:`LockManager` serializes
critical sections in simulated time, which is exactly what determines the
scalability results in the paper (Fig 10): file systems whose fsync path grabs
a global lock serialize, per-CPU designs do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import SimulationError
from .obs.metrics import MetricsRegistry
from .obs.trace import NULL_TRACER, NullTracer


class SimClock:
    """A set of per-CPU virtual clocks, in nanoseconds."""

    def __init__(self, num_cpus: int) -> None:
        if num_cpus < 1:
            raise SimulationError("SimClock needs at least one CPU")
        self.num_cpus = num_cpus
        # one flat slot vector, indexed by CPU id; every charge path
        # (including the fused kernels that write _cpu_ns[cpu] directly)
        # shares this single store.  A list beats array('d') here: the
        # hot += would pay an unbox/rebox per touch on a typed array
        self._cpu_ns = [0.0] * num_cpus

    def charge(self, cpu: int, ns: float) -> None:
        """Advance *cpu*'s clock by *ns* nanoseconds."""
        if ns < 0:
            raise SimulationError(f"cannot charge negative time: {ns}")
        self._cpu_ns[cpu] += ns

    def charge_repeat(self, cpu: int, ns: float, count: int) -> None:
        """Advance *cpu*'s clock by *ns*, *count* times.

        Bit-identical to ``count`` sequential :meth:`charge` calls: float
        addition is not associative, so the adds are performed one at a
        time (on a local) rather than grouped into one ``count * ns`` add.
        """
        if ns < 0:
            raise SimulationError(f"cannot charge negative time: {ns}")
        if count <= 0:
            return
        v = self._cpu_ns[cpu]
        for _ in range(count):
            v += ns
        self._cpu_ns[cpu] = v

    def now(self, cpu: int) -> float:
        return self._cpu_ns[cpu]

    def advance_to(self, cpu: int, ns: float) -> None:
        """Move *cpu* forward to absolute time *ns* (no-op if already past)."""
        if ns > self._cpu_ns[cpu]:
            self._cpu_ns[cpu] = ns

    @property
    def elapsed(self) -> float:
        """Makespan: the max across CPU clocks (parallel completion time)."""
        return max(self._cpu_ns)

    @property
    def total_cpu_time(self) -> float:
        """Sum of all per-CPU clocks (total work performed)."""
        return sum(self._cpu_ns)

    def reset(self) -> None:
        self._cpu_ns = [0.0] * self.num_cpus

    def snapshot(self) -> List[float]:
        return list(self._cpu_ns)


#: Registry of every lock-name *namespace* in the simulator — the part of
#: a lock name before the first ``:`` (``ino:7g0`` -> ``ino``), or the
#: whole name for instance-less locks (``xfs-log``).  The static analysis
#: suite (``repro.analysis``) resolves lock names through this table
#: instead of hard-coded string literals, so renaming a lock family
#: without registering it here turns into a lint warning rather than a
#: silently weakened discipline check.  Keys are namespaces, values are
#: one-line descriptions of what the lock protects.
LOCK_NAMESPACES: Dict[str, str] = {
    "ino": "per-inode mutex (metadata and data of one file/directory)",
    "winefs-journal": "WineFS per-CPU undo journal head",
    "pmfs-journal": "PMFS global journal reservation",
    "xfs-log-item": "XFS-DAX in-memory log item manipulation",
    "xfs-log": "XFS-DAX on-media log append",
    "jbd2-handle": "ext4-DAX jbd2 running-transaction handle",
    "jbd2-commit": "ext4-DAX jbd2 commit serialization",
}


def register_lock_namespace(namespace: str, description: str) -> None:
    """Register a lock-name namespace (idempotent; used by extensions)."""
    if not namespace or ":" in namespace:
        raise SimulationError(f"invalid lock namespace: {namespace!r}")
    LOCK_NAMESPACES.setdefault(namespace, description)


def lock_namespace_of(name: str) -> str:
    """Namespace of a concrete lock name (text before the first ``:``)."""
    return name.split(":", 1)[0]


class LockManager:
    """Simulated-time mutual exclusion.

    ``acquire(name, cpu)`` advances *cpu* to the lock's free time (modeling
    the wait) and returns; ``release`` records when the holder let go.  This
    deterministic model charges real contention: if CPU 1 holds lock L for
    [t0, t1] and CPU 2 arrives at t < t1, CPU 2's clock jumps to t1.

    Lock names are namespaced (see :data:`LOCK_NAMESPACES`);
    :meth:`validate_name` checks a name against the registry.  The hot
    ``acquire`` path deliberately does *not* validate — the lint suite
    enforces the registry statically, keeping zero overhead here.
    """

    @staticmethod
    def validate_name(name: str) -> bool:
        """True iff *name*'s namespace is registered."""
        return lock_namespace_of(name) in LOCK_NAMESPACES

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self._clock = clock
        self._free_at: Dict[str, float] = {}
        self._holder: Dict[str, Optional[int]] = {}
        self._atomic_next: Dict[str, float] = {}
        self.contended_waits = 0
        self.acquisitions = 0
        self.lock_wait_ns = 0.0
        #: observability hooks, attached by SimContext.__post_init__
        self.counters: Optional["EventCounters"] = None
        self.trace: NullTracer = NULL_TRACER

    def bind(self, clock: SimClock) -> "LockManager":
        """Attach the clock (idempotent; first binding wins).

        Allows ``LockManager`` to be a plain dataclass default factory for
        :class:`SimContext`, which owns the clock.
        """
        if self._clock is None:
            self._clock = clock
        return self

    def _require_clock(self) -> SimClock:
        if self._clock is None:
            raise SimulationError("LockManager is not bound to a SimClock")
        return self._clock

    def reset_timeline(self) -> None:
        """Forget lock history so a clock reset starts a clean timeline.

        Must accompany ``SimClock.reset()``: lock free times are absolute
        simulated timestamps, so leaving them behind after zeroing the clock
        makes the next acquisition of any previously-held lock pay the whole
        prior makespan as a spurious wait.
        """
        self._free_at.clear()
        self._holder.clear()
        self._atomic_next.clear()
        self.contended_waits = 0
        self.acquisitions = 0
        self.lock_wait_ns = 0.0

    def _charge_wait(self, name: str, cpu: int, now: float,
                     until: float) -> None:
        wait = until - now
        self.contended_waits += 1
        self.lock_wait_ns += wait
        if self.counters is not None:
            self.counters.lock_wait_ns += wait
        if self.trace.enabled:
            self.trace.record("lock.wait", cpu, now, until, lock=name)

    def acquire(self, name: str, cpu: int) -> None:
        clock = self._clock
        if clock is None:
            clock = self._require_clock()
        free_at = self._free_at.get(name, 0.0)
        now = clock._cpu_ns[cpu]
        if free_at > now:
            self._charge_wait(name, cpu, now, free_at)
            clock.advance_to(cpu, free_at)
        self._holder[name] = cpu
        self.acquisitions += 1

    def release(self, name: str, cpu: int) -> None:
        self._holder[name] = None
        # the lock becomes free at the releasing CPU's current time
        clock = self._clock
        if clock is None:
            clock = self._require_clock()
        self._free_at[name] = clock._cpu_ns[cpu]

    def holding(self, name: str) -> Optional[int]:
        return self._holder.get(name)

    def atomic(self, name: str, cpu: int, hold_ns: float) -> None:
        """A brief serializing operation (atomic instruction, short
        critical section) on a shared resource.

        Unlike acquire/release — whose release time carries the holder's
        *entire* preceding timeline and therefore convoys everything that
        follows — an atomic only consumes ``hold_ns`` of the resource's
        serial capacity per use: the resource saturates at 1/hold_ns uses
        per nanosecond, which is the correct scaling behaviour for
        fetch-add journal reservations and similar.
        """
        if hold_ns < 0:
            raise SimulationError("negative hold time")
        clock = self._require_clock()
        now = clock.now(cpu)
        busy = self._atomic_next.get(name, 0.0)
        # fluid model: the resource's busy horizon only ever accumulates
        # hold_ns per use — callers never drag it to their own (late)
        # clocks.  When aggregate demand exceeds 1/hold_ns the horizon
        # outruns the CPU clocks and waits appear (saturation at exactly
        # the resource's serial capacity); under light load it lags and
        # no one waits.  This keeps op-granular round-robin execution
        # from serializing work that would overlap in real time.
        if busy > now:
            self._charge_wait(name, cpu, now, busy)
            clock.advance_to(cpu, busy)
        clock.charge(cpu, hold_ns)
        self._atomic_next[name] = busy + hold_ns
        self.acquisitions += 1


#: EventCounters field -> (registry metric name, labels).  The registry is
#: the source of truth; the legacy field names are properties over it.
_COUNTER_LAYOUT = (
    ("page_faults_4k", "page_faults", (("size", "4k"),)),
    ("page_faults_2m", "page_faults", (("size", "2m"),)),
    ("tlb_misses", "tlb_lookups", (("result", "miss"),)),
    ("tlb_hits", "tlb_lookups", (("result", "hit"),)),
    ("llc_misses", "llc_lookups", (("result", "miss"),)),
    ("llc_hits", "llc_lookups", (("result", "hit"),)),
    ("pm_bytes_read", "pm_bytes", (("direction", "read"),)),
    ("pm_bytes_written", "pm_bytes", (("direction", "write"),)),
    ("fault_ns", "phase_ns", (("phase", "fault"),)),
    ("copy_ns", "phase_ns", (("phase", "copy"),)),
    ("journal_ns", "phase_ns", (("phase", "journal"),)),
    ("lock_wait_ns", "phase_ns", (("phase", "lock_wait"),)),
    ("syscalls", "syscalls", ()),
)


class EventCounters:
    """Hardware-ish event counters the evaluation reports.

    These feed Table 2 (page faults), Fig 4/8 (TLB and LLC misses), and the
    fault-time breakdowns of Figs 1, 2 and 6.

    Backed by an :class:`~repro.obs.metrics.MetricsRegistry`: each legacy
    field is a property over one labelled registry series (e.g.
    ``page_faults_4k`` ↔ ``page_faults{size="4k"}``), so both the ~20
    inline ``ctx.counters.x += n`` call sites and registry consumers (the
    per-phase report, ``--metrics-out``) see the same numbers.
    """

    _fields = tuple(attr for attr, _name, _labels in _COUNTER_LAYOUT)

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 **values: float) -> None:
        self.registry = MetricsRegistry() if registry is None else registry
        for attr, name, labels in _COUNTER_LAYOUT:
            setattr(self, "_" + attr, self.registry.counter(
                name, **dict(labels)))
        for key, value in values.items():
            if key not in self._fields:
                raise TypeError(f"unknown counter field {key!r}")
            setattr(self, key, value)

    @property
    def page_faults(self) -> int:
        return self.page_faults_4k + self.page_faults_2m

    def add_repeat(self, attr: str, value: float, count: int) -> None:
        """``attr += value``, *count* times, in one call.

        Bit-identical to *count* sequential ``+=`` statements (the adds
        run one at a time on a local, never grouped into ``count * value``)
        while skipping the per-add property dispatch.
        """
        if count <= 0:
            return
        cell = getattr(self, "_" + attr)
        v = cell.value
        for _ in range(count):
            v += value
        cell.value = v

    def merged_with(self, other: "EventCounters") -> "EventCounters":
        out = EventCounters()
        for f in self._fields:
            setattr(out, f, getattr(self, f) + getattr(other, f))
        return out

    def as_dict(self) -> Dict[str, float]:
        return {f: getattr(self, f) for f in self._fields}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventCounters):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        nonzero = ", ".join(f"{k}={v}" for k, v in self.as_dict().items()
                            if v)
        return f"EventCounters({nonzero})"


def _counter_property(attr: str) -> property:
    slot = "_" + attr

    def fget(self: EventCounters) -> float:
        return getattr(self, slot).value

    def fset(self: EventCounters, value: float) -> None:
        getattr(self, slot).value = value

    return property(fget, fset, doc=f"registry-backed counter {attr!r}")


for _attr, _name, _labels in _COUNTER_LAYOUT:
    setattr(EventCounters, _attr, _counter_property(_attr))
del _attr, _name, _labels


@dataclass
class SimContext:
    """Everything an operation needs to account for its costs.

    Passed down from workloads through the VFS into file systems and the
    MMU.  ``cpu`` is the virtual CPU the operation runs on.  ``trace`` is
    the observability handle: the shared no-op :data:`NULL_TRACER` by
    default, so tracing is off unless a real
    :class:`~repro.obs.trace.Tracer` is passed in — and recording spans
    never charges the clock either way.
    """

    clock: SimClock
    cpu: int = 0
    counters: EventCounters = field(default_factory=EventCounters)
    locks: LockManager = field(default_factory=LockManager)
    trace: NullTracer = NULL_TRACER

    def __post_init__(self) -> None:
        self.locks.bind(self.clock)
        if self.locks.counters is None:
            self.locks.counters = self.counters
        if self.trace.enabled and not self.locks.trace.enabled:
            self.locks.trace = self.trace
        if not 0 <= self.cpu < self.clock.num_cpus:
            raise SimulationError(f"cpu {self.cpu} out of range")

    def charge(self, ns: float) -> None:
        self.clock.charge(self.cpu, ns)

    def charge_repeat(self, ns: float, count: int) -> None:
        """*count* sequential :meth:`charge` calls, bit-identical."""
        self.clock.charge_repeat(self.cpu, ns, count)

    @property
    def now(self) -> float:
        return self.clock.now(self.cpu)

    def on_cpu(self, cpu: int) -> "SimContext":
        """A view of this context running on a different CPU.

        Shares the clock, counters, lock manager and trace handle.
        """
        return SimContext(clock=self.clock, cpu=cpu, counters=self.counters,
                          locks=self.locks, trace=self.trace)


def make_context(num_cpus: int = 4, cpu: int = 0,
                 trace: Optional[NullTracer] = None) -> SimContext:
    """Convenience constructor used throughout tests and examples."""
    return SimContext(clock=SimClock(num_cpus), cpu=cpu,
                      trace=trace if trace is not None else NULL_TRACER)
