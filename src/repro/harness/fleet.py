"""Parallel scenario runner: shard independent cells across processes.

Figure sweeps, property-differential seeds, and the perf matrix are all
embarrassingly parallel: each (fs, scenario, seed) cell builds its own
simulated machine, so cells share no state and can run anywhere.  The
determinism rules that keep a parallel run byte-identical to a serial
one:

* the caller materializes and orders the cell list up front — the cell
  key, not worker scheduling, defines the merge order;
* results come back indexed by input position (``Executor.map``), so
  completion order is invisible;
* merged reports contain only simulated quantities (ns, counts, bytes).
  Wall-clock readings, when wanted (perf harness), are measured inside
  the worker and reported per-cell, never accumulated across workers in
  arrival order.

``jobs <= 1`` runs inline in this process — same code path, no pool —
which is also what keeps the fleet usable under coverage and debuggers.
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from ..params import KIB, MIB
from .setup import ALL_SPECS, SPECS_BY_NAME, aged_fs, fresh_fs

__all__ = ["run_fleet", "merge_numeric", "bench_cell", "bench_matrix",
           "run_bench_matrix", "DEFAULT_BENCH_PATTERNS",
           "slo_cell", "slo_matrix", "run_slo_campaign",
           "SLO_REPORT_SCHEMA",
           "serve_cell", "serve_matrix", "run_serve_campaign",
           "SERVE_REPORT_SCHEMA",
           "corpus_cell", "corpus_matrix", "build_corpus",
           "CORPUS_REPORT_SCHEMA"]


def run_fleet(fn: Callable[[Any], Any], cells: Sequence[Any],
              jobs: int = 1) -> List[Any]:
    """``[fn(c) for c in cells]``, fanned over *jobs* worker processes.

    Results are returned in input order regardless of completion order.
    *fn* and every cell must be picklable (module-level function, plain
    data) when ``jobs > 1``.
    """
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        return [fn(cell) for cell in cells]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
        return list(pool.map(fn, cells))


def merge_numeric(results: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum numeric fields across result dicts, in iteration order.

    The caller passes results in cell-key order (what :func:`run_fleet`
    returns), so float accumulation order — and therefore the merged
    values — never depend on scheduling.  Non-numeric fields keep the
    first value seen and must agree across results.
    """
    merged: Dict[str, Any] = {}
    for result in results:
        for key, value in result.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                merged.setdefault(key, value)
            elif key in merged:
                merged[key] += value
            else:
                merged[key] = value
    return merged


# -- the `repro bench` matrix ------------------------------------------------

DEFAULT_BENCH_PATTERNS = ("seq-read", "rand-read", "seq-write", "rand-write")


def bench_matrix(fs_names: Sequence[str], patterns: Sequence[str],
                 seeds: Sequence[int], *, size_gib: float = 0.25,
                 num_cpus: int = 4, file_mib: int = 16, io_kib: int = 4,
                 aged: bool = False) -> List[Dict[str, Any]]:
    """The sorted (fs, pattern, seed) cell list — the canonical order
    every merge follows."""
    cells = [{"fs": fs, "pattern": pattern, "seed": seed,
              "size_gib": size_gib, "num_cpus": num_cpus,
              "file_mib": file_mib, "io_kib": io_kib, "aged": aged}
             for fs in fs_names for pattern in patterns for seed in seeds]
    cells.sort(key=lambda c: (c["fs"], c["pattern"], c["seed"]))
    return cells


def bench_cell(cell: Dict[str, Any]) -> Dict[str, Any]:
    """Run one benchmark cell on its own simulated machine.

    Top-level so a process pool can pickle it.  Everything reported is
    simulated (deterministic for the cell key); no wall clock.
    """
    from ..workloads.microbench import mmap_rw_benchmark

    build = aged_fs if cell.get("aged") else fresh_fs
    fs, ctx = build(cell["fs"], size_gib=cell["size_gib"],
                    num_cpus=cell["num_cpus"])
    result = mmap_rw_benchmark(
        fs, ctx, file_size=cell["file_mib"] * MIB,
        io_size=cell["io_kib"] * KIB, total_bytes=cell["file_mib"] * MIB,
        pattern=cell["pattern"], seed=cell["seed"])
    return {
        "fs": cell["fs"],
        "pattern": cell["pattern"],
        "seed": cell["seed"],
        "aged": bool(cell.get("aged")),
        "bytes_moved": result.bytes_moved,
        "elapsed_ns": result.elapsed_ns,
        "throughput_mb_s": result.throughput_mb_s,
        "page_faults_4k": result.page_faults_4k,
        "page_faults_2m": result.page_faults_2m,
        "tlb_misses": result.tlb_misses,
        "fault_ns": result.fault_ns,
    }


def run_bench_matrix(cells: Sequence[Dict[str, Any]],
                     jobs: int = 1) -> Dict[str, Any]:
    """Run the matrix and build the report; byte-identical for any *jobs*."""
    results = run_fleet(bench_cell, cells, jobs=jobs)
    totals = merge_numeric(
        {"bytes_moved": r["bytes_moved"], "elapsed_ns": r["elapsed_ns"],
         "tlb_misses": r["tlb_misses"],
         "page_faults": r["page_faults_4k"] + r["page_faults_2m"]}
        for r in results)
    return {"schema": "repro.bench/1", "cells": results, "totals": totals}


# -- the `repro slo` fault campaign ------------------------------------------

SLO_REPORT_SCHEMA = "repro.slo-report/1"


def slo_matrix(fs_names: Sequence[str], seeds: Sequence[int], *,
               size_gib: float = 0.25, num_cpus: int = 2,
               ops: int = 160) -> List[Dict[str, Any]]:
    """The sorted (fs, seed) campaign cell list — the canonical merge
    order, exactly like :func:`bench_matrix`."""
    cells = [{"fs": fs, "seed": seed, "size_gib": size_gib,
              "num_cpus": num_cpus, "ops": ops}
             for fs in fs_names for seed in seeds]
    cells.sort(key=lambda c: (c["fs"], c["seed"]))
    return cells


def _drive_op_mix(fs, ctx, rng, count: int, prefix: str) -> None:
    """A seeded VFS op mix (creates/reads/overwrites/renames/unlinks/
    dirs).  Every op goes through the instrumented entry points; surfaced
    errors are swallowed here — the telemetry wrappers already recorded
    them — so an injected fault never aborts the campaign."""
    from ..errors import FSError

    files: List[str] = []
    for i in range(count):
        roll = rng.randrange(100)
        try:
            if roll < 30 or not files:
                path = f"{prefix}/f{i}"
                f = fs.create(path, ctx)
                f.pwrite(0, b"w" * (512 + 512 * rng.randrange(8)), ctx)
                f.fsync(ctx)
                f.close()
                files.append(path)
            elif roll < 55:
                fs.read_file(files[rng.randrange(len(files))], ctx)
            elif roll < 70:
                f = fs.open(files[rng.randrange(len(files))], ctx)
                f.pwrite(0, b"u" * 1024, ctx)
                f.fsync(ctx)
                f.close()
            elif roll < 78:
                fs.readdir("/", ctx)
            elif roll < 86:
                old = files.pop(rng.randrange(len(files)))
                new = f"{prefix}/r{i}"
                fs.rename(old, new, ctx)
                files.append(new)
            elif roll < 94:
                fs.unlink(files.pop(rng.randrange(len(files))), ctx)
            else:
                path = f"{prefix}/d{i}"
                fs.mkdir(path, ctx)
                fs.readdir(path, ctx)
        except FSError:
            pass


def _drive_degraded_mix(fs, ctx, rng, count: int) -> None:
    """Post-remount op mix: reads/readdirs that keep working on a
    degraded mount, plus writes that surface EROFS there (and succeed on
    a healthy one)."""
    from ..errors import FSError

    readable = []
    try:
        for name in fs.readdir("/", ctx):
            path = "/" + name
            if not fs.getattr(path).is_dir:
                readable.append(path)
    except FSError:
        pass
    for i in range(count):
        roll = rng.randrange(100)
        try:
            if roll < 50 and readable:
                fs.read_file(readable[rng.randrange(len(readable))], ctx)
            elif roll < 75:
                fs.readdir("/", ctx)
            else:
                f = fs.write_file(f"/post{i}", b"p" * 512, ctx)
                f.close()
        except FSError:
            pass


def slo_cell(cell: Dict[str, Any]) -> Dict[str, Any]:
    """Run one fault-campaign cell; returns a telemetry frame payload.

    Three phases, all in simulated time on the cell's own machine:

    1. a seeded op mix under the runtime fault plan
       (:func:`repro.faults.campaign_plan`);
    2. a crash (no unmount) plus post-crash media damage
       (:func:`repro.faults.crash_plan` — a poisoned journal head), then
       a remount whose tolerant recovery degrades the mount to
       read-only, followed by a degraded-mode op mix.  File systems
       without WineFS's fault surface instead do a clean
       unmount/remount on the same instance;
    3. (degradable FSes only) a re-format that heals the mount — the
       recovery edge that turns the degraded interval into an MTTR
       sample — and a short post-repair mix.

    Everything is deterministic in the cell key, so the frame is too.
    """
    from ..clock import make_context
    from ..faults import campaign_plan, crash_plan
    from ..obs import Telemetry
    from ..rng import make_rng

    name = cell["fs"]
    seed = cell["seed"]
    ops = cell["ops"]
    telemetry = Telemetry(tag=f"{name}/s{seed}")
    fs, ctx = fresh_fs(name, size_gib=cell["size_gib"],
                       num_cpus=cell["num_cpus"])
    plan = campaign_plan(seed)
    degradable = hasattr(fs, "attach_fault_plan")
    if degradable:
        fs.attach_fault_plan(plan)
    else:
        fs.device.set_fault_plan(plan)
    fs.attach_telemetry(telemetry)
    # salt the workload stream apart from the plan's own RNG
    rng = make_rng(seed, salt=11)
    _drive_op_mix(fs, ctx, rng, ops, prefix="")
    if degradable:
        # crash: skip the clean unmount, scar the journal head, and
        # remount a fresh instance from the PM image alone
        damage = crash_plan(seed, fs.journal.journals[0].base)
        spec = SPECS_BY_NAME[name]
        fs2 = spec.build(fs.device, cell["num_cpus"])
        fs2.attach_fault_plan(damage)
        fs2.attach_telemetry(telemetry)
        fs2.mount(ctx)
        _drive_degraded_mix(fs2, ctx, rng, ops // 2)
        # repair: a fresh format heals the mount (closes the interval)
        fs2.mkfs(ctx)
        _drive_op_mix(fs2, ctx, rng, ops // 4, prefix="")
        telemetry.absorb_fault_plan(fs2.name, damage)
        fs = fs2
    else:
        fs.unmount(ctx)
        fs.mount(ctx)
        _drive_degraded_mix(fs, ctx, rng, ops // 2)
    telemetry.absorb_fault_plan(fs.name, plan)
    telemetry.finalize(ctx.clock.elapsed)
    return telemetry.as_payload()


# -- the `repro serve` load campaign -----------------------------------------

SERVE_REPORT_SCHEMA = "repro.serve-report/1"


def serve_matrix(fs_names: Sequence[str], seeds: Sequence[int], *,
                 size_gib: float = 0.0625, num_cpus: int = 2,
                 ops: int = 300, tenants: int = 4, queue_cap: int = 0,
                 aged: bool = False,
                 faults: bool = False) -> List[Dict[str, Any]]:
    """The sorted (fs, seed) serve cell list — the canonical merge order."""
    cells = [{"fs": fs, "seed": seed, "size_gib": size_gib,
              "num_cpus": num_cpus, "ops": ops, "tenants": tenants,
              "queue_cap": queue_cap, "aged": aged, "faults": faults}
             for fs in fs_names for seed in seeds]
    cells.sort(key=lambda c: (c["fs"], c["seed"]))
    return cells


def serve_cell(cell: Dict[str, Any]) -> Dict[str, Any]:
    """Serve one seeded multi-tenant load against one FS backend.

    The cell stands up the full service stack on its own simulated
    machine — FS backend, multiplexer (admission control when
    ``queue_cap > 0``), RPC loopback client — and replays the seeded
    stream through the *client*, so every measured op crosses the codec.
    With ``faults`` set, :func:`repro.faults.serve_campaign_plan` runs
    against the backend mid-load; surfaced errors burn the ``service``
    SLO budget but never abort the load.  Returns the telemetry frame,
    the load report, and the multiplexer's admission metrics.
    """
    from ..faults import serve_campaign_plan
    from ..obs import Telemetry
    from ..serve import (FSObjStorage, LoadSpec, ObjStorageMultiplexer,
                         generate_stream, loopback_client, run_load)

    name = cell["fs"]
    seed = cell["seed"]
    build = aged_fs if cell.get("aged") else fresh_fs
    # track_data: served objects must round-trip their actual bytes
    fs, ctx = build(name, size_gib=cell["size_gib"],
                    num_cpus=cell["num_cpus"], track_data=True)
    telemetry = Telemetry(tag=f"serve/{name}/s{seed}")
    if cell.get("faults"):
        plan = serve_campaign_plan(seed)
        if hasattr(fs, "attach_fault_plan"):
            fs.attach_fault_plan(plan)
        else:
            fs.device.set_fault_plan(plan)
    else:
        plan = None
    backend = FSObjStorage(fs, ctx)
    mux = ObjStorageMultiplexer([backend],
                                queue_cap=cell.get("queue_cap", 0))
    mux.attach_telemetry(telemetry)
    client = loopback_client(mux, label=f"serve/{name}")
    stream = generate_stream(LoadSpec(seed=seed, tenants=cell["tenants"],
                                      ops=cell["ops"]))
    report = run_load(client, stream, telemetry=telemetry)
    if plan is not None:
        telemetry.absorb_fault_plan(fs.name, plan)
    telemetry.finalize(ctx.clock.elapsed)
    return {
        "fs": name,
        "seed": seed,
        "load": report,
        "admission": mux.registry.as_dict(),
        "frame": telemetry.as_payload(),
    }


def run_serve_campaign(cells: Sequence[Dict[str, Any]],
                       jobs: int = 1) -> Dict[str, Any]:
    """Run the serve matrix and evaluate SLOs over the merged frame.

    Same merge discipline as :func:`run_slo_campaign`: frames merge in
    sorted-cell-key order, so the report (and its OpenMetrics
    exposition) is byte-identical for any *jobs* value.
    """
    from ..obs import evaluate_frame, merge_frames

    results = run_fleet(serve_cell, cells, jobs=jobs)
    merged = merge_frames([r["frame"] for r in results])
    evaluated = evaluate_frame(merged)
    totals = merge_numeric(
        {"requests": r["load"]["requests"], "rejected": r["load"]["rejected"],
         "bytes_put": r["load"]["bytes_put"],
         "bytes_got": r["load"]["bytes_got"]}
        for r in results)
    return {
        "schema": SERVE_REPORT_SCHEMA,
        "cells": [{"fs": r["fs"], "seed": r["seed"], "load": r["load"],
                   "admission": r["admission"]} for r in results],
        "totals": totals,
        "frame": merged,
        "results": [
            {"fs": r.fs, "slo": r.spec.name, "ops": r.ops,
             "surfaced": r.surfaced, "p50_ns": r.p50_ns,
             "p99_ns": r.p99_ns, "p999_ns": r.p999_ns,
             "budget_burn": r.budget_burn,
             "objectives": list(r.objective_lines), "ok": r.ok}
            for r in evaluated],
    }


# -- the `repro snapshot build` corpus ---------------------------------------

CORPUS_REPORT_SCHEMA = "repro.snapshot-corpus/1"


def corpus_matrix(fs_names: Sequence[str], profiles: Sequence[str],
                  utilizations: Sequence[float], seeds: Sequence[int], *,
                  size_gib: float = 0.25, num_cpus: int = 2,
                  churn_multiple: float = 1.0,
                  track_data: bool = False) -> List[Dict[str, Any]]:
    """The sorted (fs × profile × utilization × seed) grid — the
    canonical archive-write order, like every other fleet matrix.

    Profiles are carried by *name* (``repro.aging.PROFILES``) so cells
    stay plain picklable data.
    """
    from ..aging import PROFILES

    for profile in profiles:
        if profile not in PROFILES:
            raise ValueError(f"unknown aging profile {profile!r}")
    cells = [{"fs": fs, "profile": profile, "utilization": utilization,
              "seed": seed, "size_gib": size_gib, "num_cpus": num_cpus,
              "churn_multiple": churn_multiple, "track_data": track_data}
             for fs in fs_names for profile in profiles
             for utilization in utilizations for seed in seeds]
    cells.sort(key=lambda c: (c["fs"], c["profile"], c["utilization"],
                              c["seed"]))
    return cells


def corpus_cell(cell: Dict[str, Any]) -> Dict[str, Any]:
    """Age one grid cell and encode its image; the parent archives it.

    Workers do the expensive, independent part (aging + codec encode)
    and return raw payload bytes; all archive writes happen in the
    parent, in sorted cell order, so the resulting packs and index are
    byte-identical for any ``--jobs`` value.  Un-serializable graphs
    report a ``None`` payload (fail-closed, like ``store.save``).

    Inode generations are drawn from a process-wide counter, so the
    encoded bytes would otherwise depend on what this process built
    before the cell.  The counter is pinned to its initial value for
    the build and fast-forwarded afterwards: every payload comes out as
    if aged in a fresh process, which is what makes the archive's
    contents (and dedup) independent of worker scheduling.
    """
    from ..aging import PROFILES
    from ..fs.common.inode import _GENERATION
    from ..snapshot import codec
    from .setup import aged_cache_key

    kwargs = dict(size_gib=cell["size_gib"], num_cpus=cell["num_cpus"],
                  utilization=cell["utilization"],
                  churn_multiple=cell["churn_multiple"],
                  profile=PROFILES[cell["profile"]], seed=cell["seed"],
                  track_data=cell["track_data"])
    key = aged_cache_key(cell["fs"], **kwargs)
    saved_gen = _GENERATION.next
    _GENERATION.next = 1
    try:
        fs, ctx = aged_fs(cell["fs"], snapshot=False, **kwargs)
        try:
            payload = codec.encode({"fs": fs, "ctx": ctx})
        except codec.SnapshotUnsupported:
            payload = None
    finally:
        _GENERATION.advance_past(saved_gen - 1)
    return {
        "fs": cell["fs"],
        "profile": cell["profile"],
        "utilization": cell["utilization"],
        "seed": cell["seed"],
        "key": key,
        "payload": payload,
        "meta": {"fs": cell["fs"], "size_gib": cell["size_gib"],
                 "num_cpus": cell["num_cpus"],
                 "utilization": cell["utilization"],
                 "churn_multiple": cell["churn_multiple"],
                 "profile": cell["profile"], "seed": cell["seed"],
                 "track_data": cell["track_data"]},
    }


def build_corpus(cells: Sequence[Dict[str, Any]], root: str,
                 jobs: int = 1, *,
                 seal_bytes: Optional[int] = None) -> Dict[str, Any]:
    """Fan the corpus grid across *jobs* and archive every aged image.

    Deterministic by construction: workers only compute, the parent
    writes to a single ``build`` shard in sorted cell order and seals it
    at the end, so index and pack contents are byte-identical for any
    *jobs* value.  The report carries per-cell outcomes plus the
    archive's dedup stats — identical payloads (every un-ageable PMFS
    cell across profiles/utilizations/seeds) are stored once and
    aliased.
    """
    from ..obs.metrics import MetricsRegistry
    from ..snapshot.archive import DEFAULT_SEAL_BYTES, Archive

    results = run_fleet(corpus_cell, cells, jobs=jobs)
    archive = Archive(root, shard_token="build",
                      seal_bytes=(DEFAULT_SEAL_BYTES if seal_bytes is None
                                  else seal_bytes))
    registry = MetricsRegistry()
    report_cells = []
    for result in results:
        payload = result.pop("payload")
        if payload is None:
            status = "unsupported"
        else:
            status = archive.put_payload(result["key"], payload,
                                         meta=result.pop("meta"))
            if status is None:
                status = "error"
            else:
                registry.counter("snapshot_archive_objects",
                                 status=status).inc()
                registry.counter("snapshot_archive_bytes").inc(
                    0 if status != "stored" else len(payload))
        report_cells.append({
            "fs": result["fs"], "profile": result["profile"],
            "utilization": result["utilization"], "seed": result["seed"],
            "key": result["key"], "status": status,
            "payload_bytes": len(payload) if payload is not None else 0,
        })
    archive.seal()
    return {
        "schema": CORPUS_REPORT_SCHEMA,
        "cells": report_cells,
        "archive": archive.stats(),
        "metrics": registry.as_dict(),
    }


def run_slo_campaign(cells: Sequence[Dict[str, Any]],
                     jobs: int = 1) -> Dict[str, Any]:
    """Run the campaign and evaluate SLOs over the merged frame.

    Frames come back in input (sorted-cell-key) order and merge in that
    order, so the report is byte-identical for any *jobs* value.
    """
    from ..obs import evaluate_frame, frame_of, merge_frames

    frames = run_fleet(slo_cell, cells, jobs=jobs)
    merged = merge_frames(frames)
    results = evaluate_frame(merged)
    _bank, _ledger, timeline = frame_of(merged)
    availability = {
        fs: {"degradations": timeline.degradations(fs),
             "degraded_ns": timeline.degraded_ns(fs),
             "mttr_ns": timeline.mttr_ns(fs)}
        for fs in timeline.fs_names()}
    return {
        "schema": SLO_REPORT_SCHEMA,
        "cells": [{"fs": c["fs"], "seed": c["seed"]} for c in cells],
        "frame": merged,
        "results": [
            {"fs": r.fs, "slo": r.spec.name, "ops": r.ops,
             "surfaced": r.surfaced, "p50_ns": r.p50_ns,
             "p99_ns": r.p99_ns, "p999_ns": r.p999_ns,
             "budget_burn": r.budget_burn,
             "objectives": list(r.objective_lines), "ok": r.ok}
            for r in results],
        "availability": availability,
    }
