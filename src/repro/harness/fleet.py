"""Parallel scenario runner: shard independent cells across processes.

Figure sweeps, property-differential seeds, and the perf matrix are all
embarrassingly parallel: each (fs, scenario, seed) cell builds its own
simulated machine, so cells share no state and can run anywhere.  The
determinism rules that keep a parallel run byte-identical to a serial
one:

* the caller materializes and orders the cell list up front — the cell
  key, not worker scheduling, defines the merge order;
* results come back indexed by input position (``Executor.map``), so
  completion order is invisible;
* merged reports contain only simulated quantities (ns, counts, bytes).
  Wall-clock readings, when wanted (perf harness), are measured inside
  the worker and reported per-cell, never accumulated across workers in
  arrival order.

``jobs <= 1`` runs inline in this process — same code path, no pool —
which is also what keeps the fleet usable under coverage and debuggers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

from ..params import KIB, MIB
from .setup import ALL_SPECS, aged_fs, fresh_fs

__all__ = ["run_fleet", "merge_numeric", "bench_cell", "bench_matrix",
           "run_bench_matrix", "DEFAULT_BENCH_PATTERNS"]


def run_fleet(fn: Callable[[Any], Any], cells: Sequence[Any],
              jobs: int = 1) -> List[Any]:
    """``[fn(c) for c in cells]``, fanned over *jobs* worker processes.

    Results are returned in input order regardless of completion order.
    *fn* and every cell must be picklable (module-level function, plain
    data) when ``jobs > 1``.
    """
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        return [fn(cell) for cell in cells]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
        return list(pool.map(fn, cells))


def merge_numeric(results: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum numeric fields across result dicts, in iteration order.

    The caller passes results in cell-key order (what :func:`run_fleet`
    returns), so float accumulation order — and therefore the merged
    values — never depend on scheduling.  Non-numeric fields keep the
    first value seen and must agree across results.
    """
    merged: Dict[str, Any] = {}
    for result in results:
        for key, value in result.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                merged.setdefault(key, value)
            elif key in merged:
                merged[key] += value
            else:
                merged[key] = value
    return merged


# -- the `repro bench` matrix ------------------------------------------------

DEFAULT_BENCH_PATTERNS = ("seq-read", "rand-read", "seq-write", "rand-write")


def bench_matrix(fs_names: Sequence[str], patterns: Sequence[str],
                 seeds: Sequence[int], *, size_gib: float = 0.25,
                 num_cpus: int = 4, file_mib: int = 16, io_kib: int = 4,
                 aged: bool = False) -> List[Dict[str, Any]]:
    """The sorted (fs, pattern, seed) cell list — the canonical order
    every merge follows."""
    cells = [{"fs": fs, "pattern": pattern, "seed": seed,
              "size_gib": size_gib, "num_cpus": num_cpus,
              "file_mib": file_mib, "io_kib": io_kib, "aged": aged}
             for fs in fs_names for pattern in patterns for seed in seeds]
    cells.sort(key=lambda c: (c["fs"], c["pattern"], c["seed"]))
    return cells


def bench_cell(cell: Dict[str, Any]) -> Dict[str, Any]:
    """Run one benchmark cell on its own simulated machine.

    Top-level so a process pool can pickle it.  Everything reported is
    simulated (deterministic for the cell key); no wall clock.
    """
    from ..workloads.microbench import mmap_rw_benchmark

    build = aged_fs if cell.get("aged") else fresh_fs
    fs, ctx = build(cell["fs"], size_gib=cell["size_gib"],
                    num_cpus=cell["num_cpus"])
    result = mmap_rw_benchmark(
        fs, ctx, file_size=cell["file_mib"] * MIB,
        io_size=cell["io_kib"] * KIB, total_bytes=cell["file_mib"] * MIB,
        pattern=cell["pattern"], seed=cell["seed"])
    return {
        "fs": cell["fs"],
        "pattern": cell["pattern"],
        "seed": cell["seed"],
        "aged": bool(cell.get("aged")),
        "bytes_moved": result.bytes_moved,
        "elapsed_ns": result.elapsed_ns,
        "throughput_mb_s": result.throughput_mb_s,
        "page_faults_4k": result.page_faults_4k,
        "page_faults_2m": result.page_faults_2m,
        "tlb_misses": result.tlb_misses,
        "fault_ns": result.fault_ns,
    }


def run_bench_matrix(cells: Sequence[Dict[str, Any]],
                     jobs: int = 1) -> Dict[str, Any]:
    """Run the matrix and build the report; byte-identical for any *jobs*."""
    results = run_fleet(bench_cell, cells, jobs=jobs)
    totals = merge_numeric(
        {"bytes_moved": r["bytes_moved"], "elapsed_ns": r["elapsed_ns"],
         "tlb_misses": r["tlb_misses"],
         "page_faults": r["page_faults_4k"] + r["page_faults_2m"]}
        for r in results)
    return {"schema": "repro.bench/1", "cells": results, "totals": totals}
