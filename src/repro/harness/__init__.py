"""Experiment harness.

Ties file systems, aging, and workloads together into the paper's
experiments and prints figure/table-shaped text output.

* :mod:`repro.harness.setup` — build machines, format/age file systems
  (aged images snapshot-cached under ``$REPRO_SNAPSHOT_DIR``), the
  strict/relaxed comparison groups of §5.1.
* :mod:`repro.harness.fleet` — process-pool runner for independent
  (fs, scenario, seed) cells with deterministic merge order.
* :mod:`repro.harness.report` — fixed-width tables and ASCII series
  (each bench prints "the same rows/series the paper reports").
"""

from .setup import (FSSpec, ALL_SPECS, SPECS_BY_NAME,
                    METADATA_GROUP, DATA_GROUP,
                    make_fs, aged_fs, aged_cache_key, fresh_fs)
from .fleet import (run_fleet, merge_numeric, bench_cell, bench_matrix,
                    run_bench_matrix, slo_cell, slo_matrix,
                    run_slo_campaign, corpus_cell, corpus_matrix,
                    build_corpus)
from .report import (Table, format_series, format_cdf,
                     phase_breakdown_table, slo_table, availability_table)

__all__ = ["FSSpec", "ALL_SPECS", "SPECS_BY_NAME",
           "METADATA_GROUP", "DATA_GROUP",
           "make_fs", "aged_fs", "aged_cache_key", "fresh_fs",
           "run_fleet", "merge_numeric", "bench_cell", "bench_matrix",
           "run_bench_matrix",
           "slo_cell", "slo_matrix", "run_slo_campaign",
           "corpus_cell", "corpus_matrix", "build_corpus",
           "Table", "format_series", "format_cdf",
           "phase_breakdown_table", "slo_table", "availability_table"]
