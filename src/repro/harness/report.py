"""Text rendering for experiment results: tables, series, and CDFs.

Every bench prints the rows/series of its figure or table through these
helpers so EXPERIMENTS.md and the bench output stay directly comparable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Table:
    """Fixed-width text table with a title (one per paper table/figure)."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} values, got "
                             f"{len(values)}")
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_series(title: str, series: Dict[str, List[Tuple[float, float]]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """One line per (x, y) point per named series (a figure's line plot)."""
    lines = [title, f"{'series':16s} {x_label:>10s} {y_label:>14s}"]
    for name, points in series.items():
        for x, y in points:
            lines.append(f"{name:16s} {_fmt(x):>10s} {_fmt(y):>14s}")
    return "\n".join(lines)


def format_cdf(title: str, cdfs: Dict[str, List[Tuple[float, float]]],
               percentiles: Iterable[float] = (50, 90, 99)) -> str:
    """Summarize named CDFs at the percentiles the paper annotates."""
    lines = [title,
             f"{'series':16s} " + " ".join(f"p{int(p):>2d}(ns)".rjust(12)
                                           for p in percentiles)]
    for name, cdf in cdfs.items():
        cells = []
        for p in percentiles:
            target = p / 100.0
            value = cdf[-1][0]
            for lat, frac in cdf:
                if frac >= target:
                    value = lat
                    break
            cells.append(f"{value:12.0f}")
        lines.append(f"{name:16s} " + " ".join(cells))
    return "\n".join(lines)


def speedup(results: Dict[str, float], over: str) -> Dict[str, float]:
    """Each entry relative to *over* (higher = faster than baseline)."""
    base = results[over]
    return {k: (v / base if base else float("inf"))
            for k, v in results.items()}


#: phase label -> display column, in paper-breakdown order (Figs 1/2/6)
PHASES = (("fault", "fault_ns"), ("copy", "copy_ns"),
          ("journal", "journal_ns"), ("lock_wait", "lock_wait_ns"))


def phase_breakdown_table(per_fs, title: str = "Per-phase time breakdown"
                          ) -> Table:
    """Where did the simulated time go, per file system?

    *per_fs* maps FS name -> an :class:`~repro.clock.EventCounters` or a
    :class:`~repro.obs.metrics.MetricsRegistry`; either way the phase
    columns come from the ``phase_ns`` series, plus a total and the
    fraction of that total each phase accounts for.
    """
    table = Table(title, ["fs"] + [f"{label}_ns" for label, _ in PHASES]
                  + ["total_ns", "breakdown"])
    for fs_name, source in per_fs.items():
        registry = getattr(source, "registry", source)
        values = [registry.value("phase_ns", phase=label)
                  for label, _ in PHASES]
        total = sum(values)
        shares = " ".join(
            f"{label}={v / total * 100.0:.0f}%" for (label, _), v
            in zip(PHASES, values)) if total else "-"
        table.add_row(fs_name, *values, total, shares)
    return table
