"""Text rendering for experiment results: tables, series, and CDFs.

Every bench prints the rows/series of its figure or table through these
helpers so EXPERIMENTS.md and the bench output stay directly comparable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Table:
    """Fixed-width text table with a title (one per paper table/figure)."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} values, got "
                             f"{len(values)}")
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        # cells may span multiple lines (e.g. SLO objective lists): the
        # column width is the widest *line*, not the raw cell length,
        # and a row renders as many text lines as its tallest cell
        grid = [[cell.splitlines() or [""] for cell in row]
                for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in grid:
            for i, cell_lines in enumerate(row):
                for line in cell_lines:
                    widths[i] = max(widths[i], len(line))
        lines = [self.title]
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in grid:
            height = max(len(cell_lines) for cell_lines in row)
            for k in range(height):
                lines.append("  ".join(
                    (cell_lines[k] if k < len(cell_lines) else "")
                    .ljust(widths[i])
                    for i, cell_lines in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_series(title: str, series: Dict[str, List[Tuple[float, float]]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """One line per (x, y) point per named series (a figure's line plot)."""
    lines = [title, f"{'series':16s} {x_label:>10s} {y_label:>14s}"]
    for name, points in series.items():
        for x, y in points:
            lines.append(f"{name:16s} {_fmt(x):>10s} {_fmt(y):>14s}")
    return "\n".join(lines)


def format_cdf(title: str, cdfs: Dict[str, List[Tuple[float, float]]],
               percentiles: Iterable[float] = (50, 90, 99)) -> str:
    """Summarize named CDFs at the percentiles the paper annotates."""
    lines = [title,
             f"{'series':16s} " + " ".join(f"p{int(p):>2d}(ns)".rjust(12)
                                           for p in percentiles)]
    for name, cdf in cdfs.items():
        cells = []
        for p in percentiles:
            target = p / 100.0
            value = cdf[-1][0]
            for lat, frac in cdf:
                if frac >= target:
                    value = lat
                    break
            cells.append(f"{value:12.0f}")
        lines.append(f"{name:16s} " + " ".join(cells))
    return "\n".join(lines)


def speedup(results: Dict[str, float], over: str) -> Dict[str, float]:
    """Each entry relative to *over* (higher = faster than baseline)."""
    base = results[over]
    return {k: (v / base if base else float("inf"))
            for k, v in results.items()}


def slo_table(rows: Sequence[Dict], title: str = "SLO report") -> Table:
    """Per-(fs, SLO class) table from a campaign report's ``results``
    rows (:func:`repro.harness.fleet.run_slo_campaign`).

    The objectives column is multi-line — one "bound: OK|VIOLATED" line
    per set objective — which is exactly what :meth:`Table.render`'s
    multi-line cell support exists for.
    """
    table = Table(title, ["fs", "slo", "ops", "errors", "p50(ns)",
                          "p99(ns)", "p999(ns)", "burn", "objectives",
                          "status"])
    for row in rows:
        table.add_row(row["fs"], row["slo"], row["ops"], row["surfaced"],
                      row["p50_ns"], row["p99_ns"], row["p999_ns"],
                      row["budget_burn"],
                      "\n".join(row["objectives"]) or "-",
                      "OK" if row["ok"] else "VIOLATED")
    return table


def availability_table(availability: Dict[str, Dict],
                       title: str = "Degraded-mode availability"
                       ) -> Table:
    """Per-FS degraded-time summary from a campaign report's
    ``availability`` map (simulated milliseconds; MTTR is ``-`` when no
    degraded mount recovered)."""
    table = Table(title, ["fs", "degradations", "degraded(ms)",
                          "mttr(ms)"])
    for fs in sorted(availability):
        entry = availability[fs]
        mttr = entry.get("mttr_ns")
        table.add_row(fs, entry["degradations"],
                      entry["degraded_ns"] / 1e6,
                      "-" if mttr is None else _fmt(mttr / 1e6))
    return table


#: phase label -> display column, in paper-breakdown order (Figs 1/2/6)
PHASES = (("fault", "fault_ns"), ("copy", "copy_ns"),
          ("journal", "journal_ns"), ("lock_wait", "lock_wait_ns"))


def phase_breakdown_table(per_fs, title: str = "Per-phase time breakdown"
                          ) -> Table:
    """Where did the simulated time go, per file system?

    *per_fs* maps FS name -> an :class:`~repro.clock.EventCounters` or a
    :class:`~repro.obs.metrics.MetricsRegistry`; either way the phase
    columns come from the ``phase_ns`` series, plus a total and the
    fraction of that total each phase accounts for.
    """
    table = Table(title, ["fs"] + [f"{label}_ns" for label, _ in PHASES]
                  + ["total_ns", "breakdown"])
    for fs_name, source in per_fs.items():
        registry = getattr(source, "registry", source)
        values = [registry.value("phase_ns", phase=label)
                  for label, _ in PHASES]
        total = sum(values)
        shares = " ".join(
            f"{label}={v / total * 100.0:.0f}%" for (label, _), v
            in zip(PHASES, values)) if total else "-"
        table.add_row(fs_name, *values, total, shares)
    return table
