"""Experiment setup: machines, file systems, aging, comparison groups.

The paper compares two groups (§5.1):

* metadata consistency: ext4-DAX, xfs-DAX, PMFS, NOVA-relaxed, SplitFS,
  and WineFS in relaxed mode;
* data + metadata consistency: NOVA, Strata, and WineFS (strict, the
  default).

Aged experiments use Geriatrix with the Agrawal profile at 75% target
utilization (§5.1), scaled to the simulated partition size: the paper's
165TB on 500GB is ~330 partition-volumes; our default churn is
``churn_multiple`` partition-volumes, which reaches the same qualitative
fragmentation regime in minutes instead of weeks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..aging import AGRAWAL, AgingProfile, Geriatrix
from ..clock import SimContext, make_context
from ..params import GIB
from ..pm.device import PMDevice
from ..vfs.interface import FileSystem
from ..core.filesystem import WineFS
from ..fs import Ext4DAX, NovaFS, PMFS, SplitFS, StrataFS, XfsDAX


@dataclass(frozen=True)
class FSSpec:
    """How to construct one evaluated file system."""

    name: str
    factory: Callable[..., FileSystem]
    kwargs: tuple = ()
    data_consistent: bool = False
    #: PMFS "takes weeks to age" (§5.1) — the paper uses it un-aged
    ageable: bool = True

    def build(self, device: PMDevice, num_cpus: int,
              track_data: bool = False) -> FileSystem:
        return self.factory(device, num_cpus=num_cpus,
                            track_data=track_data, **dict(self.kwargs))


ALL_SPECS: List[FSSpec] = [
    FSSpec("WineFS", WineFS, (("mode", "strict"),), data_consistent=True),
    FSSpec("WineFS-relaxed", WineFS, (("mode", "relaxed"),)),
    FSSpec("NOVA", NovaFS, (("mode", "strict"),), data_consistent=True),
    FSSpec("NOVA-relaxed", NovaFS, (("mode", "relaxed"),)),
    FSSpec("ext4-DAX", Ext4DAX),
    FSSpec("xfs-DAX", XfsDAX),
    FSSpec("PMFS", PMFS, ageable=False),
    FSSpec("SplitFS", SplitFS),
    FSSpec("Strata", StrataFS, data_consistent=True),
]

SPECS_BY_NAME: Dict[str, FSSpec] = {s.name: s for s in ALL_SPECS}

#: §5.1 comparison groups
METADATA_GROUP = ["ext4-DAX", "xfs-DAX", "PMFS", "NOVA-relaxed", "SplitFS",
                  "WineFS-relaxed"]
DATA_GROUP = ["NOVA", "Strata", "WineFS"]


def make_fs(name: str, *, size_gib: float = 1.0, num_cpus: int = 4,
            track_data: bool = False, trace=None
            ) -> Tuple[FileSystem, SimContext]:
    """Build + mkfs one named file system on a fresh machine.

    *trace* is an optional :class:`~repro.obs.trace.Tracer`; when omitted
    the context carries the shared no-op handle (tracing off).
    """
    spec = SPECS_BY_NAME[name]
    size = int(size_gib * GIB)
    device = PMDevice(size)
    fs = spec.build(device, num_cpus, track_data=track_data)
    ctx = make_context(num_cpus, trace=trace)
    device.bind_metrics(ctx.counters.registry, fs=name)
    fs.mkfs(ctx)
    return fs, ctx


def fresh_fs(name: str, **kwargs) -> Tuple[FileSystem, SimContext]:
    """Alias of make_fs: a newly created (un-aged) file system."""
    return make_fs(name, **kwargs)


def aged_fs(name: str, *, size_gib: float = 1.0, num_cpus: int = 4,
            utilization: float = 0.75, churn_multiple: float = 10.0,
            profile: AgingProfile = AGRAWAL, seed: int = 7,
            track_data: bool = False, trace=None
            ) -> Tuple[FileSystem, SimContext]:
    """Build, format and age one named file system (§5.1 setup).

    PMFS is returned clean — the paper does the same because PMFS cannot
    complete the aging run; its clean numbers are an upper bound.
    """
    fs, ctx = make_fs(name, size_gib=size_gib, num_cpus=num_cpus,
                      track_data=track_data, trace=trace)
    spec = SPECS_BY_NAME[name]
    if spec.ageable:
        ager = Geriatrix(fs, profile, target_utilization=utilization,
                         seed=seed)
        ager.age(ctx, write_volume=int(churn_multiple * size_gib * GIB))
    # the aging time is setup, not measurement: reset the clocks
    ctx.clock.reset()
    return fs, ctx
