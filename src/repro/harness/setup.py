"""Experiment setup: machines, file systems, aging, comparison groups.

The paper compares two groups (§5.1):

* metadata consistency: ext4-DAX, xfs-DAX, PMFS, NOVA-relaxed, SplitFS,
  and WineFS in relaxed mode;
* data + metadata consistency: NOVA, Strata, and WineFS (strict, the
  default).

Aged experiments use Geriatrix with the Agrawal profile at 75% target
utilization (§5.1), scaled to the simulated partition size: the paper's
165TB on 500GB is ~330 partition-volumes; our default churn is
``churn_multiple`` partition-volumes, which reaches the same qualitative
fragmentation regime in minutes instead of weeks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..aging import AGRAWAL, AgingProfile, Geriatrix
from ..clock import SimContext, make_context
from ..params import DEFAULT_MACHINE, GIB
from ..pm.device import PMDevice
from ..snapshot import store as snapshot_store
from ..vfs.interface import FileSystem
from ..core.filesystem import WineFS
from ..fs import Ext4DAX, NovaFS, PMFS, SplitFS, StrataFS, XfsDAX
from ..fs.common.inode import _GENERATION


@dataclass(frozen=True)
class FSSpec:
    """How to construct one evaluated file system."""

    name: str
    factory: Callable[..., FileSystem]
    kwargs: tuple = ()
    data_consistent: bool = False
    #: PMFS "takes weeks to age" (§5.1) — the paper uses it un-aged
    ageable: bool = True

    def build(self, device: PMDevice, num_cpus: int,
              track_data: bool = False) -> FileSystem:
        return self.factory(device, num_cpus=num_cpus,
                            track_data=track_data, **dict(self.kwargs))


ALL_SPECS: List[FSSpec] = [
    FSSpec("WineFS", WineFS, (("mode", "strict"),), data_consistent=True),
    FSSpec("WineFS-relaxed", WineFS, (("mode", "relaxed"),)),
    FSSpec("NOVA", NovaFS, (("mode", "strict"),), data_consistent=True),
    FSSpec("NOVA-relaxed", NovaFS, (("mode", "relaxed"),)),
    FSSpec("ext4-DAX", Ext4DAX),
    FSSpec("xfs-DAX", XfsDAX),
    FSSpec("PMFS", PMFS, ageable=False),
    FSSpec("SplitFS", SplitFS),
    FSSpec("Strata", StrataFS, data_consistent=True),
]

SPECS_BY_NAME: Dict[str, FSSpec] = {s.name: s for s in ALL_SPECS}

#: §5.1 comparison groups
METADATA_GROUP = ["ext4-DAX", "xfs-DAX", "PMFS", "NOVA-relaxed", "SplitFS",
                  "WineFS-relaxed"]
DATA_GROUP = ["NOVA", "Strata", "WineFS"]


def make_fs(name: str, *, size_gib: float = 1.0, num_cpus: int = 4,
            track_data: bool = False, trace=None
            ) -> Tuple[FileSystem, SimContext]:
    """Build + mkfs one named file system on a fresh machine.

    *trace* is an optional :class:`~repro.obs.trace.Tracer`; when omitted
    the context carries the shared no-op handle (tracing off).
    """
    spec = SPECS_BY_NAME[name]
    size = int(size_gib * GIB)
    device = PMDevice(size)
    fs = spec.build(device, num_cpus, track_data=track_data)
    ctx = make_context(num_cpus, trace=trace)
    device.bind_metrics(ctx.counters.registry, fs=name)
    fs.mkfs(ctx)
    return fs, ctx


def fresh_fs(name: str, **kwargs) -> Tuple[FileSystem, SimContext]:
    """Alias of make_fs: a newly created (un-aged) file system."""
    return make_fs(name, **kwargs)


def _reset_after_setup(fs: FileSystem, ctx: SimContext) -> None:
    """Zero every accumulator once setup (mkfs + aging) is done.

    Aging time is setup, not measurement (paper §5.1), and that holds for
    *all* simulated history: the per-CPU clocks, the lock timeline (lock
    free times are absolute timestamps — left behind, the first
    acquisition after a clock reset pays the whole aging makespan as a
    spurious wait), the metrics registry the counters write through, and
    the device byte totals the ``pm_device_bytes`` gauges report.
    """
    ctx.clock.reset()
    ctx.locks.reset_timeline()
    ctx.counters.registry.reset()
    fs.device.bytes_read = 0
    fs.device.bytes_written = 0


def aged_cache_key(name: str, *, size_gib: float = 1.0, num_cpus: int = 4,
                   utilization: float = 0.75, churn_multiple: float = 10.0,
                   profile: AgingProfile = AGRAWAL, seed: int = 7,
                   track_data: bool = False) -> str:
    """The snapshot-store key :func:`aged_fs` files an image under.

    Public so the fleet corpus builder (and anything else that archives
    aged images out-of-band) lands on exactly the keys a later
    ``aged_fs`` call will look up.  Defaults mirror :func:`aged_fs`.
    """
    return snapshot_store.cache_key({
        "kind": "aged_fs",
        "fs": name,
        "size_bytes": int(size_gib * GIB),
        "num_cpus": num_cpus,
        "utilization": utilization,
        "churn_multiple": churn_multiple,
        "profile": profile,
        "seed": seed,
        "track_data": track_data,
        "machine": DEFAULT_MACHINE,
    })


def _restore_aged(key: str, name: str
                  ) -> Tuple[Optional[Tuple[FileSystem, SimContext]], str]:
    """Restore the aged image under *key*; ``(pair, status)``.

    *status* is a :data:`repro.snapshot.store.LOAD_STATUSES` entry; a
    decoded value of the wrong shape counts as ``decode_error``.  Any
    non-``hit`` status makes the caller re-age, and :func:`aged_fs`
    counts the non-``miss`` failures into the run's metrics registry —
    a cache that silently re-ages every run must not look healthy.
    """
    root, status = snapshot_store.load_ex(key)
    if status != "hit":
        return None, status
    if not isinstance(root, dict):
        return None, "decode_error"
    fs = root.get("fs")
    ctx = root.get("ctx")
    if not isinstance(fs, FileSystem) or not isinstance(ctx, SimContext):
        return None, "decode_error"
    # callback gauges are dropped at encode time; re-create them exactly
    # as make_fs does so the registry matches the freshly-aged path
    fs.device.bind_metrics(ctx.counters.registry, fs=name)
    # inode generations must stay unique across restore + fresh allocations
    # (they key VFS lock names); fast-forward the process-wide counter
    for inode in fs._itable.live_inodes():
        _GENERATION.advance_past(inode.gen)
    return (fs, ctx), "hit"


def aged_fs(name: str, *, size_gib: float = 1.0, num_cpus: int = 4,
            utilization: float = 0.75, churn_multiple: float = 10.0,
            profile: AgingProfile = AGRAWAL, seed: int = 7,
            track_data: bool = False, trace=None, snapshot: bool = True
            ) -> Tuple[FileSystem, SimContext]:
    """Build, format and age one named file system (§5.1 setup).

    PMFS is returned clean — the paper does the same because PMFS cannot
    complete the aging run; its clean numbers are an upper bound.

    With *snapshot* (the default), the aged image is cached under
    ``$REPRO_SNAPSHOT_DIR`` (default ``~/.cache/repro``) keyed by every
    aging parameter, and later calls restore it bit-identically instead
    of re-aging.  Set ``REPRO_SNAPSHOT=0`` (or ``snapshot=False``) to
    force re-aging; tracing a run disables the cache automatically since
    a restore would replay no spans.
    """
    use_cache = (snapshot and trace is None
                 and os.environ.get("REPRO_SNAPSHOT", "1") != "0")
    key = ""
    load_status = "miss"
    if use_cache:
        key = aged_cache_key(name, size_gib=size_gib, num_cpus=num_cpus,
                             utilization=utilization,
                             churn_multiple=churn_multiple,
                             profile=profile, seed=seed,
                             track_data=track_data)
        restored, load_status = _restore_aged(key, name)
        if restored is not None:
            return restored
    fs, ctx = make_fs(name, size_gib=size_gib, num_cpus=num_cpus,
                      track_data=track_data, trace=trace)
    spec = SPECS_BY_NAME[name]
    if spec.ageable:
        ager = Geriatrix(fs, profile, target_utilization=utilization,
                         seed=seed)
        ager.age(ctx, write_volume=int(churn_multiple * size_gib * GIB))
    _reset_after_setup(fs, ctx)
    if load_status not in ("hit", "miss"):
        # the cache had a file for this key but could not serve it; count
        # the failure (post-reset, so it survives into the run's metrics)
        ctx.counters.registry.counter("snapshot_load_failures", fs=name,
                                      reason=load_status).inc()
    if use_cache and fs.device.faults is None:
        snapshot_store.save(key, {"fs": fs, "ctx": ctx}, meta={
            "fs": name, "size_gib": size_gib, "num_cpus": num_cpus,
            "utilization": utilization, "churn_multiple": churn_multiple,
            "profile": profile, "seed": seed, "track_data": track_data})
    return fs, ctx
