"""Filebench personality models (paper §5.5, Fig 9a/d, Table 1).

The four personalities the paper uses, at their documented op mixes:

* **varmail**: mail-server pattern — create/append/fsync/read/delete over
  many small files (metadata-heavy; fsync-heavy).  16 threads, 1M files in
  the paper; scaled here.
* **fileserver**: create/write/append/read/delete of medium files.
* **webserver**: open/read whole small files + a shared append log.
* **webproxy**: create/append/read then delete, plus repeated reads.

Each personality runs on N virtual CPUs round-robin, so the journal/lock
design of the file system shows up in the makespan exactly as in Fig 9.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..clock import SimContext
from ..params import KIB
from ..rng import make_rng
from ..structures.stats import ops_per_sec
from ..vfs.interface import FileSystem


@dataclass
class FilebenchResult:
    fs_name: str
    personality: str
    ops: int
    elapsed_ns: float

    @property
    def kops_per_sec(self) -> float:
        return ops_per_sec(self.ops, self.elapsed_ns) / 1e3


def _spread(ctx: SimContext, i: int) -> SimContext:
    """Round-robin an op index across the virtual CPUs."""
    return ctx.on_cpu(i % ctx.clock.num_cpus)


def _prepopulate(fs: FileSystem, ctx: SimContext, dir_path: str,
                 nfiles: int, mean_size: int, rng: random.Random) -> List[str]:
    if not fs.exists(dir_path):
        fs.mkdir(dir_path, ctx)
    paths = []
    for i in range(nfiles):
        path = f"{dir_path}/pre{i}"
        f = fs.create(path, ctx)
        size = max(1024, int(rng.expovariate(1.0 / mean_size)))
        f.append(b"\x00" * size, ctx)
        f.close()
        paths.append(path)
    return paths


def varmail(fs: FileSystem, ctx: SimContext, *, ops: int, nfiles: int,
            seed: int) -> FilebenchResult:
    """create/fsync/read/append/fsync/read/delete cycles (mail pattern)."""
    rng = make_rng(seed)
    base = "/varmail"
    paths = _prepopulate(fs, ctx, base, nfiles, 16 * KIB, rng)
    start_ns = ctx.clock.elapsed
    counter = 0
    for i in range(ops):
        c = _spread(ctx, i)
        kind = i % 4
        if kind == 0:                                   # deliver new mail
            counter += 1
            path = f"{base}/new{counter}"
            f = fs.create(path, c)
            f.append(b"\x00" * (8 * KIB), c)
            f.fsync(c)
            f.close()
            paths.append(path)
        elif kind == 1 and paths:                       # read a mailbox
            fs.read_file(paths[rng.randrange(len(paths))], c)
        elif kind == 2 and paths:                       # append + fsync
            f = fs.open(paths[rng.randrange(len(paths))], c)
            f.append(b"\x00" * (4 * KIB), c)
            f.fsync(c)
            f.close()
        elif paths:                                     # delete
            idx = rng.randrange(len(paths))
            fs.unlink(paths[idx], c)
            paths[idx] = paths[-1]
            paths.pop()
    return FilebenchResult(fs.name, "varmail", ops,
                           ctx.clock.elapsed - start_ns)


def fileserver(fs: FileSystem, ctx: SimContext, *, ops: int, nfiles: int,
               seed: int) -> FilebenchResult:
    """create/write whole file/append/read whole file/delete (file server)."""
    rng = make_rng(seed)
    base = "/fileserver"
    paths = _prepopulate(fs, ctx, base, nfiles, 128 * KIB, rng)
    start_ns = ctx.clock.elapsed
    counter = 0
    for i in range(ops):
        c = _spread(ctx, i)
        kind = i % 5
        if kind == 0:
            counter += 1
            path = f"{base}/new{counter}"
            f = fs.create(path, c)
            f.append(b"\x00" * (128 * KIB), c)
            f.close()
            paths.append(path)
        elif kind == 1 and paths:
            f = fs.open(paths[rng.randrange(len(paths))], c)
            f.append(b"\x00" * (16 * KIB), c)
            f.close()
        elif kind in (2, 3) and paths:
            fs.read_file(paths[rng.randrange(len(paths))], c)
        elif paths:
            idx = rng.randrange(len(paths))
            fs.unlink(paths[idx], c)
            paths[idx] = paths[-1]
            paths.pop()
    return FilebenchResult(fs.name, "fileserver", ops,
                           ctx.clock.elapsed - start_ns)


def webserver(fs: FileSystem, ctx: SimContext, *, ops: int, nfiles: int,
              seed: int) -> FilebenchResult:
    """read-mostly: open+read whole small files, append to a shared log."""
    rng = make_rng(seed)
    base = "/webserver"
    paths = _prepopulate(fs, ctx, base, nfiles, 32 * KIB, rng)
    log = fs.create(f"{base}/access.log", ctx)
    start_ns = ctx.clock.elapsed
    for i in range(ops):
        c = _spread(ctx, i)
        if i % 10 == 9:
            log.append(b"\x00" * 512, c)
        elif paths:
            fs.read_file(paths[rng.randrange(len(paths))], c)
    return FilebenchResult(fs.name, "webserver", ops,
                           ctx.clock.elapsed - start_ns)


def webproxy(fs: FileSystem, ctx: SimContext, *, ops: int, nfiles: int,
             seed: int) -> FilebenchResult:
    """create/append/read x5/delete cycles plus a shared log (proxy cache)."""
    rng = make_rng(seed)
    base = "/webproxy"
    paths = _prepopulate(fs, ctx, base, nfiles, 32 * KIB, rng)
    log = fs.create(f"{base}/proxy.log", ctx)
    start_ns = ctx.clock.elapsed
    counter = 0
    for i in range(ops):
        c = _spread(ctx, i)
        kind = i % 7
        if kind == 0:
            counter += 1
            path = f"{base}/obj{counter}"
            f = fs.create(path, c)
            f.append(b"\x00" * (16 * KIB), c)
            f.close()
            paths.append(path)
        elif kind == 6 and paths:
            idx = rng.randrange(len(paths))
            fs.unlink(paths[idx], c)
            paths[idx] = paths[-1]
            paths.pop()
            log.append(b"\x00" * 256, c)
        elif paths:
            fs.read_file(paths[rng.randrange(len(paths))], c)
    return FilebenchResult(fs.name, "webproxy", ops,
                           ctx.clock.elapsed - start_ns)


PERSONALITIES: Dict[str, Callable] = {
    "varmail": varmail,
    "fileserver": fileserver,
    "webserver": webserver,
    "webproxy": webproxy,
}


def run_personality(fs: FileSystem, ctx: SimContext, name: str, *,
                    ops: int = 2000, nfiles: int = 200,
                    seed: int = 0) -> FilebenchResult:
    if name not in PERSONALITIES:
        raise ValueError(f"unknown personality {name!r}")
    return PERSONALITIES[name](fs, ctx, ops=ops, nfiles=nfiles, seed=seed)
