"""Application workload models (paper Table 1).

Each workload reproduces the *access pattern* of the real application —
mmap vs system calls, allocation style (``ftruncate`` vs ``fallocate``),
value sizes, batching, fsync cadence — because those patterns are what the
paper's results depend on (page-fault counts, hugepage mappability,
journal pressure).  None of them re-implement the application's internal
logic beyond what shapes its I/O.

* :mod:`microbench` — Fig 1/6: sequential/random reads/writes via mmap and
  via 4KB syscalls (fsync every 10 ops).
* :mod:`rocksdb` + :mod:`ycsb` — YCSB on a RocksDB-like mmap KV store.
* :mod:`lmdb` — ftruncate-grown, demand-faulted mmap B-tree (fillseqbatch).
* :mod:`pmemkv` — fallocate-grown 128MB pool files (fillseq).
* :mod:`part` — pre-faulted persistent radix tree lookups (latency CDF).
* :mod:`filebench` — varmail / fileserver / webserver / webproxy.
* :mod:`pgbench` — PostgreSQL TPC-B-style read-write mix.
* :mod:`wiredtiger` — FillRandom (unaligned appends) / ReadRandom.
* :mod:`scalability` — Fig 10 create/append/fsync/unlink per thread.
"""

from .microbench import (mmap_rw_benchmark, posix_rw_benchmark,
                         MicrobenchResult)
from .ycsb import YCSBWorkload, run_ycsb, YCSB_WORKLOADS
from .rocksdb import RocksDBModel
from .lmdb import LMDBModel, run_fillseqbatch
from .pmemkv import PmemKVModel, run_fillseq
from .part import PARTModel, run_part_lookups
from .filebench import run_personality, PERSONALITIES, FilebenchResult
from .pgbench import run_pgbench
from .wiredtiger import run_wiredtiger
from .scalability import run_scalability
from .utilities import run_kernel_compile, run_rsync, run_tar, UTILITIES

__all__ = [
    "mmap_rw_benchmark", "posix_rw_benchmark", "MicrobenchResult",
    "YCSBWorkload", "run_ycsb", "YCSB_WORKLOADS", "RocksDBModel",
    "LMDBModel", "run_fillseqbatch",
    "PmemKVModel", "run_fillseq",
    "PARTModel", "run_part_lookups",
    "run_personality", "PERSONALITIES", "FilebenchResult",
    "run_pgbench", "run_wiredtiger", "run_scalability",
    "run_kernel_compile", "run_tar", "run_rsync", "UTILITIES",
]
