"""YCSB workload driver (Cooper et al., SoCC 2010), paper Fig 7a / Table 2.

The standard workload mixes:

=========  =======================================  ==================
Workload   Mix                                      Distribution
=========  =======================================  ==================
Load       100% insert                              sequential keys
A          50% read / 50% update                    zipfian
B          95% read / 5% update                     zipfian
C          100% read                                zipfian
D          95% read (latest) / 5% insert            latest
E          95% scan / 5% insert                     zipfian
F          50% read / 50% read-modify-write         zipfian
=========  =======================================  ==================
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..clock import SimContext
from ..errors import NotFoundError
from ..rng import make_rng
from ..structures.stats import ops_per_sec
from ..vfs.interface import FileSystem
from .rocksdb import RocksDBModel


@dataclass(frozen=True)
class YCSBWorkload:
    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"     # zipfian | latest | sequential

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if not math.isclose(total, 1.0, abs_tol=1e-9):
            raise ValueError(f"{self.name}: mix must sum to 1, got {total}")


YCSB_WORKLOADS: Dict[str, YCSBWorkload] = {
    "Load": YCSBWorkload("Load", insert=1.0, distribution="sequential"),
    "A": YCSBWorkload("A", read=0.5, update=0.5),
    "B": YCSBWorkload("B", read=0.95, update=0.05),
    "C": YCSBWorkload("C", read=1.0),
    "D": YCSBWorkload("D", read=0.95, insert=0.05, distribution="latest"),
    "E": YCSBWorkload("E", scan=0.95, insert=0.05),
    "F": YCSBWorkload("F", read=0.5, rmw=0.5),
}


class _ZipfGenerator:
    """Approximate zipfian sampler over [0, n) (YCSB's theta = 0.99)."""

    def __init__(self, n: int, rng: random.Random, theta: float = 0.99) -> None:
        self.n = max(1, n)
        self.rng = rng
        self.alpha = 1.0 / (1.0 - theta)
        self.zeta_n = sum(1.0 / (i ** theta) for i in range(1, min(self.n, 1000) + 1))
        self.theta = theta

    def next(self) -> int:
        # inverse-CDF approximation; exactness is irrelevant here, skew is
        u = self.rng.random()
        value = int(self.n * (u ** self.alpha))
        return min(self.n - 1, value)


@dataclass
class YCSBResult:
    fs_name: str
    workload: str
    ops: int
    elapsed_ns: float
    page_faults: int

    @property
    def kops_per_sec(self) -> float:
        return ops_per_sec(self.ops, self.elapsed_ns) / 1e3


def run_ycsb(db: RocksDBModel, workload: YCSBWorkload, ctx: SimContext, *,
             record_count: int, op_count: int, seed: int = 0,
             preloaded: bool = True) -> YCSBResult:
    """Run one YCSB workload against a (pre-)loaded RocksDB model."""
    rng = make_rng(seed)
    zipf = _ZipfGenerator(record_count, rng)
    next_key = record_count
    faults0 = ctx.counters.page_faults
    start_ns = ctx.now

    def pick_key() -> int:
        if workload.distribution == "latest":
            return max(0, next_key - 1 - zipf.next())
        return zipf.next()

    for i in range(op_count):
        r = rng.random()
        if workload.name == "Load":
            db.put(i, ctx)
            continue
        if r < workload.read:
            try:
                db.get(pick_key(), ctx)
            except NotFoundError:
                pass
        elif r < workload.read + workload.update:
            db.update(pick_key(), ctx)
        elif r < workload.read + workload.update + workload.insert:
            db.put(next_key, ctx)
            next_key += 1
        elif r < workload.read + workload.update + workload.insert + workload.scan:
            db.scan(pick_key(), rng.randrange(1, 100), ctx)
        else:   # read-modify-write
            key = pick_key()
            try:
                db.get(key, ctx)
            except NotFoundError:
                pass
            db.update(key, ctx)
    return YCSBResult(fs_name=db.fs.name, workload=workload.name,
                      ops=op_count, elapsed_ns=ctx.now - start_ns,
                      page_faults=ctx.counters.page_faults - faults0)
