"""WiredTiger model (paper §5.5, Fig 9c/f; MongoDB's default engine).

The paper's FillRandom analysis: "WiredTiger appends data at unaligned
offsets and NOVA forces these appends to a new 4KB page to ensure data
atomicity, causing high write amplification.  NOVA copies the data in the
partial block to the new block and then appends new data.  WineFS
continues to append to partially full blocks without having to copy old
data".

So FillRandom is modeled as a stream of ~1KB-value appends (unaligned
offsets by construction) into per-collection files, with periodic
checkpoints (fsync).  ReadRandom reads random 1KB ranges back and is
expected to be FS-insensitive ("throughput remains the same across
different file systems").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimContext
from ..params import KIB, MIB
from ..rng import make_rng
from ..structures.stats import ops_per_sec
from ..vfs.interface import FileSystem


@dataclass
class WiredTigerResult:
    fs_name: str
    workload: str
    ops: int
    elapsed_ns: float

    @property
    def kops_per_sec(self) -> float:
        return ops_per_sec(self.ops, self.elapsed_ns) / 1e3


def run_wiredtiger(fs: FileSystem, ctx: SimContext, *,
                   workload: str = "fillrandom",
                   ops: int = 10_000, value_size: int = 1 * KIB,
                   ntables: int = 4, checkpoint_every: int = 100,
                   seed: int = 0) -> WiredTigerResult:
    if workload not in ("fillrandom", "readrandom"):
        raise ValueError(f"unknown workload {workload!r}")
    rng = make_rng(seed)
    if not fs.exists("/wt"):
        fs.mkdir("/wt", ctx)
    tables = []
    for i in range(ntables):
        path = f"/wt/table-{i}.wt"
        tables.append(fs.create(path, ctx) if not fs.exists(path)
                      else fs.open(path, ctx))

    if workload == "fillrandom":
        start_ns = ctx.clock.elapsed
        for i in range(ops):
            c = ctx.on_cpu(i % ctx.clock.num_cpus)
            t = tables[rng.randrange(ntables)]
            # 1KB values make every append land at an unaligned offset
            t.append(b"\x00" * value_size, c)
            if (i + 1) % checkpoint_every == 0:
                for t2 in tables:
                    t2.fsync(c)
        for t in tables:
            t.fsync(ctx)
        return WiredTigerResult(fs.name, workload, ops,
                                ctx.clock.elapsed - start_ns)

    # readrandom: populate first (not timed), then random reads
    for t in tables:
        if fs.getattr_ino(t.ino).size < ops * value_size // ntables:
            fill = ops * value_size // ntables
            chunk = b"\x00" * MIB
            pos = 0
            while pos < fill:
                t.append(chunk[:min(len(chunk), fill - pos)], ctx)
                pos += len(chunk)
        t.fsync(ctx)
    start_ns = ctx.clock.elapsed
    for i in range(ops):
        c = ctx.on_cpu(i % ctx.clock.num_cpus)
        t = tables[rng.randrange(ntables)]
        size = fs.getattr_ino(t.ino).size
        offset = rng.randrange(max(1, size - value_size))
        t.pread(offset, value_size, c)
    return WiredTigerResult(fs.name, workload, ops,
                            ctx.clock.elapsed - start_ns)
