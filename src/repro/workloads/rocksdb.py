"""RocksDB access-pattern model (memory-mapped reads and writes).

The paper runs RocksDB "configured to use memory-mapped reads and writes"
under YCSB (§5.4).  What shapes its I/O on a PM file system:

* a write-ahead log per memtable: sequential appends, fsync'd;
* SST files written at flush/compaction: large sequential writes into
  files created with big allocations, then memory-mapped for reads;
* reads: binary-search probes into memory-mapped SSTs — random
  ``memcpy`` reads whose cost depends on hugepage mappability of the SST
  files (the Table 2 page-fault counts).

The model keeps an in-DRAM index (key -> (sst file, offset)) and performs
the same file operations the engine would; it does not re-implement
compaction heuristics beyond size-triggered flush and leveled rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..clock import SimContext
from ..errors import NotFoundError
from ..mmu.mmap_region import MappedRegion
from ..params import KIB, MIB
from ..vfs.interface import FileSystem


@dataclass
class _SST:
    path: str
    ino: int
    region: Optional[MappedRegion]
    size: int


class RocksDBModel:
    """A RocksDB-shaped KV store over one simulated file system."""

    def __init__(self, fs: FileSystem, ctx: SimContext, *,
                 value_size: int = 1024,
                 memtable_bytes: int = 8 * MIB,
                 sst_bytes: int = 32 * MIB,
                 dir_path: str = "/rocksdb") -> None:
        self.fs = fs
        self.value_size = value_size
        self.memtable_bytes = memtable_bytes
        self.sst_bytes = sst_bytes
        self.dir = dir_path
        if not fs.exists(dir_path):
            fs.mkdir(dir_path, ctx)
        self._wal_seq = 0
        self._wal_path = f"{dir_path}/wal-0"
        self._wal_region, self._wal_file = self._open_wal(ctx)
        self._wal_fill = 0
        self._memtable: Dict[int, bytes] = {}
        self._memtable_size = 0
        self._ssts: List[_SST] = []
        self._index: Dict[int, Tuple[int, int]] = {}   # key -> (sst idx, off)
        self._sst_fill = 0
        self._cur_sst: Optional[_SST] = None
        self.flushes = 0

    # -- write path -----------------------------------------------------------

    #: memtable/bloom/index work per op (calibrated to §5.4 gaps)
    APP_NS_PER_OP = 1200.0

    def _open_wal(self, ctx: SimContext):
        """The WAL is memory-mapped too ("memory-mapped reads and
        writes", §5.4): sized to hold one memtable's worth of records."""
        f = self.fs.create(self._wal_path, ctx)
        wal_bytes = max(self.memtable_bytes // 4, 1 << 20)
        f.fallocate(0, wal_bytes, ctx)
        return f.mmap(ctx, length=wal_bytes), f

    def put(self, key: int, ctx: SimContext,
            value: Optional[bytes] = None) -> None:
        ctx.charge(self.APP_NS_PER_OP)
        record = value if value is not None else b"v" * self.value_size
        # WAL append through the mapping (sequential, 64B header+prefix)
        rec_len = 72
        if self._wal_fill + rec_len > self._wal_region.length:
            self._wal_fill = 0   # circular reuse within one memtable epoch
        self._wal_region.write(
            self._wal_fill,
            b"#" * rec_len if self.fs.track_data else b"\x00" * rec_len,
            ctx)
        self._wal_fill += rec_len
        self._memtable[key] = record
        self._memtable_size += len(record)
        if self._memtable_size >= self.memtable_bytes:
            self.flush(ctx)

    def flush(self, ctx: SimContext) -> None:
        """Memtable -> SST: one large file write + mmap for later reads."""
        if not self._memtable:
            return
        sst = self._ensure_sst(ctx)
        for key, record in sorted(self._memtable.items()):
            if self._sst_fill + len(record) > self.sst_bytes:
                sst = self._rotate_sst(ctx)
            sst.region.write(self._sst_fill, record, ctx)
            self._index[key] = (len(self._ssts) - 1, self._sst_fill)
            self._sst_fill += len(record)
        self._memtable.clear()
        self._memtable_size = 0
        self.flushes += 1
        # start a fresh WAL
        self._wal_seq += 1
        old = self._wal_path
        self._wal_region.unmap()
        self._wal_path = f"{self.dir}/wal-{self._wal_seq}"
        self._wal_region, self._wal_file = self._open_wal(ctx)
        self._wal_fill = 0
        self.fs.unlink(old, ctx)

    def _ensure_sst(self, ctx: SimContext) -> _SST:
        if self._cur_sst is None:
            self._cur_sst = self._new_sst(ctx)
        return self._cur_sst

    def _rotate_sst(self, ctx: SimContext) -> _SST:
        self._cur_sst = self._new_sst(ctx)
        self._sst_fill = 0
        return self._cur_sst

    def _new_sst(self, ctx: SimContext) -> _SST:
        path = f"{self.dir}/sst-{len(self._ssts)}"
        f = self.fs.create(path, ctx)
        f.fallocate(0, self.sst_bytes, ctx)   # large allocation request
        region = f.mmap(ctx, length=self.sst_bytes)
        sst = _SST(path=path, ino=f.ino, region=region, size=self.sst_bytes)
        self._ssts.append(sst)
        self._sst_fill = 0
        return sst

    # -- read path -------------------------------------------------------------

    def get(self, key: int, ctx: SimContext) -> bytes:
        ctx.charge(self.APP_NS_PER_OP)
        record = self._memtable.get(key)
        if record is not None:
            ctx.charge(180.0)   # skiplist probe in DRAM
            return record
        loc = self._index.get(key)
        if loc is None:
            raise NotFoundError(f"key {key}")
        sst_idx, offset = loc
        sst = self._ssts[sst_idx]
        assert sst.region is not None
        return sst.region.read(offset, self.value_size, ctx)

    def scan(self, key: int, count: int, ctx: SimContext) -> int:
        """Range scan (YCSB E): sequential reads from the containing SST."""
        found = 0
        k = key
        while found < count:
            try:
                self.get(k, ctx)
                found += 1
            except NotFoundError:
                break
            k += 1
        return found

    def update(self, key: int, ctx: SimContext) -> None:
        self.put(key, ctx)

    def close(self, ctx: SimContext) -> None:
        self.flush(ctx)
        for sst in self._ssts:
            if sst.region is not None:
                sst.region.unmap()
