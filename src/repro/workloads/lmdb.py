"""LMDB access-pattern model (paper §5.4, Fig 7b).

LMDB memory-maps one big database file.  The detail the paper hinges on:
"LMDB does on-demand allocations and zero-outs pages on page faults by
using ftruncate() instead of fallocate() for the allocations.  This
reduces space-amplification, but leads to costly page faults."

So the model: ``ftruncate`` the file to the map size (sparse — no blocks),
mmap it, and write pages through the mapping.  Every first touch of a page
faults; the file system allocates backing *inside the fault handler* —
4KB on the baselines (512 faults per 2MB), one aligned hugepage on WineFS.

``fillseqbatch`` (db_bench) batches sequential 1KB-value puts, which at
the file level is a sequential write stream through the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimContext
from ..params import KIB, MIB
from ..structures.stats import ops_per_sec
from ..vfs.interface import FileSystem


class LMDBModel:
    """A minimal LMDB-shaped store: one sparse-mapped data file."""

    PAGE = 4 * KIB

    def __init__(self, fs: FileSystem, ctx: SimContext, *,
                 map_size: int = 256 * MIB,
                 path: str = "/lmdb.mdb") -> None:
        self.fs = fs
        self.path = path
        f = fs.create(path, ctx)
        # the LMDB way: grow by ftruncate, never fallocate
        f.ftruncate(map_size, ctx)
        self.file = f
        self.region = f.mmap(ctx, length=map_size)
        self.map_size = map_size
        self._write_ptr = 2 * self.PAGE    # after the two meta pages
        self._meta_flip = 0

    #: user-space B-tree work per put (dilutes FS effects exactly as the
    #: real application does; calibrated so clean-FS gaps match §5.4)
    APP_NS_PER_PUT = 700.0

    def put_batch(self, values: int, value_size: int,
                  ctx: SimContext) -> None:
        """One committed write batch: data pages + meta-page flip."""
        payload = b"k" * value_size if self.fs.track_data else b"\x00" * value_size
        for _ in range(values):
            ctx.charge(self.APP_NS_PER_PUT)
            if self._write_ptr + value_size > self.map_size:
                raise RuntimeError("LMDB map full; raise map_size")
            self.region.write(self._write_ptr, payload, ctx)
            self._write_ptr += value_size
        # commit: flip the meta page (one small mmap write + fence)
        self._meta_flip ^= 1
        self.region.write(self._meta_flip * self.PAGE,
                          b"\x01" * 64 if self.fs.track_data else b"\x00" * 64,
                          ctx)

    def close(self) -> None:
        self.region.unmap()


@dataclass
class LMDBResult:
    fs_name: str
    ops: int
    elapsed_ns: float
    page_faults_4k: int
    page_faults_2m: int

    @property
    def kops_per_sec(self) -> float:
        return ops_per_sec(self.ops, self.elapsed_ns) / 1e3

    @property
    def page_faults(self) -> int:
        return self.page_faults_4k + self.page_faults_2m


def run_fillseqbatch(fs: FileSystem, ctx: SimContext, *,
                     keys: int = 100_000, value_size: int = 1024,
                     batch: int = 1000, map_size: int = 256 * MIB,
                     path: str = "/lmdb.mdb") -> LMDBResult:
    """db_bench fillseqbatch: batched sequential 1KB-value inserts (§5.4)."""
    db = LMDBModel(fs, ctx, map_size=map_size, path=path)
    f4, f2 = ctx.counters.page_faults_4k, ctx.counters.page_faults_2m
    start_ns = ctx.now
    done = 0
    while done < keys:
        n = min(batch, keys - done)
        db.put_batch(n, value_size, ctx)
        done += n
    result = LMDBResult(
        fs_name=fs.name, ops=keys, elapsed_ns=ctx.now - start_ns,
        page_faults_4k=ctx.counters.page_faults_4k - f4,
        page_faults_2m=ctx.counters.page_faults_2m - f2)
    db.close()
    return result
