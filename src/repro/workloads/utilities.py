"""Utility workload models (paper §5.5, "Other utilities").

The paper evaluates kernel compilation, tar, and rsync and reports that
"Linux kernel compilation ... takes similar time across all PM file
systems" — utility workloads are CPU-bound or read-dominated, so the file
system barely matters.  These models reproduce the access patterns:

* **kernel compile**: read many small sources, write objects, link a few
  large outputs; dominated by per-file compile CPU time;
* **tar**: read a tree sequentially, append one large archive;
* **rsync**: walk a source tree, copy to a destination tree in 128KB
  chunks, carrying xattrs (which is how WineFS propagates alignment,
  §3.6 — see :mod:`tests.test_integration` for that property).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimContext
from ..errors import ReproError
from ..params import KIB, MIB
from ..rng import make_rng
from ..structures.stats import ops_per_sec
from ..vfs.interface import FileSystem

#: per-translation-unit compile time dominates kernel builds
_COMPILE_NS_PER_FILE = 60_000.0
#: rsync per-file metadata chatter (stat, checksum negotiation)
_RSYNC_FILE_NS = 2_000.0


@dataclass
class UtilityResult:
    fs_name: str
    utility: str
    files: int
    bytes_moved: int
    elapsed_ns: float

    @property
    def seconds(self) -> float:
        return self.elapsed_ns / 1e9


def _build_tree(fs: FileSystem, ctx: SimContext, root: str, nfiles: int,
                mean_size: int, seed: int) -> list:
    rng = make_rng(seed)
    if not fs.exists(root):
        fs.mkdir(root, ctx)
    paths = []
    for i in range(nfiles):
        d = f"{root}/d{i % 8}"
        if not fs.exists(d):
            fs.mkdir(d, ctx)
        path = f"{d}/s{i}"
        f = fs.create(path, ctx)
        size = max(256, int(rng.expovariate(1.0 / mean_size)))
        f.append(b"\x00" * size, ctx)
        f.close()
        paths.append(path)
    return paths


def run_kernel_compile(fs: FileSystem, ctx: SimContext, *,
                       nfiles: int = 300, seed: int = 0) -> UtilityResult:
    """Read sources, emit objects, link: compile CPU time dominates."""
    sources = _build_tree(fs, ctx, "/src", nfiles, 8 * KIB, seed)
    start_ns = ctx.clock.elapsed
    moved = 0
    for i, path in enumerate(sources):
        c = ctx.on_cpu(i % ctx.clock.num_cpus)
        data = fs.read_file(path, c)
        c.charge(_COMPILE_NS_PER_FILE)
        obj = fs.create(path + ".o", c)
        obj.append(b"\x00" * max(1, len(data) * 2), c)
        obj.close()
        moved += len(data) * 3
    # link a handful of large outputs
    for j in range(4):
        out = fs.create(f"/src/vmlinux{j}", ctx)
        out.append(b"\x00" * (4 * MIB), ctx)
        out.fsync(ctx)
        moved += 4 * MIB
    return UtilityResult(fs.name, "kernel-compile", nfiles, moved,
                         ctx.clock.elapsed - start_ns)


def run_tar(fs: FileSystem, ctx: SimContext, *,
            nfiles: int = 300, seed: int = 0) -> UtilityResult:
    """Sequentially read a tree and append one large archive."""
    sources = _build_tree(fs, ctx, "/tree", nfiles, 16 * KIB, seed)
    start_ns = ctx.clock.elapsed
    archive = fs.create("/tree.tar", ctx)
    moved = 0
    for path in sources:
        data = fs.read_file(path, ctx)
        header = b"\x00" * 512
        archive.append(header + data, ctx)
        moved += len(data) + 512
    archive.fsync(ctx)
    return UtilityResult(fs.name, "tar", nfiles, moved,
                         ctx.clock.elapsed - start_ns)


def run_rsync(fs: FileSystem, ctx: SimContext, *,
              nfiles: int = 300, seed: int = 0) -> UtilityResult:
    """Walk a source tree and copy it to a destination tree in chunks."""
    sources = _build_tree(fs, ctx, "/rsrc", nfiles, 16 * KIB, seed)
    start_ns = ctx.clock.elapsed
    fs.mkdir("/rdst", ctx)
    moved = 0
    for path in sources:
        ctx.charge(_RSYNC_FILE_NS)
        src = fs.open(path, ctx)
        size = fs.getattr_ino(src.ino).size
        dst_dir = "/rdst/" + path.split("/")[2]
        if not fs.exists(dst_dir):
            fs.mkdir(dst_dir, ctx)
        dst = fs.create(dst_dir + "/" + path.split("/")[-1], ctx)
        # carry xattrs, as rsync -X does (propagates WineFS alignment)
        try:
            hint = fs.getxattr(path, "user.winefs.aligned", ctx)
            fs.setxattr(dst.path, "user.winefs.aligned", hint, ctx)
        except ReproError:
            pass
        pos = 0
        while pos < size:
            take = min(128 * KIB, size - pos)
            dst.pwrite(pos, src.pread(pos, take, ctx), ctx)
            pos += take
        # rsync does not fsync per file by default
        moved += size
    return UtilityResult(fs.name, "rsync", nfiles, moved,
                         ctx.clock.elapsed - start_ns)


UTILITIES = {
    "kernel-compile": run_kernel_compile,
    "tar": run_tar,
    "rsync": run_rsync,
}
