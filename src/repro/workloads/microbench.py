"""Read/write microbenchmarks (Figs 1 and 6).

Two access modes:

* **mmap** (§5.3, Fig 6a): memory-map one large file and ``memcpy`` in
  sequential or random order.  Hugepage mappability of the file drives the
  fault count and therefore the bandwidth — the whole point of the paper.
* **POSIX** (Fig 6b/c): 4KB ``read``/``write`` system calls, sequential or
  random, "with a fsync() after every 10 operations".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimContext
from ..params import KIB, MIB
from ..rng import make_rng
from ..structures.stats import throughput_mb_s
from ..vfs.interface import FileSystem


@dataclass
class MicrobenchResult:
    fs_name: str
    mode: str            # "mmap" or "posix"
    pattern: str         # "seq-write", "rand-read", ...
    bytes_moved: int
    elapsed_ns: float
    page_faults_4k: int = 0
    page_faults_2m: int = 0
    tlb_misses: int = 0
    fault_ns: float = 0.0

    @property
    def throughput_mb_s(self) -> float:
        return throughput_mb_s(self.bytes_moved, self.elapsed_ns)

    @property
    def fault_time_fraction(self) -> float:
        return self.fault_ns / self.elapsed_ns if self.elapsed_ns else 0.0


def _fresh_counters(ctx: SimContext):
    from ..clock import EventCounters
    snap = ctx.counters
    return snap


def mmap_rw_benchmark(fs: FileSystem, ctx: SimContext, *,
                      file_size: int = 256 * MIB,
                      io_size: int = 2 * MIB,
                      total_bytes: int = 0,
                      pattern: str = "seq-write",
                      path: str = "/mmapbench",
                      seed: int = 0,
                      create: str = "populate") -> MicrobenchResult:
    """Create (or reuse) one large file, mmap it, and memcpy over it.

    ``create`` selects how the file comes to exist (all untimed):

    * ``"populate"`` (default, the §5.3 setup): written once with large
      appends, so it is part of the utilized capacity and no file system
      zeroes pages at fault time;
    * ``"fallocate"``: one large allocation, unwritten (PM pool style);
    * ``"ftruncate"``: sparse, demand-allocated at fault time (LMDB
      style).

    Faults for the *mapping* still happen in the measured critical path,
    as in Fig 1/6a.
    """
    if pattern not in ("seq-write", "rand-write", "seq-read", "rand-read"):
        raise ValueError(f"unknown pattern {pattern}")
    if create not in ("populate", "fallocate", "ftruncate"):
        raise ValueError(f"unknown create mode {create}")
    if total_bytes <= 0:
        total_bytes = file_size
    if not fs.exists(path):
        f = fs.create(path, ctx)
        if create == "fallocate":
            f.fallocate(0, file_size, ctx)
        elif create == "ftruncate":
            f.ftruncate(file_size, ctx)
        else:
            chunk_size = 4 * MIB
            pos = 0
            while pos < file_size:
                take = min(chunk_size, file_size - pos)
                f.append_zeros(take, ctx)
                pos += take
            f.fsync(ctx)
    else:
        f = fs.open(path, ctx)
    region = f.mmap(ctx, length=file_size)
    rng = make_rng(seed)
    writing = pattern.endswith("write")
    sequential = pattern.startswith("seq")
    chunks = max(1, total_bytes // io_size)
    payload = b"\xab" * io_size if writing and fs.track_data else b""

    start_ns = ctx.now
    c0_f4, c0_f2 = ctx.counters.page_faults_4k, ctx.counters.page_faults_2m
    c0_tlb, c0_fns = ctx.counters.tlb_misses, ctx.counters.fault_ns
    offset = 0
    span = file_size - io_size
    for i in range(chunks):
        if sequential:
            offset = (i * io_size) % (span + 1 if span else 1)
        else:
            offset = rng.randrange(0, span + 1) if span else 0
        if writing:
            if fs.track_data:
                region.write(offset, payload, ctx)
            else:
                region.write_zeros(offset, io_size, ctx)
        else:
            region.read(offset, io_size, ctx)
    region.unmap()
    return MicrobenchResult(
        fs_name=fs.name, mode="mmap", pattern=pattern,
        bytes_moved=chunks * io_size,
        elapsed_ns=ctx.now - start_ns,
        page_faults_4k=ctx.counters.page_faults_4k - c0_f4,
        page_faults_2m=ctx.counters.page_faults_2m - c0_f2,
        tlb_misses=ctx.counters.tlb_misses - c0_tlb,
        fault_ns=ctx.counters.fault_ns - c0_fns,
    )


def posix_rw_benchmark(fs: FileSystem, ctx: SimContext, *,
                       file_size: int = 64 * MIB,
                       io_size: int = 4 * KIB,
                       total_bytes: int = 0,
                       pattern: str = "seq-write",
                       path: str = "/posixbench",
                       fsync_every: int = 10,
                       seed: int = 0) -> MicrobenchResult:
    """4KB syscalls; fsync every *fsync_every* ops (paper Fig 6 setup).

    Write patterns start from an appended file and overwrite in place, as
    §5.3 describes ("We start with an empty file and append data at 4KB
    granularity ... perform reads and in-place writes at 4KB
    granularities").
    """
    if pattern not in ("seq-write", "rand-write", "seq-read", "rand-read",
                       "append"):
        raise ValueError(f"unknown pattern {pattern}")
    if total_bytes <= 0:
        total_bytes = file_size
    rng = make_rng(seed)
    ops = max(1, total_bytes // io_size)
    payload = b"\xcd" * io_size

    if pattern == "append":
        f = fs.create(path, ctx) if not fs.exists(path) else fs.open(path, ctx)
        start_ns = ctx.now
        for i in range(ops):
            f.append(payload, ctx)
            if fsync_every and (i + 1) % fsync_every == 0:
                f.fsync(ctx)
        f.fsync(ctx)
        return MicrobenchResult(fs_name=fs.name, mode="posix",
                                pattern=pattern, bytes_moved=ops * io_size,
                                elapsed_ns=ctx.now - start_ns)

    # pre-populate by appending (not timed)
    if not fs.exists(path):
        f = fs.create(path, ctx)
        chunk = 256 * KIB
        pos = 0
        while pos < file_size:
            f.append_zeros(min(chunk, file_size - pos), ctx)
            pos += chunk
        f.fsync(ctx)
    else:
        f = fs.open(path, ctx)

    writing = pattern.endswith("write")
    sequential = pattern.startswith("seq")
    nblocks = file_size // io_size
    start_ns = ctx.now
    for i in range(ops):
        block = (i % nblocks) if sequential else rng.randrange(nblocks)
        offset = block * io_size
        if writing:
            f.pwrite(offset, payload, ctx)
            if fsync_every and (i + 1) % fsync_every == 0:
                f.fsync(ctx)
        else:
            f.pread(offset, io_size, ctx)
    if writing:
        f.fsync(ctx)
    return MicrobenchResult(fs_name=fs.name, mode="posix", pattern=pattern,
                            bytes_moved=ops * io_size,
                            elapsed_ns=ctx.now - start_ns)
