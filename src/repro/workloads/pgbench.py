"""PostgreSQL pgbench read-write model (paper §5.5, Fig 9b/e; TPC-B-like).

What shapes PostgreSQL's I/O on a PM file system:

* WAL: sequential appends + fsync per transaction group;
* table heap files: random 8KB page overwrites (the overwrite path where
  NOVA pays for log-entry add/invalidate + DRAM index updates and WineFS
  just journals the inode, §5.5);
* occasional checkpoint: a burst of page writes + fsync.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimContext
from ..params import KIB, MIB
from ..rng import make_rng
from ..structures.stats import ops_per_sec
from ..vfs.interface import FileSystem

_PAGE = 8 * KIB


@dataclass
class PgbenchResult:
    fs_name: str
    transactions: int
    elapsed_ns: float

    @property
    def tps(self) -> float:
        return ops_per_sec(self.transactions, self.elapsed_ns)


def run_pgbench(fs: FileSystem, ctx: SimContext, *,
                transactions: int = 2000,
                table_bytes: int = 64 * MIB,
                checkpoint_every: int = 500,
                group_commit: int = 8,
                seed: int = 0) -> PgbenchResult:
    """TPC-B-ish: each transaction updates 3 random pages + 1 WAL record."""
    rng = make_rng(seed)
    if not fs.exists("/pgdata"):
        fs.mkdir("/pgdata", ctx)
    # build the table heap (not timed)
    table = fs.create("/pgdata/accounts", ctx)
    # PostgreSQL extends heap files incrementally (sub-hugepage chunks),
    # so the heap is hole-backed on WineFS and overwrites take the CoW
    # path — §5.5: "WineFS only modifies the inode in a journal
    # transaction to point to the newly allocated blocks"
    chunk = b"\x00" * (512 * KIB)
    pos = 0
    while pos < table_bytes:
        table.append(chunk, ctx)
        pos += len(chunk)
    table.fsync(ctx)
    wal = fs.create("/pgdata/wal", ctx)
    npages = table_bytes // _PAGE

    start_ns = ctx.clock.elapsed
    dirty: set = set()
    for t in range(transactions):
        c = ctx.on_cpu(t % ctx.clock.num_cpus)
        # WAL record for the transaction
        wal.append(b"\x00" * 600, c)
        if (t + 1) % group_commit == 0:
            wal.fsync(c)
        # update accounts / tellers / branches pages
        for _ in range(3):
            page = rng.randrange(npages)
            table.pwrite(page * _PAGE, b"\x00" * _PAGE, c)
            dirty.add(page)
        if (t + 1) % checkpoint_every == 0:
            table.fsync(c)
            dirty.clear()
    wal.fsync(ctx)
    table.fsync(ctx)
    return PgbenchResult(fs_name=fs.name, transactions=transactions,
                         elapsed_ns=ctx.clock.elapsed - start_ns)
