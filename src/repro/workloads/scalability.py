"""Scalability microbenchmark (paper §5.6, Fig 10).

"we create a file, append at 4KB granularities, fsync, and unlink in each
thread."  Each thread runs on its own logical CPU (up to the machine's CPU
count; beyond that threads share CPUs, which is also where the paper's
curves plateau due to VFS-layer bottlenecks).

The file systems differentiate on exactly the paths this exercises:
per-CPU journals and per-inode logs scale; JBD2/xfs-log stop-the-world
fsync serializes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SimContext
from ..params import KIB
from ..structures.stats import ops_per_sec
from ..vfs.interface import FileSystem

#: per-op VFS overhead that grows with runnable threads beyond the
#: lock-free paths (dentry cache / inode cache contention): this is the
#: paper's ">16 threads plateau ... due to scalability bottlenecks in the
#: VFS layer"
_VFS_CONTENTION_NS = 90.0


@dataclass
class ScalabilityResult:
    fs_name: str
    threads: int
    ops: int
    elapsed_ns: float

    @property
    def kops_per_sec(self) -> float:
        return ops_per_sec(self.ops, self.elapsed_ns) / 1e3


def run_scalability(fs: FileSystem, ctx: SimContext, *,
                    threads: int, ops_per_thread: int = 200,
                    appends_per_file: int = 4,
                    seed: int = 0) -> ScalabilityResult:
    """create/append-4KB/fsync/unlink per thread (one op = one full cycle)."""
    if threads < 1:
        raise ValueError("need at least one thread")
    num_cpus = ctx.clock.num_cpus
    base = "/scal"
    if not fs.exists(base):
        fs.mkdir(base, ctx)
    for t in range(threads):
        # per-thread working directories avoid measuring only the shared
        # parent-dir lock (as filebench's fileset does)
        d = f"{base}/t{t}"
        if not fs.exists(d):
            fs.mkdir(d, ctx)

    start_ns = ctx.clock.elapsed
    payload = b"\x00" * (4 * KIB)
    for i in range(ops_per_thread):
        for t in range(threads):
            c = ctx.on_cpu(t % num_cpus)
            if threads > num_cpus:
                # oversubscribed CPUs: runnable threads contend in the VFS
                c.charge(_VFS_CONTENTION_NS * (threads / num_cpus))
            path = f"{base}/t{t}/f{i}"
            f = fs.create(path, c)
            for _ in range(appends_per_file):
                f.append(payload, c)
            f.fsync(c)
            f.close()
            fs.unlink(path, c)
    total_ops = ops_per_thread * threads
    return ScalabilityResult(fs_name=fs.name, threads=threads,
                             ops=total_ops,
                             elapsed_ns=ctx.clock.elapsed - start_ns)
