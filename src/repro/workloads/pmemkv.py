"""PmemKV access-pattern model (paper §5.4, Fig 7c).

PmemKV (cmap engine) "creates a PM pool using fallocate(), and keeps
extending the pool as it gets used up by creating more files and
allocating them via fallocate()" — 128MB memory-mapped pool files.

The page-fault asymmetry the paper measures: NOVA zeroes pages at
``fallocate`` time (cheap faults), ext4-DAX zeroes inside the fault
handler (expensive faults); WineFS both zeroes at allocation and maps
hugepages, so it takes ~512x fewer faults.

``fillseq`` inserts 4KB values sequentially through the mappings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..clock import SimContext
from ..mmu.mmap_region import MappedRegion
from ..params import KIB, MIB
from ..structures.stats import ops_per_sec
from ..vfs.interface import FileSystem


class PmemKVModel:
    """cmap-engine-shaped store: a chain of 128MB fallocate'd pool files."""

    POOL_BYTES = 128 * MIB

    def __init__(self, fs: FileSystem, ctx: SimContext,
                 dir_path: str = "/pmemkv",
                 pool_bytes: int = None) -> None:
        self.fs = fs
        self.dir = dir_path
        if pool_bytes is not None:
            self.POOL_BYTES = pool_bytes
        if not fs.exists(dir_path):
            fs.mkdir(dir_path, ctx)
        self._pools: List[MappedRegion] = []
        self._fill = 0
        self._new_pool(ctx)

    def _new_pool(self, ctx: SimContext) -> None:
        path = f"{self.dir}/pool-{len(self._pools)}"
        f = self.fs.create(path, ctx)
        f.fallocate(0, self.POOL_BYTES, ctx)
        self._pools.append(f.mmap(ctx, length=self.POOL_BYTES))
        self._fill = 0

    #: cmap hashing/locking work per put (calibrated to §5.4 clean gaps)
    APP_NS_PER_PUT = 900.0

    def put(self, value_size: int, ctx: SimContext) -> None:
        ctx.charge(self.APP_NS_PER_PUT)
        if self._fill + value_size > self.POOL_BYTES:
            self._new_pool(ctx)
        payload = b"p" * value_size if self.fs.track_data \
            else b"\x00" * value_size
        self._pools[-1].write(self._fill, payload, ctx)
        self._fill += value_size

    def close(self) -> None:
        for pool in self._pools:
            pool.unmap()


@dataclass
class PmemKVResult:
    fs_name: str
    ops: int
    elapsed_ns: float
    page_faults: int

    @property
    def kops_per_sec(self) -> float:
        return ops_per_sec(self.ops, self.elapsed_ns) / 1e3


def run_fillseq(fs: FileSystem, ctx: SimContext, *,
                keys: int = 50_000, value_size: int = 4 * KIB,
                dir_path: str = "/pmemkv",
                pool_bytes: int = None) -> PmemKVResult:
    """The write-only fillseq workload: sequential 4KB-value inserts."""
    kv = PmemKVModel(fs, ctx, dir_path=dir_path, pool_bytes=pool_bytes)
    f0 = ctx.counters.page_faults
    start_ns = ctx.now
    for _ in range(keys):
        kv.put(value_size, ctx)
    result = PmemKVResult(fs_name=fs.name, ops=keys,
                          elapsed_ns=ctx.now - start_ns,
                          page_faults=ctx.counters.page_faults - f0)
    kv.close()
    return result
