"""P-ART: persistent adaptive radix tree lookups (paper §5.4, Figs 4 & 8).

P-ART "creates a PM pool using the vmmalloc library and pre-faults this
region during initialization to avoid page faults in the critical path".
Inserts set up the page tables; lookups then hit a hot set of 125K unique
keys in random order.  With base pages the lookups thrash the TLB and the
page walks evict the hot keys from the LLC — the 10x median-latency gap of
Fig 4 and the 56%-lower-median result of Fig 8.

The model allocates the pool file (large fallocate), pre-faults the
mapping, and issues dependent 64B probes against hot-set offsets through
the shared TLB + LLC models, recording per-lookup latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..clock import SimContext
from ..mmu.cache import CacheModel
from ..mmu.tlb import TLB
from ..params import MIB
from ..rng import make_rng
from ..structures.stats import LatencyRecorder, Summary
from ..vfs.interface import FileSystem


#: (seed, hot_keys, range, stride) -> (offset table, RNG state after draw);
#: the table is deterministic in its key, so repeat runs skip the 125K draws
_OFFSET_CACHE: dict = {}


class PARTModel:
    """Pool + pre-faulted mapping + hot-set probe harness."""

    def __init__(self, fs: FileSystem, ctx: SimContext, *,
                 pool_bytes: int = 256 * MIB,
                 hot_keys: int = 125_000,
                 key_stride: int = 64,
                 path: str = "/part.pool",
                 seed: int = 0) -> None:
        self.fs = fs
        f = fs.create(path, ctx)
        f.fallocate(0, pool_bytes, ctx)
        machine = fs.machine
        self.tlb = TLB(machine.tlb_4k_entries, machine.tlb_2m_entries)
        # the hot set: 125K keys x one cacheline each
        self.cache = CacheModel(machine, hot_set_bytes=hot_keys * key_stride,
                                seed=seed)
        self.region = f.mmap(ctx, length=pool_bytes,
                             tlb=self.tlb, cache=self.cache)
        self.region.prefault(ctx)
        self.pool_bytes = pool_bytes
        self.hot_keys = hot_keys
        self.key_stride = key_stride
        self._rng = make_rng(seed)
        # hot keys spread over the whole pool (radix-tree nodes are not
        # contiguous), so base-page TLB reach is exceeded
        span = pool_bytes - key_stride
        cache_key = (seed, hot_keys, span // key_stride, key_stride)
        cached = _OFFSET_CACHE.get(cache_key)
        if cached is None:
            self._offsets = [self._rng.randrange(0, span // key_stride)
                             * key_stride for _ in range(hot_keys)]
            _OFFSET_CACHE[cache_key] = (self._offsets, self._rng.getstate())
        else:
            # same seed + geometry: reuse the table and fast-forward the
            # RNG to the state it had after drawing it
            self._offsets, state = cached
            self._rng.setstate(state)
        # randrange(n) for one positive int n is exactly _randbelow(n);
        # binding it skips the argument normalization in the probe loop
        self._randbelow = self._rng._randbelow

    def lookup(self, ctx: SimContext) -> float:
        """One random hot-key lookup; returns latency in ns."""
        offset = self._offsets[self._randbelow(self.hot_keys)]
        return self.region.read_element(offset, ctx)

    def close(self) -> None:
        self.region.unmap()


@dataclass
class PARTResult:
    fs_name: str
    lookups: int
    summary: Summary
    cdf: List
    tlb_miss_rate: float
    llc_miss_rate: float


def run_part_lookups(fs: FileSystem, ctx: SimContext, *,
                     lookups: int = 50_000,
                     pool_bytes: int = 256 * MIB,
                     hot_keys: int = 125_000,
                     seed: int = 0,
                     path: str = "/part.pool") -> PARTResult:
    """Insert-then-lookup per §5.4: pre-faulted pool, random hot-set reads."""
    model = PARTModel(fs, ctx, pool_bytes=pool_bytes, hot_keys=hot_keys,
                      seed=seed, path=path)
    recorder = LatencyRecorder()
    for _ in range(lookups):
        recorder.record(model.lookup(ctx))
    result = PARTResult(
        fs_name=fs.name, lookups=lookups,
        summary=recorder.summary(),
        cdf=recorder.cdf(50),
        tlb_miss_rate=model.tlb.miss_rate,
        llc_miss_rate=model.cache.miss_rate)
    model.close()
    return result
