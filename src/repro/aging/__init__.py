"""File-system aging, modeled on Geriatrix (Kadekodi et al., ATC 2018).

The paper ages every evaluated file system with Geriatrix under the
Agrawal profile (165TB of create/delete churn on a 500GB partition, 56% of
capacity in >=2MB files) before measuring (§5.1).  This package reproduces
that process at allocator granularity: files are created with sizes drawn
from a profile and deleted at random until a target churn volume has
passed through the allocator at a target utilization.
"""

from .profiles import (AgingProfile, AGRAWAL, PROFILES, WANG_HPC,
                       uniform_profile)
from .geriatrix import Geriatrix, AgingResult
from .fragmentation import fragmentation_report, FragmentationReport

__all__ = ["AgingProfile", "AGRAWAL", "PROFILES", "WANG_HPC",
           "uniform_profile", "Geriatrix", "AgingResult",
           "fragmentation_report", "FragmentationReport"]
