"""Aging profiles: file-size distributions used to drive churn.

The paper uses two profiles:

* **Agrawal** (Agrawal et al., TOS 2009): "a mix of small (< 2MB) and
  large (>= 2MB) files.  56% of the total capacity is occupied by large
  files while the rest is occupied by small files" (§5.1).
* **Wang-HPC** (Wang, 2012): an HPC-site profile under which free-space
  fragmentation is *worse* — §4 reports that at 50% utilization only 28%
  of ext4-DAX free space is aligned versus >90% for WineFS.

Sizes are drawn from two lognormal branches (small vs large) with the
large-branch probability tuned so the expected capacity share of large
files matches the profile.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..params import KIB, MIB

LARGE_FILE_THRESHOLD = 2 * MIB


@dataclass(frozen=True)
class AgingProfile:
    """A file-size sampler.

    * ``small_median``/``small_sigma`` — lognormal parameters (bytes) of the
      small-file branch, truncated to [1KB, 2MB);
    * ``large_median``/``large_sigma`` — same for the large branch,
      truncated to [2MB, ``large_cap``];
    * ``p_large`` — probability a created file is large;
    * ``dir_fanout`` — mean files per directory during aging.
    """

    name: str
    small_median: float
    small_sigma: float
    large_median: float
    large_sigma: float
    p_large: float
    large_cap: int = 256 * MIB
    dir_fanout: int = 100

    def sample_size(self, rng: random.Random) -> int:
        """Draw one file size in bytes."""
        if rng.random() < self.p_large:
            mu = math.log(self.large_median)
            size = rng.lognormvariate(mu, self.large_sigma)
            size = min(max(size, LARGE_FILE_THRESHOLD), self.large_cap)
        else:
            mu = math.log(self.small_median)
            size = rng.lognormvariate(mu, self.small_sigma)
            size = min(max(size, 1 * KIB), LARGE_FILE_THRESHOLD - 1)
        return int(size)

    def expected_large_capacity_share(self, rng: random.Random,
                                      samples: int = 20000) -> float:
        """Monte-Carlo estimate of the capacity share held by large files."""
        small = large = 0
        for _ in range(samples):
            s = self.sample_size(rng)
            if s >= LARGE_FILE_THRESHOLD:
                large += s
            else:
                small += s
        total = small + large
        return large / total if total else 0.0


#: Agrawal et al. profile: 56% of capacity in >=2MB files (§5.1).  With
#: these branch parameters the large-capacity share lands at ~0.56.
AGRAWAL = AgingProfile(
    name="agrawal",
    small_median=64 * KIB, small_sigma=1.6,
    large_median=6 * MIB, large_sigma=0.9,
    p_large=0.029,
)

#: Wang HPC-site profile: a heavier tail of very large checkpoint-style
#: files plus masses of tiny files — the mix §4 reports as fragmenting
#: ext4-DAX hardest.
WANG_HPC = AgingProfile(
    name="wang-hpc",
    small_median=16 * KIB, small_sigma=2.0,
    large_median=32 * MIB, large_sigma=1.1,
    p_large=0.02,
    large_cap=512 * MIB,
)


#: the named profiles CLI surfaces (``--profile``) accept; fleet corpus
#: cells carry the *name* across process boundaries and resolve it here
PROFILES = {"agrawal": AGRAWAL, "wang-hpc": WANG_HPC}


def uniform_profile(lo: int, hi: int, name: str = "uniform") -> AgingProfile:
    """A degenerate profile for tests: sizes ~uniform-ish in [lo, hi].

    Implemented as a tight lognormal around the geometric mean.
    """
    if not 0 < lo <= hi:
        raise ValueError("need 0 < lo <= hi")
    median = math.sqrt(lo * hi)
    if hi < LARGE_FILE_THRESHOLD:
        return AgingProfile(name=name, small_median=median, small_sigma=0.5,
                            large_median=4 * MIB, large_sigma=0.1,
                            p_large=0.0)
    return AgingProfile(name=name, small_median=256 * KIB, small_sigma=0.1,
                        large_median=median, large_sigma=0.5, p_large=1.0,
                        large_cap=hi)
