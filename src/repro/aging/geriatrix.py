"""The aging engine (Geriatrix-style).

Two phases, following the tool the paper uses (§5.1):

1. **fill** — create files with profile-drawn sizes until the target
   utilization is reached;
2. **churn** — cycles of create/delete/update between a high and a low
   watermark until the requested write volume has passed through the
   allocator (the paper's "165TB of write activity", scaled).

Two details make the churn fragment like real aging:

* **interleaved creation streams**: several files grow concurrently, one
  2MB extension at a time, so neighbouring allocations belong to
  different files (real systems always have concurrent writers).  When
  files later die, the survivors pepper the free space.
* **in-place updates** on a slice of the volume, which relocate blocks on
  CoW/log-structured designs (§2.3: aging is "file creations, deletions
  and updates").

Files are allocated via ``fallocate`` on ``track_data=False`` file systems
so aging by tens of partition-volumes stays fast — fragmentation depends
only on the allocator, never on file contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..clock import SimContext
from ..errors import NoSpaceError
from ..params import MIB
from ..rng import make_rng
from ..vfs.interface import FileSystem
from .profiles import AgingProfile

#: one file-growth step; 2MB keeps large files hugepage-eligible on every
#: file system (Geriatrix extends files with large writes)
_GROW_CHUNK = 2 * MIB


@dataclass
class AgingResult:
    """What the ager did and where it left the file system."""

    files_created: int = 0
    files_deleted: int = 0
    bytes_written: int = 0
    bytes_deleted: int = 0
    final_utilization: float = 0.0
    failed_allocations: int = 0
    live_files: int = 0


class _Stream:
    """One in-progress file creation."""

    __slots__ = ("path", "handle", "target", "written")

    def __init__(self, path: str, handle, target: int) -> None:
        self.path = path
        self.handle = handle
        self.target = target
        self.written = 0


class Geriatrix:
    """Ages one mounted file system.

    Parameters
    ----------
    fs:
        The mounted file system to age.
    profile:
        File-size distribution.
    target_utilization:
        Fraction of data blocks live when aging finishes (the paper uses
        0.75 for the application experiments, sweeps for Fig 1/3).
    seed:
        Deterministic RNG seed.
    concurrency:
        How many files grow simultaneously (interleaving degree).
    """

    def __init__(self, fs: FileSystem, profile: AgingProfile,
                 target_utilization: float, seed: int = 0,
                 max_file_bytes: Optional[int] = None,
                 concurrency: int = 8) -> None:
        if not 0.0 < target_utilization < 1.0:
            raise ValueError("target utilization must be in (0, 1)")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.fs = fs
        self.profile = profile
        self.target = target_utilization
        self.rng = make_rng(seed)
        self.concurrency = concurrency
        stats = fs.statfs()
        partition = stats.total_blocks * stats.block_size
        # a single file never exceeds ~1/32 of the partition, so scaled-down
        # partitions keep the paper's many-files dynamics
        self.max_file_bytes = max_file_bytes if max_file_bytes is not None \
            else max(partition // 32, 4 * MIB)
        self._files: List[str] = []      # finalized aging files
        self._sizes: dict = {}
        self._streams: List[_Stream] = []
        self._counter = 0
        self._dir_counter = 0
        self._cur_dir: Optional[str] = None
        self._dir_population = 0

    # -- helpers ---------------------------------------------------------------

    def _utilization(self) -> float:
        return self.fs.utilization()

    def _next_dir(self, ctx: SimContext) -> str:
        if self._cur_dir is None or \
                self._dir_population >= self.profile.dir_fanout:
            self._dir_counter += 1
            self._cur_dir = f"/aging{self._dir_counter}"
            self.fs.mkdir(self._cur_dir, ctx)
            self._dir_population = 0
        self._dir_population += 1
        return self._cur_dir

    def _step_create(self, ctx: SimContext, result: AgingResult) -> int:
        """Advance interleaved creation by one chunk; returns bytes
        allocated (0 on allocation failure)."""
        if len(self._streams) < self.concurrency:
            size = min(self.profile.sample_size(self.rng),
                       self.max_file_bytes)
            self._counter += 1
            path = f"{self._next_dir(ctx)}/f{self._counter}"
            handle = self.fs.create(path, ctx)
            self._streams.append(_Stream(path, handle, size))
        idx = self.rng.randrange(len(self._streams))
        stream = self._streams[idx]
        take = min(_GROW_CHUNK, stream.target - stream.written)
        try:
            stream.handle.fallocate(stream.written, take, ctx)
        except NoSpaceError:
            result.failed_allocations += 1
            self._retire_stream(idx, result)
            return 0
        stream.written += take
        result.bytes_written += take
        if stream.written >= stream.target:
            self._retire_stream(idx, result)
        return take

    def _retire_stream(self, idx: int, result: AgingResult) -> None:
        stream = self._streams[idx]
        self._streams[idx] = self._streams[-1]
        self._streams.pop()
        stream.handle.close()
        if stream.written > 0:
            self._files.append(stream.path)
            self._sizes[stream.path] = stream.written
            result.files_created += 1

    def _flush_streams(self, result: AgingResult) -> None:
        while self._streams:
            self._retire_stream(0, result)

    def _delete_one(self, ctx: SimContext, result: AgingResult) -> None:
        if not self._files:
            return
        idx = self.rng.randrange(len(self._files))
        path = self._files[idx]
        self._files[idx] = self._files[-1]
        self._files.pop()
        self.fs.unlink(path, ctx)
        result.files_deleted += 1
        result.bytes_deleted += self._sizes.pop(path, 0)

    # -- phases -----------------------------------------------------------------

    def fill(self, ctx: SimContext, result: Optional[AgingResult] = None
             ) -> AgingResult:
        """Create files until the target utilization is reached."""
        result = result if result is not None else AgingResult()
        misses = 0
        while self._utilization() < self.target and misses < 50:
            if self._step_create(ctx, result) == 0:
                misses += 1
        self._flush_streams(result)
        result.final_utilization = self._utilization()
        result.live_files = len(self._files)
        return result

    def churn(self, ctx: SimContext, write_volume: int,
              result: Optional[AgingResult] = None,
              overwrite_fraction: float = 0.4) -> AgingResult:
        """Age by *write_volume* bytes of create/delete/update churn."""
        result = result if result is not None else AgingResult()
        high = min(self.target + 0.03, 0.93)
        low = max(self.target - 0.12, 0.05)
        written = 0
        stall = 0
        while written < write_volume and stall < 20:
            misses = 0
            progress = False
            while self._utilization() < high and misses < 10:
                got = self._step_create(ctx, result)
                if got:
                    written += got
                    progress = True
                else:
                    misses += 1
            written += self._overwrite_some(
                ctx, result, int(write_volume * overwrite_fraction / 50))
            while self._files and self._utilization() > low:
                self._delete_one(ctx, result)
                progress = True
            stall = 0 if progress else stall + 1
        self._flush_streams(result)
        # settle at the target utilization for the measurement phase,
        # ending on a *drain*: an aged file system's free space is what
        # deletions left behind, not a freshly written burst
        misses = 0
        while self._utilization() < high and misses < 10:
            if self._step_create(ctx, result) == 0:
                misses += 1
        self._flush_streams(result)
        while self._files and self._utilization() > self.target:
            self._delete_one(ctx, result)
        result.final_utilization = self._utilization()
        result.live_files = len(self._files)
        return result

    def _overwrite_some(self, ctx: SimContext, result: AgingResult,
                        budget: int) -> int:
        """Rewrite random ranges of random live files; returns bytes."""
        written = 0
        while written < budget and self._files:
            path = self._files[self.rng.randrange(len(self._files))]
            size = self._sizes.get(path, 0)
            if size < 4096:
                written += 4096   # skip tiny files but make progress
                continue
            length = min(size, 1 << self.rng.randrange(12, 21))  # 4KB..1MB
            offset = self.rng.randrange(0, max(1, size - length))
            try:
                f = self.fs.open(path, ctx)
            except Exception:
                continue
            f.pwrite_zeros(offset, length, ctx)
            f.close()
            written += length
            result.bytes_written += length
        return written

    def age(self, ctx: SimContext, write_volume: int) -> AgingResult:
        """fill + churn in one call."""
        result = AgingResult()
        self.fill(ctx, result)
        self.churn(ctx, write_volume, result)
        return result

    def set_utilization(self, ctx: SimContext, target: float) -> AgingResult:
        """Move to a different utilization *after* aging, preserving the
        fragmentation history: deletes random files to go down, creates
        profile files to go up.  This is how one aged image yields the
        utilization sweep of Fig 1/3.
        """
        if not 0.0 < target < 1.0:
            raise ValueError("target utilization must be in (0, 1)")
        result = AgingResult()
        guard = 0
        while self._files and self._utilization() > target and guard < 100000:
            self._delete_one(ctx, result)
            guard += 1
        old_target, self.target = self.target, target
        try:
            self.fill(ctx, result)
        finally:
            self.target = old_target
        result.final_utilization = self._utilization()
        result.live_files = len(self._files)
        return result

