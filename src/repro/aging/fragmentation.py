"""Fragmentation metrics (Fig 3 and §4).

The paper's headline fragmentation metric is the fraction of *free space*
that sits in 2MB-aligned, contiguous (hugepage-mappable) regions, tracked
against utilization as the file system ages.  We also report file-level
mappability, which drives the mmap results directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..params import BLOCKS_PER_HUGEPAGE
from ..vfs.interface import FileSystem


@dataclass(frozen=True)
class FragmentationReport:
    fs_name: str
    utilization: float
    free_blocks: int
    free_aligned_hugepages: int
    free_space_aligned_fraction: float
    largest_free_extent_blocks: int
    free_extent_count: int

    def __str__(self) -> str:
        return (f"{self.fs_name}: util={self.utilization:.0%} "
                f"free-aligned={self.free_space_aligned_fraction:.0%} "
                f"({self.free_aligned_hugepages} hugepages, "
                f"{self.free_extent_count} free extents)")


def fragmentation_report(fs: FileSystem) -> FragmentationReport:
    """Snapshot the free-space fragmentation of a mounted file system."""
    stats = fs.statfs()
    largest = 0
    count = 0
    for ext in fs._free_extent_iter():          # noqa: SLF001 (library-internal)
        count += 1
        if ext.length > largest:
            largest = ext.length
    return FragmentationReport(
        fs_name=fs.name,
        utilization=stats.utilization,
        free_blocks=stats.free_blocks,
        free_aligned_hugepages=stats.free_aligned_hugepages,
        free_space_aligned_fraction=stats.free_space_aligned_fraction,
        largest_free_extent_blocks=largest,
        free_extent_count=count,
    )


def file_mappability(fs: FileSystem, ino: int) -> float:
    """Fraction of a file's hugepage-sized span that can map as hugepages."""
    extents = fs.file_extents(ino)
    total = extents.total_blocks
    if total < BLOCKS_PER_HUGEPAGE:
        return 1.0
    possible = total // BLOCKS_PER_HUGEPAGE
    return extents.mappable_hugepages() / possible
