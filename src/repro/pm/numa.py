"""NUMA topology model.

The paper (§3.6, "Minimizing remote NUMA accesses") observes that remote PM
*writes* are much more expensive than remote reads, and WineFS therefore
routes writes to a process's "home" NUMA node.  This module models the
topology: which CPUs and which PM address ranges belong to which socket,
and whether an access from a CPU to an address is remote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import SimulationError


@dataclass(frozen=True)
class NumaTopology:
    """Evenly interleaves CPUs and the PM address space across sockets.

    With ``nodes == 1`` (the paper's evaluation default, §5.1 disables NUMA
    awareness) every access is local.
    """

    num_cpus: int
    nodes: int
    pm_bytes: int

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise SimulationError("need at least one NUMA node")
        if self.num_cpus % self.nodes:
            raise SimulationError("CPUs must divide evenly across nodes")
        if self.pm_bytes % self.nodes:
            raise SimulationError("PM size must divide evenly across nodes")

    @property
    def cpus_per_node(self) -> int:
        return self.num_cpus // self.nodes

    @property
    def bytes_per_node(self) -> int:
        return self.pm_bytes // self.nodes

    def node_of_cpu(self, cpu: int) -> int:
        if not 0 <= cpu < self.num_cpus:
            raise SimulationError(f"cpu {cpu} out of range")
        return cpu // self.cpus_per_node

    def node_of_addr(self, addr: int) -> int:
        if not 0 <= addr < self.pm_bytes:
            raise SimulationError(f"PM address {addr:#x} out of range")
        return addr // self.bytes_per_node

    def node_addr_range(self, node: int) -> range:
        if not 0 <= node < self.nodes:
            raise SimulationError(f"node {node} out of range")
        start = node * self.bytes_per_node
        return range(start, start + self.bytes_per_node)

    def cpus_of_node(self, node: int) -> List[int]:
        if not 0 <= node < self.nodes:
            raise SimulationError(f"node {node} out of range")
        start = node * self.cpus_per_node
        return list(range(start, start + self.cpus_per_node))

    def is_remote(self, cpu: int, addr: int) -> bool:
        return self.node_of_cpu(cpu) != self.node_of_addr(addr)
