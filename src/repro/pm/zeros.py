"""Zero-filled payloads that never materialize the bytes.

Zero-fill faults, ``fallocate`` zeroing, journal erase and aging overwrite
traffic all write runs of zero bytes whose *content* is never read back in
fast (untracked) mode — only their length matters for cost charging.  A
:class:`Zeros` stand-in carries the length through the write paths
(`len()`, slicing and truthiness behave like a real ``bytes`` object) so
multi-megabyte throwaway buffers are never allocated.  Paths that do need
real bytes (``track_stores`` crash capture, ``track_data`` content checks)
convert with ``bytes(z)`` / :func:`zero_bytes`.
"""

from __future__ import annotations

from functools import lru_cache


class Zeros:
    """A length-only stand-in for ``b"\\x00" * length``."""

    __slots__ = ("length",)

    def __init__(self, length: int) -> None:
        if length < 0:
            raise ValueError(f"negative Zeros length: {length}")
        self.length = length

    def __len__(self) -> int:
        return self.length

    def __bool__(self) -> bool:
        return self.length > 0

    def __bytes__(self) -> bytes:
        return bytes(self.length)

    def __getitem__(self, key):
        if isinstance(key, slice):
            start, stop, step = key.indices(self.length)
            if step != 1:
                raise ValueError("Zeros slices must be contiguous")
            return Zeros(max(0, stop - start))
        if -self.length <= key < self.length:
            return 0
        raise IndexError("Zeros index out of range")

    def __eq__(self, other) -> bool:
        if isinstance(other, Zeros):
            return self.length == other.length
        if isinstance(other, (bytes, bytearray)):
            return len(other) == self.length and not any(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Zeros({self.length})"


@lru_cache(maxsize=8)
def zero_bytes(length: int) -> bytes:
    """A shared immutable zero buffer (for read paths that must return
    real ``bytes``); cached so hot loops reuse one allocation."""
    return bytes(length)
