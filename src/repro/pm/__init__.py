"""Simulated persistent-memory device.

* :mod:`repro.pm.device` — the PM address space: sparse byte store, a
  persistence log of stores/flushes/fences for crash-state enumeration, and
  the latency/bandwidth cost model from :mod:`repro.params`.
* :mod:`repro.pm.numa` — NUMA topology: which address ranges and CPUs live
  on which socket, with remote-access penalties.
"""

from .device import PMDevice, StoreRecord
from .numa import NumaTopology

__all__ = ["PMDevice", "StoreRecord", "NumaTopology"]
