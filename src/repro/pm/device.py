"""The persistent-memory device.

Design
------
The device is a byte-addressable address space backed by a *sparse* store
(dict of 4KB-page buffers): aging benches churn hundreds of gigabytes of
allocator metadata without ever materializing data pages, while correctness
tests read back exactly what they wrote.

Persistence semantics follow x86 + Optane: a ``store`` lands in the (volatile)
CPU cache; ``clwb`` schedules its cacheline for write-back; ``sfence`` orders
previously flushed lines, making them durable.  The device keeps an ordered
log of stores with flush/fence markers so the crash explorer
(:mod:`repro.crashmon`) can enumerate exactly the states CrashMonkey would:
persisted-prefix + any subset of in-flight (unfenced) stores.

Costs are charged to the :class:`~repro.clock.SimContext` of the caller using
the :class:`~repro.params.MachineParams` ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..clock import SimContext
from ..errors import PMError
from ..params import CACHELINE, BASE_PAGE, DEFAULT_MACHINE, MachineParams
from .numa import NumaTopology
from .zeros import Zeros


@dataclass(frozen=True)
class StoreRecord:
    """One logged store: bytes written to [addr, addr+len) at seq order."""

    seq: int
    addr: int
    data: bytes
    flushed: bool = False   # a clwb has been issued for this store's lines
    fenced: bool = False    # an sfence has made it durable


class _SparsePages:
    """Sparse byte store over the PM address space."""

    def __init__(self, size: int) -> None:
        self._size = size
        self._pages: Dict[int, bytearray] = {}
        # last page touched by a single-page write (inode slots and dir
        # entries hammer the same page): skips the dict probe on a hit
        self._last_no = -1
        self._last_page: Optional[bytearray] = None

    def read(self, addr: int, length: int) -> bytes:
        pages = self._pages
        first = addr // BASE_PAGE
        last = (addr + length - 1) // BASE_PAGE
        for page_no in range(first, last + 1):
            if page_no in pages:
                break
        else:
            # nothing in range ever written: absent pages read as zeros
            return bytes(length)
        out = bytearray(length)
        pos = 0
        while pos < length:
            page_no, off = divmod(addr + pos, BASE_PAGE)
            take = min(BASE_PAGE - off, length - pos)
            page = pages.get(page_no)
            if page is not None:
                out[pos:pos + take] = page[off:off + take]
            pos += take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        length = len(data)
        page_no, off = divmod(addr, BASE_PAGE)
        if off + length <= BASE_PAGE:
            # common case: the write stays inside one page (inode slots,
            # journal entries, indirect blocks are all page-confined)
            if page_no == self._last_no:
                page = self._last_page
            else:
                page = self._pages.get(page_no)
                if page is None:
                    page = bytearray(BASE_PAGE)
                    self._pages[page_no] = page
                self._last_no = page_no
                self._last_page = page
            page[off:off + length] = data
            return
        pos = 0
        while pos < length:
            page_no, off = divmod(addr + pos, BASE_PAGE)
            take = min(BASE_PAGE - off, length - pos)
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(BASE_PAGE)
                self._pages[page_no] = page
            page[off:off + take] = data[pos:pos + take]
            pos += take

    def write_zeros(self, addr: int, length: int) -> None:
        """Zero [addr, addr+length) without materializing a buffer.

        Fully covered pages are dropped (absent pages read as zeros);
        partial head/tail pages are zeroed in place if materialized.
        """
        pages = self._pages
        pos = 0
        while pos < length:
            page_no, off = divmod(addr + pos, BASE_PAGE)
            take = min(BASE_PAGE - off, length - pos)
            if take == BASE_PAGE:
                pages.pop(page_no, None)
                if page_no == self._last_no:
                    self._last_no = -1
                    self._last_page = None
            else:
                page = pages.get(page_no)
                if page is not None:
                    page[off:off + take] = bytes(take)
            pos += take

    def materialized_bytes(self) -> int:
        return len(self._pages) * BASE_PAGE

    def clone(self) -> "_SparsePages":
        out = _SparsePages(self._size)
        out._pages = {k: bytearray(v) for k, v in self._pages.items()}
        return out


class PMDevice:
    """A simulated Optane PM module (or interleaved set of them).

    Parameters
    ----------
    size:
        Capacity in bytes; must be hugepage-aligned for the file systems.
    machine:
        Cost model; defaults to the paper-derived :data:`DEFAULT_MACHINE`.
    topology:
        Optional NUMA layout.  ``None`` means single-node (every access
        local), matching the paper's single-socket evaluation (§5.1).
    track_stores:
        When True, every store is logged for crash-state enumeration.  Off
        by default because aging benches issue millions of stores.
    faults:
        Optional :class:`~repro.faults.FaultPlan`.  ``None`` (or a plan
        with no specs) is bit-identical to the plain device: every fault
        hook hides behind one ``_faults_active`` flag check.
    """

    def __init__(self, size: int, machine: MachineParams = DEFAULT_MACHINE,
                 topology: Optional[NumaTopology] = None,
                 track_stores: bool = False, faults=None) -> None:
        if size <= 0 or size % BASE_PAGE:
            raise PMError("PM size must be a positive multiple of 4KB")
        self.size = size
        self.machine = machine
        self.topology = topology
        self._store = _SparsePages(size)
        self.track_stores = track_stores
        # without store tracking there is no crash-state enumeration, so
        # dirty-line bookkeeping is pure overhead: every store is treated
        # as immediately durable and only costs are charged
        self._fast = not track_stores
        # store log as parallel columns (SoA): seqs ascend in append
        # order, flags[i] is 1 once a clwb covered store i's lines.
        # Fenced records never live in the log — sfence folds them into
        # the durable image and compacts the columns in place, so clwb
        # and sfence never rebuild per-record objects.
        self._log_seqs: List[int] = []
        self._log_addrs: List[int] = []
        self._log_data: List[bytes] = []
        self._log_flushed = bytearray()
        self._seq = 0
        # lines stored but not yet flushed
        self._dirty_lines: Set[int] = set()
        # durable image, maintained only when tracking stores
        self._durable: Optional[_SparsePages] = _SparsePages(size) if track_stores else None
        self.bytes_written = 0
        self.bytes_read = 0
        # epoch capture (CrashMonkey mid-operation crash points)
        self._capturing = False
        self._capture_base: Optional[_SparsePages] = None
        self._capture_records: Dict[int, Tuple[int, bytes]] = {}
        self._capture_epoch_of: Dict[int, Optional[int]] = {}
        self._capture_epoch = 0
        # fault injection (default-off, bit-identical-off)
        self.faults = None
        self._faults_active = False
        if faults is not None:
            self.set_fault_plan(faults)

    def set_fault_plan(self, plan) -> None:
        """Attach (or detach, with ``None``) a fault plan.

        An empty plan deactivates the hooks entirely, so attaching
        ``FaultPlan(seed, [])`` leaves every charge bit-identical to a
        device that never heard of faults.
        """
        self.faults = plan
        self._faults_active = plan is not None and plan.is_active
        if plan is not None:
            plan.attach(self)

    # -- bounds ------------------------------------------------------------------

    def _check(self, addr: int, length: int) -> None:
        if length < 0 or addr < 0 or addr + length > self.size:
            raise PMError(f"access [{addr:#x}, +{length}) outside device "
                          f"of size {self.size:#x}")

    def _is_remote(self, ctx: Optional[SimContext], addr: int) -> bool:
        if ctx is None or self.topology is None:
            return False
        return self.topology.is_remote(ctx.cpu, addr)

    # -- data path ----------------------------------------------------------------

    def load(self, addr: int, length: int, ctx: Optional[SimContext] = None) -> bytes:
        """Read bytes; charges streaming read bandwidth + one load latency.

        With an active fault plan, a load touching a poisoned cacheline
        raises :class:`~repro.errors.MediaError` before any byte (or
        cost) is accounted — the media error aborts the read.
        """
        self._check(addr, length)
        if self._faults_active:
            self.faults.on_load(addr, length, ctx)
        self.bytes_read += length
        if ctx is not None:
            remote = self._is_remote(ctx, addr)
            ns = self.machine.pm_load_ns + self.machine.pm_read_ns(length, remote)
            ctx.charge(ns)
            ctx.counters.pm_bytes_read += length
        return self._store.read(addr, length)

    def store(self, addr: int, data: bytes, ctx: Optional[SimContext] = None) -> None:
        """Write bytes into the (volatile) cache tier of the device.

        *data* may be a :class:`~repro.pm.zeros.Zeros` stand-in: in fast
        mode the zeros are applied without materializing a buffer; with
        store tracking they are converted to real bytes so crash-state
        enumeration keeps byte-exact records.
        """
        self._check(addr, len(data))
        if not data:
            return
        if self._faults_active:
            # may tear the store to a shorter prefix, heal poisoned
            # lines the store fully overwrites, or charge latency
            data = self.faults.on_store(addr, data, ctx)
            if not len(data):
                return      # fully torn: nothing reached even the cache
        if type(data) is Zeros:
            if self._fast:
                self._store.write_zeros(addr, len(data))
            else:
                data = bytes(data)
                self._store.write(addr, data)
        else:
            self._store.write(addr, data)
        self.bytes_written += len(data)
        if ctx is not None:
            remote = self._is_remote(ctx, addr)
            ctx.charge(self.machine.pm_write_ns(len(data), remote))
            ctx.counters.pm_bytes_written += len(data)
        if self._fast:
            return
        first = addr // CACHELINE
        last = (addr + len(data) - 1) // CACHELINE
        self._dirty_lines.update(range(first, last + 1))
        if self.track_stores:
            raw = bytes(data)
            self._log_seqs.append(self._seq)
            self._log_addrs.append(addr)
            self._log_data.append(raw)
            self._log_flushed.append(0)
            if self._capturing:
                self._capture_records[self._seq] = (addr, raw)
                self._capture_epoch_of[self._seq] = None
            self._seq += 1

    def clwb(self, addr: int, length: int, ctx: Optional[SimContext] = None) -> None:
        """Issue write-backs for every cacheline in [addr, addr+length)."""
        self._check(addr, length)
        if length == 0:
            return
        first = addr // CACHELINE
        last = (addr + length - 1) // CACHELINE
        lines = range(first, last + 1)
        if ctx is not None:
            ctx.charge(len(lines) * self.machine.clwb_ns)
        if self._fast:
            return
        self._dirty_lines.difference_update(lines)
        if self.track_stores:
            # flag flip in place on the flush column — no record rebuild
            addrs = self._log_addrs
            data = self._log_data
            flushed = self._log_flushed
            for i in range(len(addrs)):
                if not flushed[i]:
                    rfirst = addrs[i] // CACHELINE
                    rlast = (addrs[i] + len(data[i]) - 1) // CACHELINE
                    if rfirst <= last and first <= rlast:
                        flushed[i] = 1

    def sfence(self, ctx: Optional[SimContext] = None) -> None:
        """Order flushed lines: everything clwb'ed so far becomes durable."""
        if ctx is not None:
            ctx.charge(self.machine.sfence_ns)
        if self._fast:
            return
        if self.track_stores:
            seqs = self._log_seqs
            addrs = self._log_addrs
            data = self._log_data
            flushed = self._log_flushed
            durable = self._durable
            assert durable is not None
            fenced_any = False
            w = 0
            for i in range(len(seqs)):
                if flushed[i]:
                    # fenced: fold into the durable image and drop
                    durable.write(addrs[i], data[i])
                    if self._capturing and seqs[i] in self._capture_epoch_of:
                        self._capture_epoch_of[seqs[i]] = self._capture_epoch
                        fenced_any = True
                else:
                    if w != i:
                        seqs[w] = seqs[i]
                        addrs[w] = addrs[i]
                        data[w] = data[i]
                        flushed[w] = flushed[i]
                    w += 1
            if w != len(seqs):
                del seqs[w:], addrs[w:], data[w:], flushed[w:]
            if self._capturing and fenced_any:
                self._capture_epoch += 1

    def persist(self, addr: int, data: bytes, ctx: Optional[SimContext] = None) -> None:
        """store + clwb + sfence in one call (the common durable-write path)."""
        if self._fast and not self._faults_active:
            # one pass, same three charges in the same order as the calls
            # below would make them — just without their per-call dispatch
            # and line-set bookkeeping (skipped in fast mode anyway)
            length = len(data)
            if length < 0 or addr < 0 or addr + length > self.size:
                self._check(addr, length)   # raises with the full message
            if length:
                if type(data) is Zeros:
                    self._store.write_zeros(addr, length)
                else:
                    self._store.write(addr, data)
                self.bytes_written += length
            if ctx is None:
                return
            machine = self.machine
            cpu_ns = ctx.clock._cpu_ns
            cpu = ctx.cpu
            # same adds in the same order as the store/clwb/sfence calls
            # below would make them, accumulated on a local
            v = cpu_ns[cpu]
            if length:
                # inlined machine.pm_write_ns (identical float ops)
                ns = length / machine.pm_write_bw * 1e9
                if self.topology is not None \
                        and self.topology.is_remote(cpu, addr):
                    ns *= machine.remote_numa_write_mult
                v += ns
                ctx.counters._pm_bytes_written.value += length
                nlines = ((addr + length - 1) // CACHELINE
                          - addr // CACHELINE + 1)
                v += nlines * machine.clwb_ns
            v += machine.sfence_ns
            cpu_ns[cpu] = v
            return
        self.store(addr, data, ctx)
        self.clwb(addr, len(data), ctx)
        self.sfence(ctx)

    def write_zeros(self, addr: int, length: int,
                    ctx: Optional[SimContext] = None) -> None:
        """:meth:`store` of *length* zero bytes, buffer-free."""
        self.store(addr, Zeros(length), ctx)

    # -- crash support -----------------------------------------------------------

    def start_capture(self) -> None:
        """Begin recording fence epochs for mid-operation crash points.

        Everything pending is drained first: the capture baseline is the
        durable image at the moment of the call.  Until ``end_capture``,
        every store is remembered along with the fence epoch that made it
        durable (None = still in flight at capture end).
        """
        if not self.track_stores:
            raise PMError("store tracking is disabled on this device")
        self.drain()
        assert self._durable is not None
        self._capture_base = self._durable.clone()
        self._capture_records = {}
        self._capture_epoch_of = {}
        self._capture_epoch = 0
        self._capturing = True

    def end_capture(self) -> List[Tuple[Optional[int], List[int]]]:
        """Stop capturing; returns [(epoch, [seq, ...]), ...] in order.

        Each entry is one crash point: the stores fenced together at that
        epoch (epoch None groups stores never fenced during the capture).
        """
        self._capturing = False
        groups: Dict[Optional[int], List[int]] = {}
        for seq, epoch in self._capture_epoch_of.items():
            groups.setdefault(epoch, []).append(seq)
        numbered = sorted((e for e in groups if e is not None))
        out: List[Tuple[Optional[int], List[int]]] = [
            (e, sorted(groups[e])) for e in numbered]
        if None in groups:
            out.append((None, sorted(groups[None])))
        return out

    def capture_crash_image(self, epoch: Optional[int],
                            surviving: Iterable[int]) -> "PMDevice":
        """Crash image at the instant *before* fence *epoch* retired.

        All stores fenced in earlier epochs are durable; *surviving* is the
        subset of that epoch's (or, for epoch None, the never-fenced)
        stores that happened to reach media anyway.
        """
        if self._capture_base is None:
            raise PMError("no capture in progress or completed")
        survivors = set(surviving)
        image = PMDevice(self.size, self.machine, self.topology,
                         track_stores=True)
        image._store = self._capture_base.clone()
        for seq in sorted(self._capture_records):
            addr, data = self._capture_records[seq]
            rec_epoch = self._capture_epoch_of.get(seq)
            durable_before = (rec_epoch is not None and epoch is not None
                              and rec_epoch < epoch)
            if epoch is None:
                durable_before = rec_epoch is not None
            if durable_before or seq in survivors:
                image._store.write(addr, data)
        assert image._durable is not None
        image._durable = image._store.clone()
        return image

    def in_flight_stores(self) -> List[StoreRecord]:
        """Stores that are not yet guaranteed durable (no fence covers them)."""
        if not self.track_stores:
            raise PMError("store tracking is disabled on this device")
        # StoreRecord is materialized only here, at the API boundary
        return [StoreRecord(seq, addr, data, flushed=bool(fl))
                for seq, addr, data, fl in
                zip(self._log_seqs, self._log_addrs, self._log_data,
                    self._log_flushed)]

    def crash_image(self, surviving: Iterable[int] = ()) -> "PMDevice":
        """The device as it would look after a crash.

        *surviving* is a set of in-flight store sequence numbers that happen
        to have reached the media before power was lost (CrashMonkey's
        reordering model: any subset of unfenced stores may survive).
        """
        if not self.track_stores:
            raise PMError("store tracking is disabled on this device")
        assert self._durable is not None
        survivors = set(surviving)
        unknown = survivors - set(self._log_seqs)
        if unknown:
            raise PMError(f"unknown in-flight store seqs: {sorted(unknown)}")
        image = PMDevice(self.size, self.machine, self.topology,
                         track_stores=True)
        image._store = self._durable.clone()
        # the seq column ascends in append order: replay is already sorted
        for seq, addr, data in zip(self._log_seqs, self._log_addrs,
                                   self._log_data):
            if seq in survivors:
                image._store.write(addr, data)
        assert image._durable is not None
        image._durable = image._store.clone()
        return image

    def clone(self) -> "PMDevice":
        """Deep copy (for checkers that mutate state during verification)."""
        out = PMDevice(self.size, self.machine, self.topology,
                       track_stores=self.track_stores)
        out._store = self._store.clone()
        out._log_seqs = list(self._log_seqs)
        out._log_addrs = list(self._log_addrs)
        out._log_data = list(self._log_data)
        out._log_flushed = bytearray(self._log_flushed)
        out._seq = self._seq
        out._dirty_lines = set(self._dirty_lines)
        if self._durable is not None:
            out._durable = self._durable.clone()
        out.bytes_written = self.bytes_written
        out.bytes_read = self.bytes_read
        return out

    def drain(self) -> None:
        """Flush + fence everything dirty (clean unmount / power-safe)."""
        if self._fast:
            return
        # flush at page granularity over all dirty lines
        lines = sorted(self._dirty_lines)
        for line in lines:
            self.clwb(line * CACHELINE, CACHELINE)
        self.sfence()

    def bind_metrics(self, registry, **labels) -> None:
        """Expose device totals through callback gauges on *registry*."""
        registry.gauge("pm_device_bytes", fn=lambda: self.bytes_read,
                       direction="read", **labels)
        registry.gauge("pm_device_bytes", fn=lambda: self.bytes_written,
                       direction="write", **labels)
        registry.gauge("pm_materialized_bytes",
                       fn=lambda: self.materialized_bytes, **labels)

    @property
    def materialized_bytes(self) -> int:
        """How much backing memory the sparse store actually uses."""
        return self._store.materialized_bytes()
