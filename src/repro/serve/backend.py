"""Concrete object-storage backends: simulated-FS-backed and in-memory.

:class:`FSObjStorage` lays objects out on any simulated file system as
``/srv/<tenant>/<id[:2]>/<id[2:34]>/<id[34:]>`` — SWH-style pathslicing.
The two-hex-character fan-out keeps top-level entry counts bounded under
the small-object workload (billions of mostly-tiny objects in the real
archive; the directory index here is the same structure the aging
profiles stress), and the remaining slices keep every path component
within the strictest on-PM name limit of the evaluated file systems
(WineFS packs names into its 128-byte inode slot, ``MAX_NAME = 36``).
The full object id is reconstructed from the slice components on list,
so nothing is lost to the split.
Every verb maps to plain VFS calls on the wrapped file system, so a
served op charges exactly the syscalls a local application would, and an
attached SLO telemetry frame sees the constituent VFS ops too.

:class:`MemoryObjStorage` is the reference implementation: a dict with a
trivial deterministic cost model.  The conformance suite runs it first —
if a behavioural test fails on it, the test (not a backend) is wrong.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..clock import SimContext
from ..errors import ExistsError, NotFoundError
from ..vfs.interface import FileSystem
from .interface import ObjStorage, check_obj_id, check_tenant

__all__ = ["FSObjStorage", "MemoryObjStorage", "SERVE_ROOT"]

#: object namespace root on every FS backend (own directory so serving
#: composes with aged images, whose churn files live elsewhere)
SERVE_ROOT = "/srv"


class FSObjStorage(ObjStorage):
    """Objects stored as files on one simulated file system."""

    def __init__(self, fs: FileSystem, ctx: SimContext,
                 label: Optional[str] = None) -> None:
        self.fs = fs
        self.ctx = ctx
        self.name = label if label is not None else fs.name

    # -- path layout --------------------------------------------------------

    #: pathslicing bounds: ``id[:2] / id[2:_MID] / id[_MID:]``; every
    #: component stays within WineFS's 36-byte inode-slot name limit
    _MID = 34

    @staticmethod
    def _tenant_dir(tenant: str) -> str:
        return f"{SERVE_ROOT}/{tenant}"

    @classmethod
    def _object_path(cls, tenant: str, obj_id: str) -> str:
        return (f"{cls._tenant_dir(tenant)}/{obj_id[:2]}"
                f"/{obj_id[2:cls._MID]}/{obj_id[cls._MID:]}")

    def _ensure_dirs(self, tenant: str, obj_id: str) -> None:
        tenant_dir = self._tenant_dir(tenant)
        for path in (SERVE_ROOT, tenant_dir,
                     f"{tenant_dir}/{obj_id[:2]}",
                     f"{tenant_dir}/{obj_id[:2]}/{obj_id[2:self._MID]}"):
            try:
                self.fs.mkdir(path, self.ctx)
            except ExistsError:
                pass

    # -- verbs --------------------------------------------------------------

    def put(self, tenant: str, data: bytes,
            obj_id: Optional[str] = None) -> str:
        computed = self._resolve_put(tenant, data, obj_id)
        path = self._object_path(tenant, computed)
        if self.fs.exists(path):
            return computed
        self._ensure_dirs(tenant, computed)
        f = self.fs.write_file(path, bytes(data), self.ctx)
        f.close()
        return computed

    def get(self, tenant: str, obj_id: str) -> bytes:
        check_tenant(tenant)
        check_obj_id(obj_id)
        return self.fs.read_file(self._object_path(tenant, obj_id),
                                 self.ctx)

    def exists(self, tenant: str, obj_id: str) -> bool:
        check_tenant(tenant)
        check_obj_id(obj_id)
        return self.fs.exists(self._object_path(tenant, obj_id))

    def delete(self, tenant: str, obj_id: str) -> None:
        check_tenant(tenant)
        check_obj_id(obj_id)
        self.fs.unlink(self._object_path(tenant, obj_id), self.ctx)

    def list_objects(self, tenant: str) -> List[str]:
        check_tenant(tenant)
        tenant_dir = self._tenant_dir(tenant)
        try:
            buckets = self.fs.readdir(tenant_dir, self.ctx)
        except NotFoundError:
            return []
        ids: List[str] = []
        for bucket in sorted(buckets):
            bucket_dir = f"{tenant_dir}/{bucket}"
            try:
                middles = self.fs.readdir(bucket_dir, self.ctx)
            except NotFoundError:
                continue
            for middle in sorted(middles):
                try:
                    tails = self.fs.readdir(f"{bucket_dir}/{middle}",
                                            self.ctx)
                except NotFoundError:
                    continue
                ids.extend(f"{bucket}{middle}{tail}"
                           for tail in sorted(tails))
        return ids

    # -- accounting ---------------------------------------------------------

    def sim_ns(self) -> float:
        return self.ctx.now

    def attach_telemetry(self, telemetry) -> None:
        self.fs.attach_telemetry(telemetry)


#: deterministic cost model for the in-memory reference (simulated ns):
#: a flat per-verb charge plus a per-byte term for data-moving verbs
_MEM_BASE_NS = {"put": 800.0, "get": 500.0, "exists": 300.0,
                "delete": 400.0, "list": 300.0}
_MEM_BYTE_NS = 0.25
_MEM_ENTRY_NS = 50.0


class MemoryObjStorage(ObjStorage):
    """Dict-backed reference storage with a synthetic clock."""

    def __init__(self, label: str = "memory") -> None:
        self.name = label
        self._tenants: Dict[str, Dict[str, bytes]] = {}
        self._ns = 0.0

    def put(self, tenant: str, data: bytes,
            obj_id: Optional[str] = None) -> str:
        computed = self._resolve_put(tenant, data, obj_id)
        self._ns += _MEM_BASE_NS["put"] + _MEM_BYTE_NS * len(data)
        store = self._tenants.setdefault(tenant, {})
        if computed not in store:
            store[computed] = bytes(data)
        return computed

    def get(self, tenant: str, obj_id: str) -> bytes:
        check_tenant(tenant)
        check_obj_id(obj_id)
        store = self._tenants.get(tenant, {})
        if obj_id not in store:
            self._ns += _MEM_BASE_NS["get"]
            raise NotFoundError(f"no object {obj_id[:16]}... for "
                                f"tenant {tenant}")
        data = store[obj_id]
        self._ns += _MEM_BASE_NS["get"] + _MEM_BYTE_NS * len(data)
        return data

    def exists(self, tenant: str, obj_id: str) -> bool:
        check_tenant(tenant)
        check_obj_id(obj_id)
        self._ns += _MEM_BASE_NS["exists"]
        return obj_id in self._tenants.get(tenant, {})

    def delete(self, tenant: str, obj_id: str) -> None:
        check_tenant(tenant)
        check_obj_id(obj_id)
        self._ns += _MEM_BASE_NS["delete"]
        store = self._tenants.get(tenant, {})
        if obj_id not in store:
            raise NotFoundError(f"no object {obj_id[:16]}... for "
                                f"tenant {tenant}")
        del store[obj_id]

    def list_objects(self, tenant: str) -> List[str]:
        check_tenant(tenant)
        ids = sorted(self._tenants.get(tenant, {}))
        self._ns += _MEM_BASE_NS["list"] + _MEM_ENTRY_NS * len(ids)
        return ids

    def sim_ns(self) -> float:
        return self._ns
