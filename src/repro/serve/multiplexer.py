"""Deterministic tenant multiplexer with admission control.

The multiplexer owns a fleet of backends and routes every request by
tenant: ``route(tenant) = crc32(tenant) % len(backends)``.  The hash is
content-defined (never seeded, never process-dependent), so the same
tenant always lands on the same backend — which is what makes the
differential suite's claim checkable: a multi-tenant stream pushed
through the multiplexer must leave every backend byte-identical
(simulated ns, object bytes, metrics) to running that backend's tenant
slice against it directly, because routing adds no simulated work and
consumes no randomness.

Admission control is loss-based.  Each backend is modeled as a single
queue of bounded depth ``queue_cap``: the load driver announces each
request's open-loop arrival time via :meth:`advance`, completions whose
finish time is past are drained, and a request arriving to a full queue
is rejected with ``EAGAIN`` (:class:`~repro.errors.BusyError`) *before*
touching the backend — rejected work leaves no trace in backend state,
and the rejection order for a seeded stream is deterministic.  Service
time for an admitted request is the backend's own simulated-clock delta,
so queue occupancy derives entirely from simulated quantities.

``queue_cap=0`` (the default) disables admission control entirely: the
multiplexer is then a pure router.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Callable, List, Optional, Sequence, TypeVar

from ..errors import BusyError, InvalidArgumentError
from ..obs.metrics import MetricsRegistry
from .interface import ObjStorage

__all__ = ["ObjStorageMultiplexer"]

T = TypeVar("T")


class ObjStorageMultiplexer(ObjStorage):
    """Route per-tenant namespaces across a fleet of backends."""

    def __init__(self, backends: Sequence[ObjStorage],
                 queue_cap: int = 0,
                 registry: Optional[MetricsRegistry] = None,
                 label: str = "multiplexer") -> None:
        if not backends:
            raise InvalidArgumentError("multiplexer needs >= 1 backend")
        if queue_cap < 0:
            raise InvalidArgumentError("queue_cap must be >= 0")
        self.backends: List[ObjStorage] = list(backends)
        self.queue_cap = queue_cap
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.name = label
        #: per-backend completion times (ns on the arrival timeline) of
        #: admitted-but-unfinished requests, oldest first
        self._queues = [deque() for _ in self.backends]
        self._queue_high_water = [0] * len(self.backends)
        self._arrival_ns: Optional[float] = None

    # -- routing ------------------------------------------------------------

    def route(self, tenant: str) -> int:
        """The backend index *tenant* maps to (stable across runs)."""
        return zlib.crc32(tenant.encode("utf-8")) % len(self.backends)

    def backend_for(self, tenant: str) -> ObjStorage:
        return self.backends[self.route(tenant)]

    # -- admission ----------------------------------------------------------

    def advance(self, arrival_ns: float) -> None:
        self._arrival_ns = arrival_ns

    def _admit(self, idx: int, op: str) -> None:
        """Drain finished work; reject if the queue is at capacity."""
        backend = self.backends[idx]
        if self.queue_cap == 0 or self._arrival_ns is None:
            return
        queue = self._queues[idx]
        while queue and queue[0] <= self._arrival_ns:
            queue.popleft()
        if len(queue) >= self.queue_cap:
            self.registry.counter("serve_rejected_total",
                                  backend=backend.name, op=op).inc()
            raise BusyError(
                f"backend {backend.name} queue full "
                f"({len(queue)}/{self.queue_cap}); retry later")

    def _complete(self, idx: int, service_ns: float) -> None:
        """Record an admitted request's completion on the queue."""
        if self.queue_cap == 0 or self._arrival_ns is None:
            return
        queue = self._queues[idx]
        begin = queue[-1] if queue else self._arrival_ns
        queue.append(max(begin, self._arrival_ns) + service_ns)
        depth = len(queue)
        if depth > self._queue_high_water[idx]:
            self._queue_high_water[idx] = depth
            self.registry.gauge(
                "serve_queue_depth",
                backend=self.backends[idx].name).set(depth)

    def _dispatch(self, tenant: str, op: str,
                  fn: Callable[[ObjStorage], T]) -> T:
        idx = self.route(tenant)
        self._admit(idx, op)
        backend = self.backends[idx]
        start = backend.sim_ns()
        result = fn(backend)
        self._complete(idx, backend.sim_ns() - start)
        self.registry.counter("serve_requests_total",
                              backend=backend.name, op=op).inc()
        return result

    # -- verbs --------------------------------------------------------------

    def put(self, tenant: str, data: bytes,
            obj_id: Optional[str] = None) -> str:
        return self._dispatch(tenant, "put",
                              lambda b: b.put(tenant, data, obj_id))

    def get(self, tenant: str, obj_id: str) -> bytes:
        return self._dispatch(tenant, "get",
                              lambda b: b.get(tenant, obj_id))

    def exists(self, tenant: str, obj_id: str) -> bool:
        return self._dispatch(tenant, "exists",
                              lambda b: b.exists(tenant, obj_id))

    def delete(self, tenant: str, obj_id: str) -> None:
        return self._dispatch(tenant, "delete",
                              lambda b: b.delete(tenant, obj_id))

    def list_objects(self, tenant: str) -> List[str]:
        return self._dispatch(tenant, "list",
                              lambda b: b.list_objects(tenant))

    # -- accounting ---------------------------------------------------------

    def sim_ns(self) -> float:
        return sum(b.sim_ns() for b in self.backends)

    def attach_telemetry(self, telemetry) -> None:
        for backend in self.backends:
            backend.attach_telemetry(telemetry)

    def queue_high_water(self, idx: int) -> int:
        return self._queue_high_water[idx]
