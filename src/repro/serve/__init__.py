"""repro.serve: a multi-tenant object service over simulated PM file
systems.

The service layer answers the roadmap's "millions of users" question:
what does a WineFS-class file system buy an actual storage service?  It
stacks an SWH-style content-addressed object interface (put / get /
exists / delete / list) on any simulated FS model, routes per-tenant
namespaces across a fleet through a deterministic multiplexer with
loss-based admission control, and exposes the whole thing through an
in-process RPC pair and the ``repro serve`` CLI.

Everything stays a pure function of seeds: streams come from
:func:`~repro.serve.loadgen.generate_stream`, routing is content-hashed,
service time is simulated-clock deltas — so the differential suite can
demand byte-identical state between multiplexed and direct runs.
"""

from .backend import SERVE_ROOT, FSObjStorage, MemoryObjStorage
from .factory import get_objstorage
from .interface import (OBJ_ID_LEN, ObjStorage, check_obj_id, check_tenant,
                        compute_obj_id)
from .loadgen import (LOAD_REPORT_SCHEMA, LoadSpec, Request, dump_objects,
                      generate_stream, object_size, run_load)
from .multiplexer import ObjStorageMultiplexer
from .rpc import (ObjStorageServer, RemoteObjStorage, RPCError, decode_frame,
                  encode_frame, loopback_client, serve_connection,
                  spawn_pipe_server)

__all__ = [
    "OBJ_ID_LEN", "ObjStorage", "check_obj_id", "check_tenant",
    "compute_obj_id",
    "SERVE_ROOT", "FSObjStorage", "MemoryObjStorage",
    "ObjStorageMultiplexer", "get_objstorage",
    "ObjStorageServer", "RemoteObjStorage", "RPCError",
    "encode_frame", "decode_frame", "loopback_client",
    "serve_connection", "spawn_pipe_server",
    "LOAD_REPORT_SCHEMA", "LoadSpec", "Request", "object_size",
    "generate_stream", "run_load", "dump_objects",
]
