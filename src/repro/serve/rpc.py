"""In-process RPC pair: framed request/response codec, server, client.

The wire form is a single self-delimiting frame (same framing discipline
as the snapshot store):

    magic ``ROBJ`` | u16 version | u32 meta_len | meta JSON (UTF-8) |
    u64 payload_len | payload bytes

Requests put the verb and its string arguments in the meta JSON and the
object bytes (puts only) in the payload; responses carry ``ok`` plus
either a JSON-able ``result`` or an ``errno``/``error`` pair, with get
payloads travelling as raw bytes.  Object data never transits JSON, so
the codec is byte-exact for any payload.

:class:`ObjStorageServer` wraps any :class:`~repro.serve.ObjStorage` and
**never raises**: file-system errors (a poisoned read, a degraded
mount's ``EROFS``, an admission rejection's ``EAGAIN``) become error
responses carrying the errno name, and malformed frames become
``EINVAL`` responses — a fault campaign can burn the error budget but
cannot crash the server.  :class:`RemoteObjStorage` is the inverse map:
it speaks frames through any ``bytes -> bytes`` transport and re-raises
the matching :mod:`repro.errors` class, so a client-driven storage is
behaviourally identical to the local one (the conformance suite runs
the same mixin over both).  :func:`spawn_pipe_server` crosses a real
process boundary: the child builds its storage from a factory config
and answers frames over a ``multiprocessing`` pipe.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import (BusyError, ExistsError, FSError,
                      InvalidArgumentError, MediaError, NoSpaceError,
                      NotFoundError, ReadOnlyError, ReproError)
from .interface import ObjStorage

__all__ = ["RPCError", "encode_frame", "decode_frame", "ObjStorageServer",
           "RemoteObjStorage", "loopback_client", "spawn_pipe_server",
           "serve_connection"]

_MAGIC = b"ROBJ"
_VERSION = 1
_HEAD = struct.Struct("<HI")   # version, meta_len
_PLEN = struct.Struct("<Q")    # payload_len

#: verbs a server dispatches; everything else is EINVAL
_METHODS = ("put", "get", "exists", "delete", "list", "sim_ns", "advance")

#: errno name -> exception class raised client-side
_ERRNO_CLASSES = {
    "ENOENT": NotFoundError,
    "EEXIST": ExistsError,
    "EINVAL": InvalidArgumentError,
    "EAGAIN": BusyError,
    "EROFS": ReadOnlyError,
    "ENOSPC": NoSpaceError,
    "EIO": MediaError,
}


class RPCError(ReproError):
    """The transport returned a frame the codec cannot parse."""


def encode_frame(meta: Dict[str, Any], payload: bytes = b"") -> bytes:
    meta_blob = json.dumps(meta, sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
    return (_MAGIC + _HEAD.pack(_VERSION, len(meta_blob)) + meta_blob
            + _PLEN.pack(len(payload)) + payload)


def decode_frame(blob: bytes) -> Tuple[Dict[str, Any], bytes]:
    if not isinstance(blob, (bytes, bytearray)) \
            or not blob.startswith(_MAGIC):
        raise RPCError("bad frame magic")
    offset = len(_MAGIC)
    if len(blob) < offset + _HEAD.size + _PLEN.size:
        raise RPCError("truncated frame header")
    version, meta_len = _HEAD.unpack_from(blob, offset)
    if version != _VERSION:
        raise RPCError(f"unsupported frame version {version}")
    offset += _HEAD.size
    meta_end = offset + meta_len
    if meta_end + _PLEN.size > len(blob):
        raise RPCError("truncated frame meta")
    try:
        meta = json.loads(bytes(blob[offset:meta_end]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RPCError(f"bad frame meta: {exc}") from None
    (payload_len,) = _PLEN.unpack_from(blob, meta_end)
    payload_off = meta_end + _PLEN.size
    if payload_off + payload_len != len(blob):
        raise RPCError("frame payload length mismatch")
    if not isinstance(meta, dict):
        raise RPCError("frame meta is not an object")
    return meta, bytes(blob[payload_off:payload_off + payload_len])


class ObjStorageServer:
    """Dispatch decoded request frames onto one storage; never raises."""

    def __init__(self, storage: ObjStorage) -> None:
        self.storage = storage

    def handle(self, request: bytes) -> bytes:
        try:
            meta, payload = decode_frame(request)
            return self._dispatch(meta, payload)
        except FSError as exc:
            return encode_frame({"ok": False, "errno": exc.errno_name,
                                 "error": str(exc)})
        except (RPCError, TypeError, KeyError, ValueError) as exc:
            return encode_frame({"ok": False, "errno": "EINVAL",
                                 "error": f"bad request: {exc}"})

    def _dispatch(self, meta: Dict[str, Any], payload: bytes) -> bytes:
        method = meta.get("method")
        if method not in _METHODS:
            raise RPCError(f"unknown method {method!r}")
        storage = self.storage
        if method == "put":
            obj_id = storage.put(meta["tenant"], payload,
                                 obj_id=meta.get("obj_id"))
            return encode_frame({"ok": True, "result": obj_id})
        if method == "get":
            data = storage.get(meta["tenant"], meta["obj_id"])
            return encode_frame({"ok": True}, data)
        if method == "exists":
            found = storage.exists(meta["tenant"], meta["obj_id"])
            return encode_frame({"ok": True, "result": bool(found)})
        if method == "delete":
            storage.delete(meta["tenant"], meta["obj_id"])
            return encode_frame({"ok": True})
        if method == "list":
            return encode_frame(
                {"ok": True, "result": storage.list_objects(meta["tenant"])})
        if method == "sim_ns":
            return encode_frame({"ok": True, "result": storage.sim_ns()})
        # advance
        storage.advance(float(meta["arrival_ns"]))
        return encode_frame({"ok": True})


class RemoteObjStorage(ObjStorage):
    """Client end: an ObjStorage speaking frames over a transport."""

    def __init__(self, transport: Callable[[bytes], bytes],
                 label: str = "remote") -> None:
        self.transport = transport
        self.name = label

    def _call(self, meta: Dict[str, Any],
              payload: bytes = b"") -> Tuple[Dict[str, Any], bytes]:
        response = self.transport(encode_frame(meta, payload))
        resp_meta, resp_payload = decode_frame(response)
        if not resp_meta.get("ok"):
            errno_name = str(resp_meta.get("errno", "EIO"))
            exc_class = _ERRNO_CLASSES.get(errno_name, FSError)
            raise exc_class(str(resp_meta.get("error", "remote error")))
        return resp_meta, resp_payload

    def put(self, tenant: str, data: bytes,
            obj_id: Optional[str] = None) -> str:
        meta: Dict[str, Any] = {"method": "put", "tenant": tenant}
        if obj_id is not None:
            meta["obj_id"] = obj_id
        resp, _payload = self._call(meta, bytes(data))
        return resp["result"]

    def get(self, tenant: str, obj_id: str) -> bytes:
        _resp, payload = self._call({"method": "get", "tenant": tenant,
                                     "obj_id": obj_id})
        return payload

    def exists(self, tenant: str, obj_id: str) -> bool:
        resp, _payload = self._call({"method": "exists", "tenant": tenant,
                                     "obj_id": obj_id})
        return resp["result"]

    def delete(self, tenant: str, obj_id: str) -> None:
        self._call({"method": "delete", "tenant": tenant,
                    "obj_id": obj_id})

    def list_objects(self, tenant: str) -> List[str]:
        resp, _payload = self._call({"method": "list", "tenant": tenant})
        return resp["result"]

    def sim_ns(self) -> float:
        resp, _payload = self._call({"method": "sim_ns"})
        return float(resp["result"])

    def advance(self, arrival_ns: float) -> None:
        self._call({"method": "advance", "arrival_ns": arrival_ns})


def loopback_client(storage: ObjStorage,
                    label: str = "loopback") -> RemoteObjStorage:
    """A client whose transport is an in-process server — every call
    round-trips through the full codec."""
    server = ObjStorageServer(storage)
    return RemoteObjStorage(server.handle, label=label)


# -- process-boundary serving ------------------------------------------------

def serve_connection(storage: ObjStorage, conn) -> None:
    """Answer frames on a multiprocessing connection until EOF or an
    empty shutdown frame."""
    server = ObjStorageServer(storage)
    while True:
        try:
            request = conn.recv_bytes()
        except (EOFError, OSError):
            break
        if not request:
            break
        conn.send_bytes(server.handle(request))


def _pipe_server_main(config: Dict[str, Any], conn) -> None:
    from .factory import get_objstorage

    serve_connection(get_objstorage(**config), conn)
    conn.close()


def spawn_pipe_server(config: Dict[str, Any], label: str = "remote"):
    """Start a child process serving the storage built from *config*.

    Returns ``(client, process, conn)``; send an empty frame (or just
    ``process.terminate()``) to stop the child.  The transport is
    strictly request/response over one duplex pipe.
    """
    import multiprocessing

    parent_conn, child_conn = multiprocessing.Pipe()
    process = multiprocessing.Process(
        target=_pipe_server_main, args=(config, child_conn), daemon=True)
    process.start()
    child_conn.close()

    def transport(blob: bytes) -> bytes:
        parent_conn.send_bytes(blob)
        return parent_conn.recv_bytes()

    return RemoteObjStorage(transport, label=label), process, parent_conn
