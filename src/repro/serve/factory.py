"""Backend factory: build any storage from a plain config.

``get_objstorage`` mirrors the swh-objstorage factory idiom: one entry
point that turns a JSON-able config into a live storage, recursing for
composite classes.  Because configs are plain data they cross process
boundaries — the RPC helper spawns a server child with nothing but a
config dict, and fleet cells carry their whole fleet as configs.

Supported classes:

* ``memory`` — the dict-backed reference backend;
* ``fs`` — one simulated file system (any of the nine evaluated
  configurations), mounted fresh or restored from an aged snapshot
  image via :func:`repro.harness.setup.aged_fs` (same cache keys, same
  bit-identical restore guarantees; with ``$REPRO_SNAPSHOT_ARCHIVE``
  set the image comes out of the sharded pack archive — e.g. one built
  by ``repro snapshot build --track-data``; a corrupt or stale snapshot
  falls back to re-aging and counts a ``snapshot_load_failures``
  metric);
* ``multiplexer`` — a fleet of recursively-built backends behind the
  deterministic tenant router with optional admission control.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..errors import InvalidArgumentError
from .backend import FSObjStorage, MemoryObjStorage
from .interface import ObjStorage
from .multiplexer import ObjStorageMultiplexer

__all__ = ["get_objstorage"]


def _build_fs(fs: str = "WineFS", *, size_gib: float = 0.25,
              num_cpus: int = 2, aged: bool = False, snapshot: bool = True,
              seed: int = 7, utilization: float = 0.5,
              churn_multiple: float = 1.0,
              label: Optional[str] = None) -> FSObjStorage:
    from ..harness.setup import SPECS_BY_NAME, aged_fs, fresh_fs

    if fs not in SPECS_BY_NAME:
        raise InvalidArgumentError(f"unknown file system {fs!r}")
    # track_data: an object store must serve back the bytes it accepted,
    # so the simulated FS keeps real file contents (not just lengths)
    if aged:
        built, ctx = aged_fs(fs, size_gib=size_gib, num_cpus=num_cpus,
                             utilization=utilization,
                             churn_multiple=churn_multiple, seed=seed,
                             snapshot=snapshot, track_data=True)
    else:
        built, ctx = fresh_fs(fs, size_gib=size_gib, num_cpus=num_cpus,
                              track_data=True)
    return FSObjStorage(built, ctx, label=label)


def _build_multiplexer(backends: Sequence[Dict[str, Any]] = (),
                       queue_cap: int = 0,
                       label: str = "multiplexer"
                       ) -> ObjStorageMultiplexer:
    if not backends:
        raise InvalidArgumentError("multiplexer config needs backends")
    built = [get_objstorage(**dict(cfg)) for cfg in backends]
    return ObjStorageMultiplexer(built, queue_cap=queue_cap, label=label)


def get_objstorage(cls: str = "memory", **kwargs) -> ObjStorage:
    """Build one storage from a plain config (see module docstring)."""
    if cls == "memory":
        return MemoryObjStorage(**kwargs)
    if cls == "fs":
        return _build_fs(**kwargs)
    if cls == "multiplexer":
        return _build_multiplexer(**kwargs)
    raise InvalidArgumentError(f"unknown objstorage class {cls!r}")
