"""Seeded multi-tenant load: the SWH small-object workload, served.

The size distribution follows the Software Heritage object statistics
(SNIPPETS.md): mostly-small objects, 50% under 4 KiB and 75% under
16 KiB, with a thin heavy tail.  Tenants draw from a harmonic weight
ladder (tenant 0 is the heavy hitter), arrivals are an open-loop seeded
exponential process, and the verb mix leans write-heavy the way an
ingest-facing archive does.

Generation is execution-independent: the stream tracks its own model of
each tenant's live objects, so a clean run surfaces zero errors, while a
fault campaign that kills puts makes later gets of those ids surface
``ENOENT`` — exactly the downstream damage a real archive would see.

:func:`run_load` drives any :class:`~repro.serve.ObjStorage` with a
stream, records service latencies and surfaced errors into an optional
SLO telemetry frame (service ops appear under the ``serve`` label, next
to the per-FS VFS series the attached backends record), and returns a
deterministic report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import BusyError, FSError
from ..params import KIB
from ..rng import make_rng
from .interface import ObjStorage, compute_obj_id

__all__ = ["LoadSpec", "Request", "object_size", "generate_stream",
           "run_load", "dump_objects", "LOAD_REPORT_SCHEMA"]

LOAD_REPORT_SCHEMA = "repro.serve-load/1"

#: salt separating the serve stream from other users of the same seed
_STREAM_SALT = 23

#: verb mix (percent rolls): writes dominate, reads close behind
_PUT_PCT, _GET_PCT, _EXISTS_PCT, _DELETE_PCT = 40, 35, 10, 8


@dataclass(frozen=True)
class LoadSpec:
    """One seeded load's shape; every field feeds the stream exactly."""

    seed: int
    tenants: int = 4
    ops: int = 400
    mean_interarrival_ns: float = 50_000.0
    max_size: int = 256 * KIB


@dataclass(frozen=True)
class Request:
    """One generated service request."""

    index: int
    op: str                      # put / get / exists / delete / list
    tenant: str
    arrival_ns: float
    obj_id: str = ""
    data: bytes = field(default=b"", repr=False)


def object_size(rng, max_size: int = 256 * KIB) -> int:
    """Draw one object size from the SWH distribution."""
    roll = rng.random()
    if roll < 0.50:
        size = 64 + rng.randrange(4 * KIB - 64)
    elif roll < 0.75:
        size = 4 * KIB + rng.randrange(12 * KIB)
    elif roll < 0.92:
        size = 16 * KIB + rng.randrange(48 * KIB)
    else:
        size = 64 * KIB + rng.randrange(192 * KIB)
    return min(size, max_size)


def generate_stream(spec: LoadSpec) -> List[Request]:
    """The deterministic request stream for *spec*."""
    rng = make_rng(spec.seed, salt=_STREAM_SALT)
    tenants = [f"t{i:02d}" for i in range(spec.tenants)]
    weights = [1.0 / (i + 1) for i in range(spec.tenants)]
    live: Dict[str, List[str]] = {t: [] for t in tenants}
    stream: List[Request] = []
    arrival = 0.0
    for index in range(spec.ops):
        arrival += rng.expovariate(1.0 / spec.mean_interarrival_ns)
        tenant = rng.choices(tenants, weights)[0]
        roll = rng.randrange(100)
        ids = live[tenant]
        if roll < _PUT_PCT or not ids:
            data = rng.randbytes(object_size(rng, spec.max_size))
            obj_id = compute_obj_id(data)
            if obj_id not in ids:
                ids.append(obj_id)
            stream.append(Request(index, "put", tenant, arrival,
                                  obj_id=obj_id, data=data))
        elif roll < _PUT_PCT + _GET_PCT:
            stream.append(Request(index, "get", tenant, arrival,
                                  obj_id=ids[rng.randrange(len(ids))]))
        elif roll < _PUT_PCT + _GET_PCT + _EXISTS_PCT:
            stream.append(Request(index, "exists", tenant, arrival,
                                  obj_id=ids[rng.randrange(len(ids))]))
        elif roll < _PUT_PCT + _GET_PCT + _EXISTS_PCT + _DELETE_PCT:
            obj_id = ids.pop(rng.randrange(len(ids)))
            stream.append(Request(index, "delete", tenant, arrival,
                                  obj_id=obj_id))
        else:
            stream.append(Request(index, "list", tenant, arrival))
    return stream


def run_load(storage: ObjStorage, stream: List[Request],
             telemetry=None) -> Dict[str, object]:
    """Drive *storage* with *stream*; returns a deterministic report.

    Admission rejections (``EAGAIN``) and surfaced file-system errors
    never abort the run: they are counted (and fed to *telemetry*'s
    error ledger under the ``serve`` label) and the stream continues —
    the service analogue of the fault campaigns' "degraded, never
    down" discipline.
    """
    ops: Dict[str, int] = {}
    errors: Dict[str, int] = {}
    rejections: List[int] = []
    bytes_put = 0
    bytes_got = 0
    for req in stream:
        storage.advance(req.arrival_ns)
        ops[req.op] = ops.get(req.op, 0) + 1
        start_ns = storage.sim_ns()
        try:
            if req.op == "put":
                storage.put(req.tenant, req.data, obj_id=req.obj_id)
                bytes_put += len(req.data)
            elif req.op == "get":
                bytes_got += len(storage.get(req.tenant, req.obj_id))
            elif req.op == "exists":
                storage.exists(req.tenant, req.obj_id)
            elif req.op == "delete":
                storage.delete(req.tenant, req.obj_id)
            else:
                storage.list_objects(req.tenant)
        except BusyError:
            rejections.append(req.index)
            errors["EAGAIN"] = errors.get("EAGAIN", 0) + 1
            if telemetry is not None:
                telemetry.record_error("serve", req.op, "EAGAIN")
            continue
        except FSError as exc:
            errors[exc.errno_name] = errors.get(exc.errno_name, 0) + 1
            if telemetry is not None:
                telemetry.record_error("serve", req.op, exc.errno_name)
            continue
        if telemetry is not None:
            telemetry.record_op("serve", req.op,
                                storage.sim_ns() - start_ns)
    return {
        "schema": LOAD_REPORT_SCHEMA,
        "requests": len(stream),
        "ops": dict(sorted(ops.items())),
        "errors": dict(sorted(errors.items())),
        "rejected": len(rejections),
        "rejections": rejections,
        "bytes_put": bytes_put,
        "bytes_got": bytes_got,
        "sim_ns": storage.sim_ns(),
    }


def dump_objects(storage: ObjStorage,
                 tenants: List[str]) -> Dict[str, Dict[str, bytes]]:
    """Every tenant's live objects as ``{tenant: {id: bytes}}`` — the
    byte-level state the differential suite compares."""
    out: Dict[str, Dict[str, bytes]] = {}
    for tenant in tenants:
        out[tenant] = {obj_id: storage.get(tenant, obj_id)
                       for obj_id in storage.list_objects(tenant)}
    return out
