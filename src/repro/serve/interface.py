"""The object-storage interface served over the simulated file systems.

``repro.serve`` fronts the seven simulated PM file systems with an
swh-objstorage-style service: content-addressed objects (the object id
is the hex SHA-256 of the bytes) in per-tenant namespaces, with a small
put/get/exists/delete/list verb set.  Every concrete storage — the
in-memory reference, the FS-backed backend, the multiplexer that routes
tenants across a fleet, and the RPC client — implements
:class:`ObjStorage`, and the conformance suite in ``tests/test_serve.py``
runs the same behavioural checks against all of them.

Errors reuse the :mod:`repro.errors` POSIX hierarchy so a served error
carries the same errno name the underlying file system surfaced
(``ENOENT`` for a missing object, ``EROFS`` on a degraded mount,
``EAGAIN`` for an admission-control rejection), which is what lets the
SLO error ledger account service failures with no translation layer.
"""

from __future__ import annotations

import hashlib
import re
from abc import ABC, abstractmethod
from typing import List, Optional

from ..errors import InvalidArgumentError

__all__ = ["ObjStorage", "compute_obj_id", "check_obj_id", "check_tenant",
           "OBJ_ID_LEN"]

#: hex SHA-256 digest length
OBJ_ID_LEN = 64

_OBJ_ID_RE = re.compile(r"[0-9a-f]{64}$")
_TENANT_RE = re.compile(r"[A-Za-z0-9_-]{1,64}$")


def compute_obj_id(data: bytes) -> str:
    """The content address: hex SHA-256 of the object bytes."""
    return hashlib.sha256(data).hexdigest()


def check_obj_id(obj_id: str) -> str:
    if not isinstance(obj_id, str) or not _OBJ_ID_RE.match(obj_id):
        raise InvalidArgumentError(f"malformed object id {obj_id!r}")
    return obj_id


def check_tenant(tenant: str) -> str:
    """Tenant names become path components; keep them boring."""
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise InvalidArgumentError(f"invalid tenant name {tenant!r}")
    return tenant


class ObjStorage(ABC):
    """Abstract multi-tenant object storage.

    Semantics shared by every implementation (and asserted by the
    conformance mixin):

    * ``put`` is idempotent — re-putting bytes that already exist for
      the tenant is a no-op returning the same id; a caller-supplied
      ``obj_id`` that does not match the content raises ``EINVAL``.
    * ``get``/``delete`` of an absent id raise ``ENOENT``
      (:class:`~repro.errors.NotFoundError`).
    * Tenants are fully isolated namespaces: ids never leak across
      tenants, and ``list_objects`` returns one tenant's ids sorted.
    * ``sim_ns`` is the storage's consumed simulated time — monotone
      non-decreasing across operations, and the quantity the
      differential suite proves identical between a multiplexed stream
      and the same stream run directly against the backends.
    """

    #: label used in metrics and telemetry series
    name: str = "objstorage"

    @abstractmethod
    def put(self, tenant: str, data: bytes,
            obj_id: Optional[str] = None) -> str:
        """Store *data*; returns its object id."""

    @abstractmethod
    def get(self, tenant: str, obj_id: str) -> bytes: ...

    @abstractmethod
    def exists(self, tenant: str, obj_id: str) -> bool: ...

    @abstractmethod
    def delete(self, tenant: str, obj_id: str) -> None: ...

    @abstractmethod
    def list_objects(self, tenant: str) -> List[str]:
        """Sorted object ids currently stored for *tenant*."""

    @abstractmethod
    def sim_ns(self) -> float:
        """Simulated nanoseconds this storage has consumed."""

    # -- optional hooks (no-ops by default) ---------------------------------

    def advance(self, arrival_ns: float) -> None:
        """Tell the storage the open-loop arrival clock reached
        *arrival_ns*.  Only the multiplexer's admission control cares;
        plain backends ignore it."""

    def attach_telemetry(self, telemetry) -> None:
        """Attach an SLO telemetry frame to any underlying simulated
        file systems; storages without one ignore it."""

    def _resolve_put(self, tenant: str, data: bytes,
                     obj_id: Optional[str]) -> str:
        """Shared put-argument validation: returns the content id."""
        check_tenant(tenant)
        if not isinstance(data, (bytes, bytearray)):
            raise InvalidArgumentError("object payload must be bytes")
        computed = compute_obj_id(bytes(data))
        if obj_id is not None and check_obj_id(obj_id) != computed:
            raise InvalidArgumentError(
                f"object id {obj_id[:16]}... does not match content "
                f"{computed[:16]}...")
        return computed
