"""WineFS: the hugepage-aware PM file system (paper §3).

Specializes :class:`~repro.fs.common.base.BaseFS` with the design choices
the paper lists in §3.2:

* alignment-aware allocation (large requests -> aligned extents, small ->
  holes), via :class:`~repro.core.allocator.AlignmentAwareAllocator`;
* per-CPU undo journals, coordinated through VFS inode locks;
* in-place metadata with dedicated locations ("controlled fragmentation");
* hybrid data atomicity in strict mode: data journaling for
  hugepage-aligned extents (layout preserved), copy-on-write into fresh
  holes for everything else;
* DRAM indexes (RB-tree directory indexes, from BaseFS);
* aligned-hugepage allocation inside the page-fault handler, which is what
  makes ftruncate-style applications (LMDB) get hugepages on WineFS;
* reactive rewriting, alignment xattrs with directory inheritance;
* real crash recovery: metadata is serialized to PM (inode slots, journal
  entries), so a crash image can be remounted and is rolled back / scanned
  exactly as the paper describes (§3.6, §5.2).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional

from ..clock import SimContext
from ..errors import (CorruptionError, FSError, InvalidArgumentError,
                      MediaError, NotFoundError)
from ..faults import MAX_WRITE_RETRIES
from ..mmu.cache import CacheModel
from ..mmu.mmap_region import MappedRegion
from ..mmu.tlb import TLB
from ..params import BLOCK_SIZE, BLOCKS_PER_HUGEPAGE
from ..pm.device import PMDevice
from ..structures.extents import Extent, ExtentList
from ..vfs.interface import OpenFile
from ..fs.common.base import BaseFS, ROOT_INO
from ..fs.common.inode import Inode, InodeTable, INODE_BYTES
from .allocator import AlignmentAwareAllocator
from .journal import JournalManager, MAX_TXN_ENTRIES
from .layout import (INLINE_EXTENTS, EXTENTS_PER_INDIRECT, InodePacker,
                     InodeRecord, Layout, pack_indirect, read_superblock,
                     unpack_inode, write_superblock)
from .numa_policy import NumaPolicy
from .rewrite import RewriteQueue

XATTR_ALIGNED = "user.winefs.aligned"
#: superblock byte offset where per-CPU inode watermarks live
_WATERMARK_OFF = 64


class _PerCPUInodeTables:
    """Facade over per-CPU inode tables with the InodeTable interface."""

    def __init__(self, layout: Layout) -> None:
        self._layout = layout
        self.tables = [InodeTable(first_ino=layout.first_ino(cpu),
                                  capacity=layout.inodes_per_cpu)
                       for cpu in range(layout.num_cpus)]
        # flat ino -> Inode mirror of the per-CPU tables, so the data-path
        # get() is one dict probe instead of a table dispatch
        self._by_ino: Dict[int, Inode] = {}

    def allocate(self, is_dir: bool = False, owner_cpu: int = 0) -> Inode:
        cpu = owner_cpu % len(self.tables)
        # overflow to other CPUs' tables when local is exhausted
        for i in range(len(self.tables)):
            table = self.tables[(cpu + i) % len(self.tables)]
            if table.free_count > 0:
                inode = table.allocate(is_dir=is_dir, owner_cpu=owner_cpu)
                self._by_ino[inode.ino] = inode
                return inode
        raise FSError("all per-CPU inode tables exhausted")

    def free(self, ino: int) -> None:
        self.tables[self._layout.cpu_of_ino(ino)].free(ino)
        self._by_ino.pop(ino, None)

    def get(self, ino: int) -> Optional[Inode]:
        return self._by_ino.get(ino)

    def adopt(self, inode: Inode) -> None:
        self.tables[self._layout.cpu_of_ino(inode.ino)].adopt(inode)
        self._by_ino[inode.ino] = inode

    def __contains__(self, ino: int) -> bool:
        return self.get(ino) is not None

    def __len__(self) -> int:
        # the flat mirror tracks exactly the live inodes across all tables
        return len(self._by_ino)

    def live_inodes(self) -> List[Inode]:
        out: List[Inode] = []
        for t in self.tables:
            out.extend(t.live_inodes())
        return out


class _MetaTxnScope:
    """Hand-rolled context manager for :meth:`WineFS._meta_txn`.

    The metadata paths open ~2 of these per operation; a generator-based
    ``@contextmanager`` costs two object allocations and two extra frame
    resumptions per use, which is measurable at aging scale.
    """

    __slots__ = ("_fs", "_ctx", "_entries", "_txn", "_stack", "_lock")

    def __init__(self, fs: "WineFS", ctx: SimContext, entries: int) -> None:
        self._fs = fs
        self._ctx = ctx
        self._entries = entries

    def __enter__(self) -> None:
        self._txn, self._stack, self._lock = \
            self._fs._txn_enter(self._ctx, self._entries)

    def __exit__(self, exc_type, exc, tb) -> bool:
        txn = self._txn
        if txn is not None:
            ctx = self._ctx
            self._stack.pop()
            txn.commit(ctx)
            if self._lock is not None:
                ctx.locks.release(self._lock, ctx.cpu)
        return False


class WineFS(BaseFS):
    """The paper's file system.  ``mode`` is "strict" (default: atomic,
    synchronous data + metadata) or "relaxed" (metadata-only consistency,
    like ext4-DAX), per §3.3."""

    fault_zero_fill = False       # WineFS zeroes at allocation time

    def __init__(self, device: PMDevice, num_cpus: int = 4,
                 mode: str = "strict",
                 track_data: Optional[bool] = None) -> None:
        if mode not in ("strict", "relaxed"):
            raise InvalidArgumentError(f"unknown mode {mode!r}")
        self.mode = mode
        self.layout = Layout(num_cpus=num_cpus,
                             total_blocks=device.size // BLOCK_SIZE)
        super().__init__(device, num_cpus, track_data=track_data)
        self.name = "WineFS" if mode == "strict" else "WineFS-relaxed"
        self.data_consistent = (mode == "strict")
        self.allocator: Optional[AlignmentAwareAllocator] = None
        self.journal: Optional[JournalManager] = None
        self.rewrite_queue = RewriteQueue(self)
        self.numa_policy: Optional[NumaPolicy] = None
        if device.topology is not None and device.topology.nodes > 1:
            self.numa_policy = NumaPolicy(
                device.topology, self._free_space_of_node)
        self._txn_stack: Dict[int, list] = {}
        self._indirect_chains: Dict[int, List[int]] = {}
        self._serialized_extents: Dict[int, tuple] = {}
        self._packer = InodePacker()
        # ino -> PM slot address; a pure function of the (fixed) layout,
        # so never invalidated.  A plain dict probe beats the lru_cache
        # wrapper on layout.inode_addr, which re-hashes the frozen
        # dataclass on every call — measurable at one persist per
        # metadata update
        self._inode_addrs: Dict[int, int] = {}

    # ------------------------------------------------------------- lifecycle

    def _metadata_blocks(self) -> int:
        return Layout(num_cpus=self.layout.num_cpus,
                      total_blocks=self.device.size // BLOCK_SIZE
                      ).data_start_block

    def mkfs(self, ctx: SimContext) -> None:
        # a fresh format clears any degradation from a previous mount
        # (and closes the degraded interval on an attached timeline)
        self.clear_degraded(ctx)
        self._itable = _PerCPUInodeTables(self.layout)
        self._dirs = {}
        self._indirect_chains = {}
        self._serialized_extents = {}
        self._packer = InodePacker()
        self.journal = JournalManager(self.device, self.layout)
        self._init_allocator()
        root = self._itable.allocate(is_dir=True)
        assert root.ino == ROOT_INO
        root.name, root.parent_ino = "", 0
        self._dirs[ROOT_INO] = self.dir_index_cls()
        write_superblock(self.device, self.layout, clean=False)
        self._persist_watermarks(ctx)
        self._persist_inode_record(root, ctx)
        ctx.charge(self.machine.persist_ns(4096))
        self.mounted = True

    def _init_allocator(self) -> None:
        self.allocator = AlignmentAwareAllocator(self.layout,
                                                faults=self.device.faults)

    def attach_fault_plan(self, plan) -> None:
        """Bind a fault plan to the device *and* the live allocator.

        ``device.set_fault_plan`` alone is enough before ``mkfs``/
        ``mount`` (the allocator picks the plan up when it is built);
        this also rebinds an allocator that already exists.
        """
        self.device.set_fault_plan(plan)
        if self.allocator is not None:
            self.allocator.set_fault_plan(plan)

    def mount(self, ctx: SimContext) -> None:
        """Mount from the PM image alone: recover journals, scan inodes.

        This is the real recovery path (§3.6): uncommitted transactions are
        rolled back in global-ID order, then DRAM structures (directory
        indexes, allocator free lists, inode in-use lists) are rebuilt by
        scanning the per-CPU inode tables.

        Degradation ladder: metadata reads that hit poisoned lines surface
        ``EIO`` (:class:`~repro.errors.MediaError` is an ``FSError``);
        journal records that fail their checksum are skipped; either event
        completes the mount **read-only** instead of refusing to mount.
        """
        with ctx.trace.span(ctx, "winefs.recover", fs=self.name):
            layout, clean = read_superblock(self.device)
            if layout.num_cpus != self.layout.num_cpus or \
                    layout.total_blocks != self.layout.total_blocks:
                raise CorruptionError("superblock geometry mismatch")
            self.journal = JournalManager(self.device, self.layout)
            if not clean:
                self.journal.recover()
                if self.journal.skipped_records:
                    self._degrade(
                        ctx, f"journal recovery skipped "
                        f"{self.journal.skipped_records} corrupt records")
            self._rebuild_from_scan(ctx)
            if not self.read_only:
                write_superblock(self.device, self.layout, clean=False)
            self.mounted = True

    def _degrade(self, ctx: Optional[SimContext], reason: str) -> None:
        """Remount read-only and make the event observable."""
        if self.read_only:
            return
        self.remount_read_only(reason, ctx)
        if ctx is not None:
            ctx.counters.registry.counter("fs_degraded", fs=self.name).inc()
            if ctx.trace.enabled:
                now = ctx.now
                ctx.trace.record("fs.degraded", ctx.cpu, now, now,
                                 fs=self.name, reason=reason)

    def unmount(self, ctx: SimContext) -> None:
        self._check_mounted()
        # §3.6: DRAM structures are serialized to PM on clean unmount; we
        # charge the serialization and rely on the inode scan at mount (the
        # stored free lists are an optimization, not a correctness need).
        stats_bytes = 64 * len(self._itable)
        ctx.charge(self.machine.persist_ns(stats_bytes))
        write_superblock(self.device, self.layout, clean=True)
        self.device.drain()
        self.mounted = False

    def _rebuild_from_scan(self, ctx: SimContext) -> None:
        self._itable = _PerCPUInodeTables(self.layout)
        self._dirs = {}
        self._indirect_chains = {}
        self._serialized_extents = {}
        self._packer = InodePacker()
        records: List[InodeRecord] = []
        lost: List[int] = []
        watermarks = self._load_watermarks()
        # parallel scan (§5.2): each CPU scans its own table; charge the
        # makespan of the largest table to every CPU's clock share
        for cpu in range(self.layout.num_cpus):
            scan_ctx = ctx.on_cpu(cpu)
            first = self.layout.first_ino(cpu)
            for slot in range(watermarks[cpu]):
                ino = first + slot
                try:
                    raw = self.device.load(self.layout.inode_addr(ino),
                                           INODE_BYTES, scan_ctx)
                    rec = unpack_inode(
                        ino, raw,
                        read_indirect=lambda b: self.device.load(
                            b * BLOCK_SIZE, BLOCK_SIZE, scan_ctx))
                except MediaError:
                    # poisoned inode slot (or indirect block): the record
                    # is unreadable — skip it and degrade instead of
                    # failing the whole mount
                    lost.append(ino)
                    continue
                if rec is not None:
                    records.append(rec)
        used: List[Extent] = []
        for rec in records:
            try:
                chain = self._scan_indirect_chain(rec.ino)
            except MediaError:
                lost.append(rec.ino)
                continue
            inode = rec.to_inode()
            inode.parent_ino, inode.name = rec.parent_ino, rec.name
            inode.owner_cpu = self.layout.cpu_of_ino(rec.ino) \
                % self.layout.num_cpus
            self._itable.adopt(inode)
            if inode.is_dir:
                self._dirs[inode.ino] = self.dir_index_cls()
            used.extend(inode.extents)
            used.extend(Extent(b, 1) for b in chain)
        if lost:
            self._degrade(ctx, f"{len(lost)} unreadable inode slots "
                               f"(inos {sorted(lost)[:8]}...)")
        # second pass: rebuild directory indexes from parent pointers; in
        # a degraded mount, children whose parent was lost are dropped
        # (recursively) rather than aborting the mount
        dropped = True
        while dropped:
            dropped = False
            for inode in self._itable.live_inodes():
                if inode.ino == ROOT_INO:
                    continue
                parent = self._itable.get(inode.parent_ino)
                if parent is None or not parent.is_dir:
                    if not self.read_only:
                        raise CorruptionError(
                            f"inode {inode.ino} has dangling parent "
                            f"{inode.parent_ino}")
                    self._dirs.pop(inode.ino, None)
                    self._itable.free(inode.ino)
                    dropped = True
        for inode in self._itable.live_inodes():
            if inode.ino == ROOT_INO:
                continue
            self._dirs[inode.parent_ino].insert(inode.name, inode.ino)
        self._init_allocator()
        assert self.allocator is not None
        self.allocator.rebuild_from_inodes(used)

    def _scan_indirect_chain(self, ino: int) -> List[int]:
        """Blocks used by an inode's indirect extent chain (from PM)."""
        from .layout import _INODE_HEAD
        raw = self.device.load(self.layout.inode_addr(ino), INODE_BYTES)
        indirect = _INODE_HEAD.unpack(raw[:_INODE_HEAD.size])[6]
        chain: List[int] = []
        while indirect:
            chain.append(indirect)
            blob = self.device.load(indirect * BLOCK_SIZE, 8)
            indirect = struct.unpack_from("<Q", blob, 0)[0]
        self._indirect_chains[ino] = list(chain)
        return chain

    # ------------------------------------------------------- watermarks

    def _persist_watermarks(self, ctx: Optional[SimContext] = None) -> None:
        assert isinstance(self._itable, _PerCPUInodeTables)
        raw = b"".join(
            struct.pack("<I", t._next - t.first_ino)
            for t in self._itable.tables)
        self.device.persist(_WATERMARK_OFF, raw,
                            ctx if ctx is not None else None)

    def _load_watermarks(self) -> List[int]:
        raw = self.device.load(_WATERMARK_OFF, 4 * self.layout.num_cpus)
        marks = [struct.unpack_from("<I", raw, 4 * i)[0]
                 for i in range(self.layout.num_cpus)]
        return [min(m, self.layout.inodes_per_cpu) for m in marks]

    # ------------------------------------------------------- transactions

    def _meta_txn(self, ctx: SimContext, entries: int,
                  ino: Optional[int] = None) -> "_MetaTxnScope":
        assert self.journal is not None
        return _MetaTxnScope(self, ctx, entries)

    def _txn_enter(self, ctx: SimContext, entries: int):
        """Open a journal transaction unless one encloses this CPU already.

        Returns (txn, stack, lock_name): txn is None for a nested join,
        lock_name is None unless the shared-journal lock was taken.
        """
        stack = self._txn_stack.get(ctx.cpu)
        if stack is None:
            stack = self._txn_stack[ctx.cpu] = []
        elif stack:
            # nested operation joins the enclosing transaction
            return None, stack, None
        # journals are per-logical-CPU; when the workload runs more CPUs
        # than the FS has journals (e.g. the single-journal ablation), the
        # shared journal serializes its writers
        lock_name = None
        if self.layout.num_cpus < ctx.clock.num_cpus:
            lock_name = f"winefs-journal:{ctx.cpu % self.layout.num_cpus}"
            ctx.locks.acquire(lock_name, ctx.cpu)
        txn = self.journal.begin(ctx, entries_hint=min(entries,
                                                       MAX_TXN_ENTRIES))
        stack.append(txn)
        return txn, stack, lock_name

    def _active_txn(self, ctx: SimContext):
        stack = self._txn_stack.get(ctx.cpu)
        return stack[-1] if stack else None

    # ------------------------------------------------------- inode persistence

    def _alloc_inode(self, is_dir: bool, ctx: SimContext) -> Inode:
        assert isinstance(self._itable, _PerCPUInodeTables)
        inode = self._itable.allocate(is_dir=is_dir, owner_cpu=ctx.cpu)
        txn = self._active_txn(ctx)
        if txn is not None:
            txn.log_undo(_WATERMARK_OFF, ctx)
        self._persist_watermarks(ctx)
        return inode

    def _free_inode(self, inode: Inode, ctx: Optional[SimContext] = None) -> None:
        # invalidate the slot on PM (valid byte -> 0), undo-logging the old
        # record first so a mid-transaction crash can roll the inode back
        # (CrashMonkey's rename-clobber workload catches the unlogged case)
        addr = self.layout.inode_addr(inode.ino)
        if ctx is not None:
            txn = self._active_txn(ctx)
            if txn is not None:
                txn.log_undo_range(addr, INODE_BYTES, ctx)
        self.device.persist(addr, b"\x00", ctx)
        self._serialized_extents.pop(inode.ino, None)
        self._packer.drop(inode.ino)
        for block in self._indirect_chains.pop(inode.ino, []):
            assert self.allocator is not None
            self.allocator.free(Extent(block, 1))
        self._itable.free(inode.ino)

    def _persist_inode(self, inode: Inode, ctx: SimContext) -> None:
        stack = self._txn_stack.get(ctx.cpu)
        self._persist_inode_record(inode, ctx, stack[-1] if stack else None)

    def _persist_inode_record(self, inode: Inode, ctx: SimContext,
                              txn=None) -> None:
        """Serialize the inode to its PM slot (and indirect chain).

        The chain is updated incrementally: when extents only changed at
        or past a known index (the common append case), only the affected
        chain blocks are rewritten — a real extent tree also touches only
        the modified leaves.
        """
        new_tuple = inode.extents.as_tuple()
        nnew = len(new_tuple)
        ino = inode.ino
        prev = self._serialized_extents.get(ino)
        old_chain = self._indirect_chains.get(ino)
        if prev is new_tuple and nnew <= INLINE_EXTENTS and not old_chain:
            # size-only update of an inline-extent inode: no chain work,
            # same undo image and slot rewrite as the general path below
            if old_chain is None:
                self._indirect_chains[ino] = []
            addr = self._inode_addrs.get(ino)
            if addr is None:
                addr = self._inode_addrs[ino] = self.layout.inode_addr(ino)
            packed = self._packer.pack(inode, new_tuple, 0)
            if txn is not None:
                txn.log_undo_range_persist(addr, INODE_BYTES, packed, ctx)
            else:
                self.device.persist(addr, packed, ctx)
            return
        assert self.allocator is not None
        extents = new_tuple
        addr = self._inode_addrs.get(ino)
        if addr is None:
            addr = self._inode_addrs[ino] = self.layout.inode_addr(ino)
        prev_len = len(prev) if prev is not None else 0
        lcp = 0
        if prev is new_tuple:
            # unchanged since the last serialize (size-only update)
            lcp = prev_len
        elif prev is not None:
            n = min(prev_len, nnew)
            while lcp < n and prev[lcp] == new_tuple[lcp]:
                lcp += 1
        # append-only: everything except possibly the last old extent
        # (which may have grown by coalescing) is unchanged
        append_only = (prev is not None
                       and nnew >= prev_len
                       and lcp >= prev_len - 1)
        self._serialized_extents[ino] = new_tuple
        if append_only and nnew <= INLINE_EXTENTS and not old_chain:
            # hot aging path (inline-extent append): the general
            # append-only branch below reduces to exactly this
            if old_chain is None:
                self._indirect_chains[ino] = []
            packed = self._packer.pack(inode, new_tuple, 0)
            if txn is not None:
                txn.log_undo_range_persist(addr, INODE_BYTES, packed, ctx)
            else:
                self.device.persist(addr, packed, ctx)
            return
        if old_chain is None:
            old_chain = []
        overflow = extents[INLINE_EXTENTS:]
        n_old = len(old_chain)
        needed = (len(overflow) + EXTENTS_PER_INDIRECT - 1) \
            // EXTENTS_PER_INDIRECT
        if append_only and needed >= n_old:
            # in-place incremental update: old entries are never
            # overwritten, so rolling back the header alone is safe
            chain = list(old_chain)
            while len(chain) < needed:
                chain.append(self.allocator.alloc_meta_block(ctx).start)
            first_dirty = min(lcp, max(0, nnew - 1))
            start_block = max(0, (first_dirty - INLINE_EXTENTS)
                              // EXTENTS_PER_INDIRECT) if needed else 0
            if len(chain) != n_old:
                start_block = min(start_block, max(0, n_old - 1))
            for i in reversed(range(start_block, needed)):
                chunk = overflow[i * EXTENTS_PER_INDIRECT:
                                 (i + 1) * EXTENTS_PER_INDIRECT]
                nxt = chain[i + 1] if i + 1 < needed else 0
                blob = pack_indirect(nxt, chunk)
                dirty_idx = first_dirty - INLINE_EXTENTS \
                    - i * EXTENTS_PER_INDIRECT
                if i < n_old and len(chain) == n_old \
                        and i == needed - 1 and dirty_idx > 0:
                    # write only the modified tail entries of the leaf
                    lo = 8 + dirty_idx * 8
                    hi = 8 + len(chunk) * 8
                    self.device.persist(chain[i] * BLOCK_SIZE + lo,
                                        blob[lo:hi], ctx)
                else:
                    self.device.persist(chain[i] * BLOCK_SIZE, blob, ctx)
            if txn is not None:
                if first_dirty >= INLINE_EXTENTS:
                    # header entry alone suffices: n_extents gates how much
                    # of the (suffix-extended) chain is live
                    txn.log_undo(addr, ctx)
                else:
                    txn.log_undo_range(addr, INODE_BYTES, ctx)
        else:
            # structural change (CoW replace, truncate, first serialize):
            # copy-on-write the chain so the old blocks stay intact for
            # rollback; the header pointer swap is the atomic commit point
            chain = [self.allocator.alloc_meta_block(ctx).start
                     for _ in range(needed)]
            for i in reversed(range(needed)):
                chunk = overflow[i * EXTENTS_PER_INDIRECT:
                                 (i + 1) * EXTENTS_PER_INDIRECT]
                nxt = chain[i + 1] if i + 1 < needed else 0
                self.device.store(chain[i] * BLOCK_SIZE,
                                  pack_indirect(nxt, chunk))
                self.device.clwb(chain[i] * BLOCK_SIZE, BLOCK_SIZE)
            if needed:
                self.device.sfence()
            # cost model: a real extent B+tree (keyed by logical offset)
            # rewrites only the leaves whose entries changed — a middle
            # replace does not shift its suffix — so charge only for the
            # entries outside the common prefix and common suffix
            lcs = 0
            max_lcs = min(prev_len, nnew) - lcp
            while lcs < max_lcs and prev is not None \
                    and prev[prev_len - 1 - lcs] == new_tuple[nnew - 1 - lcs]:
                lcs += 1
            changed = (nnew - lcp - lcs) + (prev_len - lcp - lcs)
            ctx.charge(self.machine.persist_ns(64 + changed * 8))
            ctx.counters.pm_bytes_written += 64 + changed * 8
            for surplus in old_chain:
                self.allocator.free(Extent(surplus, 1))
            if txn is not None:
                # the name region never changes on a data-path update, so
                # only the header + inline-extent area needs an undo image
                txn.log_undo_range(addr, 72, ctx)
        self._indirect_chains[ino] = chain
        indirect0 = chain[0] if chain else 0
        self.device.persist(addr, self._packer.pack(inode, new_tuple,
                                                    indirect0), ctx)

    # ------------------------------------------------------- allocation hooks

    def _alloc(self, nblocks: int, ctx: SimContext, *,
               goal: Optional[int] = None,
               want_aligned: bool = False) -> List[Extent]:
        assert self.allocator is not None
        return self.allocator.alloc(nblocks, ctx, want_aligned=want_aligned)

    def _free(self, extents: List[Extent], ctx: SimContext) -> None:
        assert self.allocator is not None
        self.allocator.free_all(extents, ctx)

    def _ensure_blocks(self, inode: Inode, end_byte: int, ctx: SimContext,
                       want_aligned: Optional[bool] = None) -> None:
        # honor the alignment xattr / directory inheritance (§3.6): files
        # marked aligned get whole aligned extents even for small growth
        if want_aligned is None and inode.aligned_hint:
            needed = (end_byte + self.block_size - 1) // self.block_size \
                - inode.extents.total_blocks
            if needed > 0:
                rounded = ((needed + BLOCKS_PER_HUGEPAGE - 1)
                           // BLOCKS_PER_HUGEPAGE) * BLOCKS_PER_HUGEPAGE
                for ext in self._alloc(rounded, ctx, want_aligned=True):
                    inode.extents.append(ext)
            return
        super()._ensure_blocks(inode, end_byte, ctx, want_aligned)

    def alloc_for_fault(self, inode: Inode, logical_block: int,
                        ctx: SimContext) -> None:
        """Demand allocation inside the fault handler hands out *aligned
        hugepage extents* ("hugepage handling on page faults", §3.6) --
        this is why LMDB-style ftruncate growth still gets hugepages."""
        assert self.allocator is not None
        if ctx.trace.enabled:
            with ctx.trace.span(ctx, "fault.alloc", ino=inode.ino,
                                block=logical_block):
                self._alloc_for_fault_impl(inode, logical_block, ctx)
            return
        self._alloc_for_fault_impl(inode, logical_block, ctx)

    def _alloc_for_fault_impl(self, inode: Inode, logical_block: int,
                              ctx: SimContext) -> None:
        assert self.allocator is not None
        while inode.extents.total_blocks <= logical_block:
            ext = self.allocator.alloc_aligned_for_fault(
                ctx.cpu % self.layout.num_cpus)
            if ext is None:
                exts = self.allocator.alloc(
                    min(BLOCKS_PER_HUGEPAGE,
                        logical_block + 1 - inode.extents.total_blocks),
                    ctx, want_aligned=False)
                for e in exts:
                    inode.extents.append(e)
            else:
                inode.extents.append(ext)
        # zeroing newly allocated space happens at allocation, as NOVA
        # does
        ctx.charge(self.machine.pm_write_ns(self.block_size))
        self._persist_inode(inode, ctx)

    # ------------------------------------------------------- data path

    def _write_data(self, inode: Inode, offset: int, data: bytes,
                    ctx: SimContext) -> None:
        """Hybrid data atomicity (§3.4).

        Strict mode: overwrites of hugepage-backed ranges are data-
        journaled in place; overwrites of hole-backed ranges are CoW'd into
        fresh holes; appends past the old size write in place (size update
        gates visibility).  Relaxed mode: always in place.
        """
        old_size = inode.size
        overwrite_len = max(0, min(len(data), old_size - offset))
        if self.mode == "relaxed" or overwrite_len == 0:
            self._write_in_place(inode, offset, data, ctx)
            return
        over = data[:overwrite_len]
        if self._range_is_aligned(inode, offset, overwrite_len):
            # data journaling: write data once to the journal, then in place
            if ctx.trace.enabled:
                with ctx.trace.span(ctx, "winefs.data_journal",
                                    ino=inode.ino, size=len(over)):
                    self._data_journal_write(inode, offset, over, ctx)
            else:
                self._data_journal_write(inode, offset, over, ctx)
        else:
            self._write_cow(inode, offset, over, ctx)
        tail = data[overwrite_len:]
        if tail:
            self._write_in_place(inode, offset + overwrite_len, tail, ctx)

    def _data_journal_write(self, inode: Inode, offset: int, over: bytes,
                            ctx: SimContext) -> None:
        journal_ns = self.machine.persist_ns(len(over))
        ctx.charge(journal_ns)
        ctx.counters.journal_ns += journal_ns
        ctx.counters.pm_bytes_written += len(over)
        self._write_in_place(inode, offset, over, ctx)

    def _range_is_aligned(self, inode: Inode, offset: int,
                          length: int) -> bool:
        """Are all physical blocks of [offset, +length) inside aligned
        hugepage runs?"""
        first = offset // self.block_size
        last = (offset + length - 1) // self.block_size
        try:
            runs = inode.extents.slice_logical(first, last - first + 1)
        except IndexError:
            return False
        return all(self._block_in_aligned_run(inode, ext) for ext in runs)

    def _block_in_aligned_run(self, inode: Inode, ext: Extent) -> bool:
        """Is *ext* fully inside a physically aligned hugepage that the
        file owns end-to-end?"""
        hp_start = ext.start - ext.start % BLOCKS_PER_HUGEPAGE
        hp_end = ext.end + (-ext.end % BLOCKS_PER_HUGEPAGE)
        # every touched hugepage must have been handed out from the
        # aligned pool (allocation provenance, not accidental alignment)
        assert self.allocator is not None
        for hp in range(hp_start // BLOCKS_PER_HUGEPAGE,
                        hp_end // BLOCKS_PER_HUGEPAGE):
            if not self.allocator.is_aligned_provenance(hp):
                return False
        # and the file must own every touched hugepage end to end
        for fe in inode.extents:
            if fe.start <= ext.start and ext.end <= fe.end:
                return fe.start <= hp_start and hp_end <= fe.end
        return False

    def _write_in_place(self, inode: Inode, offset: int, data: bytes,
                        ctx: SimContext) -> None:
        plan = self.device.faults
        if plan is not None and plan.wants_write_checks and data:
            # bounded retry-with-relocation: quarantine each failing
            # block, move its logical block to a fresh hole, and retry;
            # only an exhausted budget surfaces EIO to the caller
            first = offset // self.block_size
            nblocks = (offset + len(data) - 1) // self.block_size \
                - first + 1
            for attempt in range(MAX_WRITE_RETRIES + 1):
                bad = plan.failing_block(
                    self._phys_blocks_in(inode, first, nblocks), ctx)
                if bad is None:
                    break
                if attempt == MAX_WRITE_RETRIES:
                    plan.note("write_error", "surfaced", ctx, block=bad)
                    raise MediaError(
                        f"write to block {bad} failed after "
                        f"{MAX_WRITE_RETRIES} relocation attempts")
                self._relocate_bad_block(inode, bad, ctx)
                plan.note("write_error", "masked", ctx, block=bad)
        self._write_in_place_impl(inode, offset, data, ctx)

    def _phys_blocks_in(self, inode: Inode, first: int,
                        nblocks: int) -> Iterator[int]:
        for ext in inode.extents.slice_logical(first, nblocks):
            yield from range(ext.start, ext.end)

    def _relocate_bad_block(self, inode: Inode, bad: int,
                            ctx: SimContext) -> None:
        """Move one logical block off a failing physical block.

        The old content is still readable (the media only rejects
        writes), so it is salvaged into the replacement hole before the
        extent map is swung over in a journaled transaction.  The bad
        block itself stays quarantined, never freed.
        """
        assert self.allocator is not None
        logical = self._logical_of_phys(inode, bad)
        new_ext = self.allocator.relocate_block(bad, ctx)
        self._telemetry_event("relocation", ctx, block=bad,
                              dest=new_ext.start)
        ctx.charge(self.machine.pm_read_ns(self.block_size)
                   + self.machine.persist_ns(self.block_size))
        ctx.counters.pm_bytes_written += self.block_size
        if self.track_data:
            old = self.device.load(bad * self.block_size, self.block_size)
            self.device.store(new_ext.start * self.block_size, old)
            self.device.clwb(new_ext.start * self.block_size,
                             self.block_size)
            self.device.sfence()
        with self._meta_txn(ctx, entries=4, ino=inode.ino):
            inode.extents.replace_logical(logical, [new_ext])
            self._persist_inode(inode, ctx)

    def _logical_of_phys(self, inode: Inode, phys: int) -> int:
        logical = 0
        for ext in inode.extents:
            if ext.start <= phys < ext.end:
                return logical + (phys - ext.start)
            logical += ext.length
        raise FSError(f"block {phys} not mapped by inode {inode.ino}")

    def _write_in_place_impl(self, inode: Inode, offset: int, data: bytes,
                             ctx: SimContext) -> None:
        ns = self.machine.persist_ns(len(data))
        ctx.charge(ns)
        ctx.counters.pm_bytes_written += len(data)
        if self.track_data:
            if not self.device.track_stores:
                # one store per physical run; block-granular records are
                # only needed when the device is capturing store history
                first = offset // self.block_size
                last = (offset + len(data) - 1) // self.block_size
                within = offset % self.block_size
                pos = 0
                for ext in inode.extents.slice_logical(first,
                                                       last - first + 1):
                    take = min(ext.length * self.block_size - within,
                               len(data) - pos)
                    addr = ext.start * self.block_size + within
                    self.device.store(addr, data[pos:pos + take])
                    self.device.clwb(addr, take)
                    pos += take
                    within = 0
                self.device.sfence()
                return
            pos = 0
            while pos < len(data):
                block = (offset + pos) // self.block_size
                within = (offset + pos) % self.block_size
                take = min(self.block_size - within, len(data) - pos)
                phys = inode.extents.physical_block(block)
                self.device.store(phys * self.block_size + within,
                                  data[pos:pos + take])
                self.device.clwb(phys * self.block_size + within, take)
                pos += take
            self.device.sfence()

    def _write_cow(self, inode: Inode, offset: int, data: bytes,
                   ctx: SimContext) -> None:
        """Copy-on-write into fresh unaligned holes (§3.4)."""
        assert self.allocator is not None
        if ctx.trace.enabled:
            with ctx.trace.span(ctx, "winefs.cow", ino=inode.ino,
                                size=len(data)):
                self._write_cow_impl(inode, offset, data, ctx)
            return
        self._write_cow_impl(inode, offset, data, ctx)

    def _write_cow_impl(self, inode: Inode, offset: int, data: bytes,
                        ctx: SimContext) -> None:
        assert self.allocator is not None
        first = offset // self.block_size
        last = (offset + len(data) - 1) // self.block_size
        nblocks = last - first + 1
        new_extents = self._alloc_cow_blocks(nblocks, ctx)
        head_pad = offset - first * self.block_size
        tail_end = (last + 1) * self.block_size
        tail_pad = tail_end - (offset + len(data))
        copy_bytes = len(data) + head_pad + tail_pad
        ctx.charge(self.machine.pm_read_ns(head_pad + tail_pad) +
                   self.machine.persist_ns(copy_bytes))
        ctx.counters.pm_bytes_written += copy_bytes
        if self.track_data:
            old = bytearray(self.read_blocks_raw(inode, first, nblocks))
            old[head_pad:head_pad + len(data)] = data
            pos = 0
            for ext in new_extents:
                take = ext.length * self.block_size
                self.device.store(ext.start * self.block_size,
                                  bytes(old[pos:pos + take]))
                self.device.clwb(ext.start * self.block_size, take)
                pos += take
            self.device.sfence()
        with self._meta_txn(ctx, entries=4, ino=inode.ino):
            old_extents = inode.extents.replace_logical(first, new_extents)
            self._persist_inode(inode, ctx)
        self.allocator.free_all(old_extents, ctx)

    def _alloc_cow_blocks(self, nblocks: int,
                          ctx: SimContext) -> List[Extent]:
        """Allocate CoW destination blocks, dodging write-failing ones.

        A failing destination is quarantined and the rest of the grab is
        returned to the pools (``free`` splits around quarantined
        blocks), then the allocation retries from a clean slate.
        """
        assert self.allocator is not None
        plan = self.device.faults
        if plan is None or not plan.wants_write_checks:
            return self.allocator.alloc(nblocks, ctx, want_aligned=False)
        for attempt in range(MAX_WRITE_RETRIES + 1):
            extents = self.allocator.alloc(nblocks, ctx,
                                           want_aligned=False)
            bad = plan.failing_block(
                (b for ext in extents
                 for b in range(ext.start, ext.end)), ctx)
            if bad is None:
                return extents
            self.allocator.quarantine(bad)
            self._telemetry_event("quarantine", ctx, block=bad)
            self.allocator.free_all(extents, ctx)
            if attempt == MAX_WRITE_RETRIES:
                plan.note("write_error", "surfaced", ctx, block=bad)
                raise MediaError(
                    f"CoW destination block {bad} failed after "
                    f"{MAX_WRITE_RETRIES} relocation attempts")
            plan.note("write_error", "masked", ctx, block=bad)
        raise AssertionError("unreachable")

    def read_blocks_raw(self, inode: Inode, first_block: int,
                        nblocks: int) -> bytes:
        chunks = []
        for ext in inode.extents.slice_logical(first_block, nblocks):
            chunks.append(self.device.load(ext.start * self.block_size,
                                           ext.length * self.block_size))
        return b"".join(chunks)

    def _fsync_impl(self, inode: Inode, ctx: SimContext) -> None:
        # every WineFS operation is synchronous (§3.3); fsync is a no-op
        # beyond the syscall crossing already charged
        return

    # ------------------------------------------------------- mmap & xattrs

    def mmap(self, ino: int, ctx: SimContext, length: Optional[int] = None,
             tlb: Optional[TLB] = None,
             cache: Optional[CacheModel] = None) -> MappedRegion:
        region = super().mmap(ino, ctx, length=length, tlb=tlb, cache=cache)
        inode = self._itable.get(ino)
        assert inode is not None
        nblocks = inode.extents.total_blocks
        if nblocks >= BLOCKS_PER_HUGEPAGE and \
                inode.extents.fragmentation_score() > 0.5:
            # §3.6: fragmented memory-mapped files queue for rewriting
            self.rewrite_queue.note_fragmented(ino)
        return region

    def setxattr(self, path: str, key: str, value: bytes,
                 ctx: SimContext) -> None:
        self._check_mounted()
        self._check_writable()
        self._syscall(ctx)
        inode = self._resolve(path, ctx)
        with self._meta_txn(ctx, entries=2, ino=inode.ino):
            inode.xattrs[key] = value
            if key == XATTR_ALIGNED:
                inode.aligned_hint = value == b"1"
            self._persist_inode(inode, ctx)

    def getxattr(self, path: str, key: str, ctx: SimContext) -> bytes:
        self._check_mounted()
        self._syscall(ctx)
        inode = self._resolve(path, ctx)
        if key not in inode.xattrs:
            if key == XATTR_ALIGNED and inode.aligned_hint:
                return b"1"
            raise NotFoundError(f"xattr {key} on {path}")
        return inode.xattrs[key]

    def _apply_dir_inheritance(self, parent: Inode, child: Inode) -> None:
        # §3.6: files directly within a directory inherit alignment
        # information from the parent directory's xattrs
        if parent.xattrs.get(XATTR_ALIGNED) == b"1":
            child.aligned_hint = True

    # ------------------------------------------------------- NUMA

    def _free_space_of_node(self, node: int) -> int:
        assert self.allocator is not None
        if self.device.topology is None:
            return self.allocator.free_blocks
        cpus = self.device.topology.cpus_of_node(node)
        return sum(self.allocator.pools[c % len(self.allocator.pools)]
                   .free_blocks for c in cpus)

    # ------------------------------------------------------- metrics

    def _free_pools(self):
        return self.allocator.pools if self.allocator is not None else None

    def _free_extent_iter(self) -> Iterator[Extent]:
        assert self.allocator is not None
        for pool in self.allocator.pools:
            yield from pool.extents()
