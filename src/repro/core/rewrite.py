"""Reactive rewriting of fragmented memory-mapped files (paper §3.6).

If WineFS finds at mmap time that a file is fragmented (it cannot be mapped
with hugepages), the file is queued; a background thread later reads it and
rewrites it with big (aligned) allocations, then uses a journal transaction
to atomically swap the old blocks for the new ones.  The paper notes this
is rare — applications using mmap usually make occasional large
allocations — but it exists as a safety net for files written with small
allocations and mapped later.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

from ..clock import SimContext
from ..params import BLOCKS_PER_HUGEPAGE

if TYPE_CHECKING:
    from .filesystem import WineFS


class RewriteQueue:
    """Queue of fragmented inodes plus the 'background thread' drain.

    There is no real thread: :meth:`run_pending` is invoked explicitly (by
    tests, benches, or the FS after mmap) and charges its work to the
    background CPU context it is given, which is exactly how the simulated
    timeline accounts for background bandwidth theft (§4's defragmentation
    discussion).
    """

    def __init__(self, fs: "WineFS") -> None:
        self._fs = fs
        self._pending: List[int] = []
        self._queued: Set[int] = set()
        self.rewrites_done = 0

    def __len__(self) -> int:
        return len(self._pending)

    def note_fragmented(self, ino: int) -> None:
        if ino not in self._queued:
            self._queued.add(ino)
            self._pending.append(ino)

    def run_pending(self, ctx: SimContext, limit: int = None) -> int:
        """Rewrite up to *limit* queued files; returns how many were done."""
        done = 0
        while self._pending and (limit is None or done < limit):
            ino = self._pending.pop(0)
            self._queued.discard(ino)
            if self._rewrite(ino, ctx):
                done += 1
                self.rewrites_done += 1
        return done

    def _rewrite(self, ino: int, ctx: SimContext) -> bool:
        fs = self._fs
        inode = fs._itable.get(ino)
        if inode is None or inode.is_dir:
            return False                      # unlinked while queued
        nblocks = inode.extents.total_blocks
        if nblocks < BLOCKS_PER_HUGEPAGE:
            return False                      # too small to matter
        if inode.extents.mappable_hugepages() * BLOCKS_PER_HUGEPAGE >= \
                nblocks - nblocks % BLOCKS_PER_HUGEPAGE:
            return False                      # already fully mappable
        # read the file, rewrite with big allocations, atomically swap
        try:
            new_extents = fs.allocator.alloc(nblocks, ctx, want_aligned=True)
        except Exception:
            return False                      # no aligned space; give up
        # background read of old data + write of new copy
        nbytes = nblocks * fs.block_size
        ctx.charge(fs.machine.pm_read_ns(nbytes) + fs.machine.pm_write_ns(nbytes))
        ctx.counters.pm_bytes_read += nbytes
        ctx.counters.pm_bytes_written += nbytes
        if fs.track_data:
            data = bytearray()
            for ext in inode.extents:
                data += fs.device.load(ext.start * fs.block_size,
                                       ext.length * fs.block_size)
            pos = 0
            for ext in new_extents:
                chunk = bytes(data[pos:pos + ext.length * fs.block_size])
                fs.device.store(ext.start * fs.block_size, chunk)
                fs.device.clwb(ext.start * fs.block_size, len(chunk))
                pos += ext.length * fs.block_size
            fs.device.sfence()
        # §3.6: "A journal transaction is used to atomically delete the old
        # file and point the directory entry to the new file."
        txn = fs.journal.begin(ctx, entries_hint=4)
        old = list(inode.extents)
        from ..structures.extents import ExtentList
        inode.extents = ExtentList(new_extents)
        inode.aligned_hint = True
        fs._persist_inode_record(inode, ctx, txn)
        txn.commit(ctx)
        fs.allocator.free_all(old, ctx)
        return True
