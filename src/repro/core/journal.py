"""WineFS per-CPU fine-grained undo journals.

Per paper §3.5/§3.6:

* one journal per logical CPU; a transaction starts in the CPU's journal
  and stays there even if the thread migrates;
* each entry is one 64B cacheline, persisted immediately (all metadata
  operations are synchronous);
* entry types START / DATA / COMMIT; DATA entries hold *undo* images
  (address + old bytes) so uncommitted transactions roll back in place;
* transaction IDs come from one atomic counter shared by all per-CPU
  journals, so recovery can order rollbacks globally;
* every entry carries a CRC32 over its full cacheline, so recovery can
  tell a torn or media-corrupted record from a valid one and skip it
  (counted in :attr:`JournalManager.skipped_records`; the mounting file
  system degrades to read-only when the count is non-zero);
* a per-CPU wraparound counter distinguishes live entries from stale ones
  after the circular journal wraps;
* a transaction reserves its worst-case entries (<= 10, i.e. 640B) before
  starting and waits for reclaim if the journal is full — since operations
  are synchronous, committed space is reclaimed immediately.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..clock import SimContext
from ..errors import ChecksumError, CorruptionError, FSError, MediaError
from ..params import BLOCK_SIZE, CACHELINE
from ..pm.device import PMDevice
from ..pm.zeros import Zeros
from .layout import Layout

ENTRY_BYTES = CACHELINE
TYPE_NONE = 0
TYPE_START = 1
TYPE_DATA = 2
TYPE_COMMIT = 3

#: entry header: type(1) pad(1) undo_len(2) wraparound(4) crc(4)
#: txn_id(8) addr(8).  The CRC32 covers the full 64B entry with the crc
#: field zeroed, so recovery detects torn 8-byte stores and bit rot.
_HEAD = struct.Struct("<BBHIIQQ")
_CRC_OFF = 8                                # byte offset of the crc field
UNDO_BYTES = ENTRY_BYTES - _HEAD.size      # 36B of undo payload per entry
MAX_TXN_ENTRIES = 10                        # §3.6: at most 10 entries / 640B


@dataclass(frozen=True)
class JournalEntry:
    etype: int
    wraparound: int
    txn_id: int
    addr: int
    undo: bytes

    def pack(self) -> bytes:
        if len(self.undo) > UNDO_BYTES:
            raise FSError("undo image exceeds one cacheline entry")
        head = _HEAD.pack(self.etype, 0, len(self.undo), self.wraparound,
                          0, self.txn_id, self.addr)
        raw = (head + self.undo).ljust(ENTRY_BYTES, b"\x00")
        crc = zlib.crc32(raw)
        return raw[:_CRC_OFF] + struct.pack("<I", crc) + raw[_CRC_OFF + 4:]

    @staticmethod
    def unpack(raw: bytes) -> Optional["JournalEntry"]:
        etype, _pad, undo_len, wrap, crc, txn_id, addr = _HEAD.unpack(
            raw[:_HEAD.size])
        if etype == TYPE_NONE:
            return None
        if etype not in (TYPE_START, TYPE_DATA, TYPE_COMMIT):
            raise CorruptionError(f"bad journal entry type {etype}")
        if undo_len > UNDO_BYTES:
            raise CorruptionError("undo length overflows entry")
        if zlib.crc32(raw[:_CRC_OFF] + b"\x00\x00\x00\x00"
                      + raw[_CRC_OFF + 4:ENTRY_BYTES]) != crc:
            raise ChecksumError(
                f"journal entry checksum mismatch (txn {txn_id})")
        return JournalEntry(etype, wrap, txn_id, addr,
                            raw[_HEAD.size:_HEAD.size + undo_len])


class PerCPUJournal:
    """One circular journal region on PM."""

    def __init__(self, device: PMDevice, layout: Layout, cpu: int) -> None:
        self.device = device
        self.cpu = cpu
        self.base = layout.journal_start(cpu) * BLOCK_SIZE
        self.capacity = layout.journal_blocks * BLOCK_SIZE // ENTRY_BYTES
        self.head = 0            # next slot to write (DRAM cursor)
        self.tail = 0            # oldest un-reclaimed slot
        self.wraparound = 1      # starts at 1 so zeroed PM reads as stale
        self.waits_for_space = 0
        # every entry is exactly one cacheline, so its persist cost is a
        # constant of the machine; computing it per append is pure waste
        self._entry_persist_ns = device.machine.persist_ns(ENTRY_BYTES)

    # -- space ----------------------------------------------------------------

    def _used(self) -> int:
        return self.head - self.tail

    def reserve(self, entries: int, ctx: SimContext) -> None:
        """Reserve worst-case space; waits (simulated) on a full journal."""
        if entries > MAX_TXN_ENTRIES:
            raise FSError(f"transaction needs {entries} > {MAX_TXN_ENTRIES} "
                          "entries")
        if self._used() + entries > self.capacity:
            # §3.6: "the thread waits till enough space is reclaimed".  All
            # our transactions are synchronous so reclaim is immediate; hit
            # this only on pathological misuse.
            self.waits_for_space += 1
            self.tail = self.head

    def _slot_addr(self, slot: int) -> int:
        return self.base + (slot % self.capacity) * ENTRY_BYTES

    def append(self, entry: JournalEntry, ctx: SimContext) -> None:
        addr = self._slot_addr(self.head)
        wrapped = (self.head % self.capacity) == 0 and self.head > 0
        if wrapped:
            self.wraparound += 1
        if self.device.track_stores:
            entry = JournalEntry(entry.etype, self.wraparound, entry.txn_id,
                                 entry.addr, entry.undo)
            self.device.persist(addr, entry.pack(), ctx)
        else:
            # fast devices cannot produce crash images, so the journal
            # bytes are unobservable: charge the persist without writing
            ctx.charge(self._entry_persist_ns)
            ctx.counters.pm_bytes_written += ENTRY_BYTES
        ctx.counters.journal_ns += self._entry_persist_ns
        self.head += 1

    def append_blank(self, ctx: SimContext) -> None:
        """Advance the journal by one entry, charging exactly what
        :meth:`append` charges on an untracked (fast) device.

        Only valid in fast mode: the entry bytes are unobservable there,
        so no :class:`JournalEntry` needs to exist at all.
        """
        if (self.head % self.capacity) == 0 and self.head > 0:
            self.wraparound += 1
        pns = self._entry_persist_ns
        # inlined ctx.charge / counter-property writes: pns >= 0 and each
        # is a single add on the same cell, so values are bit-identical
        ctx.clock._cpu_ns[ctx.cpu] += pns
        counters = ctx.counters
        counters._pm_bytes_written.value += ENTRY_BYTES
        counters._journal_ns.value += pns
        self.head += 1

    def append_run(self, n: int, ctx: SimContext) -> None:
        """*n* blank entries; bit-identical charges to n fast-mode
        :meth:`append` calls (clock and journal_ns adds stay per-entry
        because float addition does not regroup)."""
        if n <= 0:
            return
        head = self.head
        cap = self.capacity
        for _ in range(n):
            if head % cap == 0 and head > 0:
                self.wraparound += 1
            head += 1
        self.head = head
        pns = self._entry_persist_ns
        # inlined charge_repeat/add_repeat: same one-at-a-time adds on a
        # local (pns >= 0, n > 0), so the float results are bit-identical
        cell = ctx.clock._cpu_ns
        cpu = ctx.cpu
        v = cell[cpu]
        for _ in range(n):
            v += pns
        cell[cpu] = v
        counters = ctx.counters
        counters._pm_bytes_written.value += ENTRY_BYTES * n
        jcell = counters._journal_ns
        v = jcell.value
        for _ in range(n):
            v += pns
        jcell.value = v

    def reclaim_committed(self) -> None:
        """All operations are immediately durable -> reclaim everything."""
        self.tail = self.head

    # -- recovery scan ----------------------------------------------------------

    def scan(self) -> List[JournalEntry]:
        """Read back every live entry in append order (oldest first).

        Uses the wraparound counter to find the newest region: entries
        carry the wrap generation they were written under, so a slot whose
        generation is *newer* than its predecessor marks the write frontier.
        """
        entries, _skipped = self.scan_tolerant(tolerate=False)
        return entries

    def scan_tolerant(self, tolerate: bool = True
                      ) -> Tuple[List[JournalEntry], int]:
        """Like :meth:`scan`, but (when *tolerate*) a slot whose load hits
        a poisoned line or whose record fails its checksum is skipped and
        counted instead of aborting recovery."""
        entries: List[Tuple[int, JournalEntry]] = []
        skipped = 0
        for slot in range(self.capacity):
            try:
                raw = self.device.load(self.base + slot * ENTRY_BYTES,
                                       ENTRY_BYTES)
                e = JournalEntry.unpack(raw)
            except (MediaError, CorruptionError):
                if not tolerate:
                    raise
                skipped += 1
                continue
            if e is not None:
                entries.append((slot, e))
        if not entries:
            return [], skipped
        # order: higher wraparound generation is newer; within a
        # generation, slot order is append order
        entries.sort(key=lambda se: (se[1].wraparound, se[0]))
        return [e for _slot, e in entries], skipped


class _Transaction:
    """Handle for one open transaction; created via JournalManager.begin."""

    __slots__ = ("_mgr", "journal", "txn_id", "entries_used", "committed",
                 "_logged")

    def __init__(self, mgr: "JournalManager", journal: PerCPUJournal,
                 txn_id: int) -> None:
        self._mgr = mgr
        self.journal = journal
        self.txn_id = txn_id
        self.entries_used = 1     # START
        self.committed = False
        self._logged: set = set()   # addresses already undo-logged this txn

    def log_undo(self, addr: int, ctx: SimContext) -> None:
        """Record the current PM contents of one cacheline-sized area.

        Call *before* updating the metadata in place; larger areas are
        split across entries.  A region is logged at most once per
        transaction (the first image is the one rollback needs).
        """
        if addr in self._logged:
            return
        self._logged.add(addr)
        if not self.journal.device.track_stores:
            # the undo image is unobservable on a fast device; only the
            # entry's journal traffic matters
            self._append_blank(1, ctx)
            return
        old = self.journal.device.load(addr, UNDO_BYTES)
        self._append(TYPE_DATA, addr, old, ctx)

    def log_undo_range(self, addr: int, length: int, ctx: SimContext) -> None:
        if addr in self._logged:
            return
        self._logged.add(addr)
        if not self.journal.device.track_stores:
            self._append_blank((length + UNDO_BYTES - 1) // UNDO_BYTES, ctx)
            return
        old = self.journal.device.load(addr, length)
        pos = 0
        while pos < length:
            take = min(UNDO_BYTES, length - pos)
            self._append(TYPE_DATA, addr + pos, old[pos:pos + take], ctx)
            pos += take

    def log_undo_range_persist(self, addr: int, length: int, data,
                               ctx: SimContext) -> None:
        """:meth:`log_undo_range` + ``device.persist(addr, data)`` folded
        into one charge kernel.

        The inode-slot rewrite does both on every metadata update; on a
        fast (untracked, unfaulted) device all their charges land on the
        same clock cell back-to-back, so the fold makes the identical
        float adds in the identical order on one local — bit-identical
        ``sim_ns``, one call instead of five.  Tracked or faulted devices
        take the reference two-call path (undo images / fault hooks need
        the real store pipeline).
        """
        journal = self.journal
        device = journal.device
        if device.track_stores or device._faults_active or ctx is None:
            self.log_undo_range(addr, length, ctx)
            device.persist(addr, data, ctx)
            return
        n = 0
        if addr not in self._logged:
            self._logged.add(addr)
            if self.committed:
                raise FSError("transaction already committed")
            n = (length + UNDO_BYTES - 1) // UNDO_BYTES
            self.entries_used += n
            head = journal.head
            cap = journal.capacity
            for _ in range(n):
                if head % cap == 0 and head > 0:
                    journal.wraparound += 1
                head += 1
            journal.head = head
        dlen = len(data)
        if dlen < 0 or addr < 0 or addr + dlen > device.size:
            device._check(addr, dlen)    # raises with the full message
        if dlen:
            if type(data) is Zeros:
                device._store.write_zeros(addr, dlen)
            else:
                device._store.write(addr, data)
            device.bytes_written += dlen
        # charges: n blank journal entries, then store+clwb+sfence — the
        # same adds in the same order as append_run + persist would make,
        # accumulated on a local
        machine = device.machine
        counters = ctx.counters
        cpu = ctx.cpu
        cell = ctx.clock._cpu_ns
        v = cell[cpu]
        if n:
            pns = journal._entry_persist_ns
            for _ in range(n):
                v += pns
            counters._pm_bytes_written.value += ENTRY_BYTES * n
            jcell = counters._journal_ns
            jv = jcell.value
            for _ in range(n):
                jv += pns
            jcell.value = jv
        if dlen:
            # inlined machine.pm_write_ns (identical float ops)
            ns = dlen / machine.pm_write_bw * 1e9
            if device.topology is not None \
                    and device.topology.is_remote(cpu, addr):
                ns *= machine.remote_numa_write_mult
            v += ns
            counters._pm_bytes_written.value += dlen
            v += ((addr + dlen - 1) // CACHELINE
                  - addr // CACHELINE + 1) * machine.clwb_ns
        v += machine.sfence_ns
        cell[cpu] = v

    def _append_blank(self, n: int, ctx: SimContext) -> None:
        if n <= 0:
            return
        if self.committed:
            raise FSError("transaction already committed")
        self.entries_used += n
        self.journal.append_run(n, ctx)

    def _append(self, etype: int, addr: int, undo: bytes,
                ctx: SimContext) -> None:
        if self.committed:
            raise FSError("transaction already committed")
        self.entries_used += 1
        self.journal.append(
            JournalEntry(etype, 0, self.txn_id, addr, undo), ctx)

    def commit(self, ctx: SimContext) -> None:
        if self.committed:
            raise FSError("double commit")
        if ctx.trace.enabled:
            with ctx.trace.span(ctx, "journal.commit", txn=self.txn_id,
                                entries=self.entries_used):
                self._commit_impl(ctx)
            return
        self._commit_impl(ctx)

    def _commit_impl(self, ctx: SimContext) -> None:
        journal = self.journal
        if journal.device.track_stores:
            journal.append(
                JournalEntry(TYPE_COMMIT, 0, self.txn_id, 0, b""), ctx)
        else:
            # inlined journal.append_blank (identical charges)
            if (journal.head % journal.capacity) == 0 and journal.head > 0:
                journal.wraparound += 1
            pns = journal._entry_persist_ns
            ctx.clock._cpu_ns[ctx.cpu] += pns
            counters = ctx.counters
            counters._pm_bytes_written.value += ENTRY_BYTES
            counters._journal_ns.value += pns
            journal.head += 1
        self.committed = True
        # inlined reclaim_committed: synchronous ops reclaim immediately
        journal.tail = journal.head


class JournalManager:
    """All per-CPU journals plus the shared atomic transaction-ID counter."""

    def __init__(self, device: PMDevice, layout: Layout) -> None:
        self.device = device
        self.layout = layout
        self.journals = [PerCPUJournal(device, layout, cpu)
                         for cpu in range(layout.num_cpus)]
        self._next_txn_id = 1
        self.transactions_started = 0
        #: corrupt/poisoned records skipped by the last :meth:`recover`
        self.skipped_records = 0

    def begin(self, ctx: SimContext, entries_hint: int = MAX_TXN_ENTRIES
              ) -> _Transaction:
        """Start a transaction in the calling CPU's journal (§3.6: it stays
        in that journal even if the thread later migrates)."""
        if ctx.trace.enabled:
            with ctx.trace.span(ctx, "journal.begin", cpu=ctx.cpu):
                return self._begin_impl(ctx, entries_hint)
        return self._begin_impl(ctx, entries_hint)

    def _begin_impl(self, ctx: SimContext, entries_hint: int) -> _Transaction:
        journal = self.journals[ctx.cpu % len(self.journals)]
        journal.reserve(entries_hint, ctx)
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        self.transactions_started += 1
        if self.device.track_stores:
            journal.append(JournalEntry(TYPE_START, 0, txn_id, 0, b""), ctx)
        else:
            # inlined journal.append_blank (identical charges)
            if (journal.head % journal.capacity) == 0 and journal.head > 0:
                journal.wraparound += 1
            pns = journal._entry_persist_ns
            ctx.clock._cpu_ns[ctx.cpu] += pns
            counters = ctx.counters
            counters._pm_bytes_written.value += ENTRY_BYTES
            counters._journal_ns.value += pns
            journal.head += 1
        return _Transaction(self, journal, txn_id)

    # -- recovery ------------------------------------------------------------------

    def recover(self) -> Tuple[int, int]:
        """Roll back uncommitted transactions across all journals.

        Returns (committed_seen, rolled_back).  Rollback applies undo
        images in reverse global-transaction-ID order (§3.6: "WineFS
        rolls-back journal entries across per-CPU journals based on the
        transaction ID order").

        Records that fail their checksum or sit on poisoned lines are
        skipped (graceful degradation), counted in
        :attr:`skipped_records`; the caller decides whether a non-zero
        count forces a read-only mount.
        """
        committed_ids = set()
        txn_entries = {}
        self.skipped_records = 0
        for journal in self.journals:
            entries, skipped = journal.scan_tolerant()
            self.skipped_records += skipped
            for entry in entries:
                if entry.etype == TYPE_COMMIT:
                    committed_ids.add(entry.txn_id)
                elif entry.etype == TYPE_DATA:
                    txn_entries.setdefault(entry.txn_id, []).append(entry)
                elif entry.etype == TYPE_START:
                    txn_entries.setdefault(entry.txn_id, [])
        uncommitted = [tid for tid in txn_entries if tid not in committed_ids]
        for tid in sorted(uncommitted, reverse=True):
            for entry in reversed(txn_entries[tid]):
                self.device.persist(entry.addr, entry.undo)
        # journals restart clean after recovery
        for journal in self.journals:
            self._erase(journal)
        self._next_txn_id = max(list(committed_ids) + list(txn_entries) + [0]) + 1
        return len(committed_ids), len(uncommitted)

    def _erase(self, journal: PerCPUJournal) -> None:
        if self.device.track_stores:
            zero = b"\x00" * ENTRY_BYTES
            for slot in range(journal.capacity):
                self.device.persist(journal.base + slot * ENTRY_BYTES, zero)
        else:
            # one buffer-free zeroing sweep; same total bytes_written
            self.device.persist(journal.base,
                                Zeros(journal.capacity * ENTRY_BYTES))
        journal.head = journal.tail = 0
        journal.wraparound += 1
