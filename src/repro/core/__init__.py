"""WineFS: the paper's contribution.

A hugepage-aware PM file system (SOSP 2021) built from:

* an **alignment-aware allocator** (:mod:`repro.core.allocator`): per-CPU
  pools of aligned 2MB extents and unaligned holes; hugepage-sized requests
  get aligned extents, small requests fill holes;
* **per-CPU undo journals** with 64B cacheline entries
  (:mod:`repro.core.journal`) coordinated through VFS inode locks;
* **hybrid data atomicity**: data journaling for aligned extents (layout
  preserved), copy-on-write into fresh holes for unaligned extents;
* **DRAM indexes** for directories and free lists;
* **crash recovery** that rolls back uncommitted transactions across the
  per-CPU journals in global-transaction-ID order and rebuilds DRAM state
  by scanning per-CPU inode tables (:mod:`repro.core.recovery`);
* **reactive rewriting** of fragmented mmap'ed files
  (:mod:`repro.core.rewrite`) and **alignment xattrs**;
* a **NUMA policy** that keeps writes on a process's home node
  (:mod:`repro.core.numa_policy`).
"""

from .filesystem import WineFS
from .allocator import AlignmentAwareAllocator
from .journal import PerCPUJournal, JournalManager
from .numa_policy import NumaPolicy

__all__ = ["WineFS", "AlignmentAwareAllocator", "PerCPUJournal",
           "JournalManager", "NumaPolicy"]
