"""WineFS on-PM layout and metadata serialization.

Per paper §3.2/Fig 5, the partition is split per logical CPU; each CPU owns
a journal, an inode table, and a data pool (aligned extents + holes).
Metadata structures get dedicated, in-place-updated locations ("controlled
fragmentation", §3.4) at the front of the partition, so they never chew up
aligned data extents.

Layout (blocks)::

    [0]                superblock
    [1 .. J*ncpu]      per-CPU journals            (J blocks each)
    [.. + T*ncpu]      per-CPU inode tables        (T blocks each)
    [data ...]         per-CPU data pools, each starting 2MB-aligned

Inode records are 128B fixed slots.  WineFS embeds the (parent_ino, name)
back-pointer in the inode so recovery can rebuild the namespace with a
parallel scan of the per-CPU inode tables (§5.2: recovery time depends on
the number of files).  Extent maps are inline up to 4 extents with a chain
of indirect extent blocks beyond that.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from ..errors import CorruptionError, FSError
from ..params import BLOCK_SIZE, BLOCKS_PER_HUGEPAGE
from ..pm.device import PMDevice
from ..structures.extents import Extent, ExtentList, align_up

SUPERBLOCK_MAGIC = 0x57494E45        # "WINE"
INODE_SLOT_BYTES = 128
JOURNAL_BLOCKS_PER_CPU = 64          # 256KB journal per CPU
INODE_TABLE_BLOCKS_PER_CPU = 512     # 2MB => 16K inodes per CPU
INODES_PER_CPU = INODE_TABLE_BLOCKS_PER_CPU * BLOCK_SIZE // INODE_SLOT_BYTES
MAX_NAME = 36
INLINE_EXTENTS = 4
# indirect extent block: 8B next-chain pointer + (start,len) u32 pairs
EXTENTS_PER_INDIRECT = (BLOCK_SIZE - 8) // 8

_SB = struct.Struct("<IIIIQ")        # magic, ncpus, clean, version, total_blocks
_INODE_HEAD = struct.Struct("<BBHIQQQ")   # valid, flags, nlink, n_extents,
                                          # size, parent_ino, indirect_block
_EXT = struct.Struct("<II")               # start, length
#: one Struct per inline-extent count, so n extents pack in a single call
_INLINE_PACKERS = [struct.Struct("<" + "II" * n)
                   for n in range(INLINE_EXTENTS + 1)]
# pre-bound pack_into methods for the per-update serialize path: skips
# one attribute dispatch per call on the hottest aging function
_HEAD_PACK_INTO = _INODE_HEAD.pack_into
_INLINE_PACK_INTO = tuple(s.pack_into for s in _INLINE_PACKERS)

FLAG_DIR = 0x1
FLAG_ALIGNED_HINT = 0x2


@dataclass(frozen=True)
class Layout:
    """Computed block addresses for one formatted WineFS partition."""

    num_cpus: int
    total_blocks: int

    @property
    def superblock_block(self) -> int:
        return 0

    def journal_start(self, cpu: int) -> int:
        return 1 + cpu * JOURNAL_BLOCKS_PER_CPU

    @property
    def journal_blocks(self) -> int:
        return JOURNAL_BLOCKS_PER_CPU

    def inode_table_start(self, cpu: int) -> int:
        return 1 + self.num_cpus * JOURNAL_BLOCKS_PER_CPU \
            + cpu * INODE_TABLE_BLOCKS_PER_CPU

    @property
    def inodes_per_cpu(self) -> int:
        return INODES_PER_CPU

    @property
    def meta_end_block(self) -> int:
        """First block after all metadata regions."""
        return 1 + self.num_cpus * (JOURNAL_BLOCKS_PER_CPU
                                    + INODE_TABLE_BLOCKS_PER_CPU)

    @property
    def data_start_block(self) -> int:
        """Data area starts at the next hugepage boundary (so pools begin
        aligned and metadata never splits an aligned extent)."""
        return align_up(self.meta_end_block)

    def data_pool_range(self, cpu: int) -> Tuple[int, int]:
        """(start, length) in blocks of one CPU's data pool, 2MB-aligned."""
        data_blocks = self.total_blocks - self.data_start_block
        huge_chunks = data_blocks // BLOCKS_PER_HUGEPAGE
        per_cpu = huge_chunks // self.num_cpus
        start = self.data_start_block + cpu * per_cpu * BLOCKS_PER_HUGEPAGE
        if cpu == self.num_cpus - 1:
            end = self.data_start_block + huge_chunks * BLOCKS_PER_HUGEPAGE
        else:
            end = start + per_cpu * BLOCKS_PER_HUGEPAGE
        return start, end - start

    # -- inode addressing ---------------------------------------------------------

    def cpu_of_ino(self, ino: int) -> int:
        return (ino - 1) // INODES_PER_CPU

    def slot_of_ino(self, ino: int) -> int:
        return (ino - 1) % INODES_PER_CPU

    def first_ino(self, cpu: int) -> int:
        return cpu * INODES_PER_CPU + 1

    @lru_cache(maxsize=65536)
    def inode_addr(self, ino: int) -> int:
        # pure function of (layout, ino); Layout is a frozen dataclass,
        # so memoizing on (self, ino) is safe
        cpu = self.cpu_of_ino(ino)
        if cpu >= self.num_cpus:
            raise FSError(f"ino {ino} outside inode tables")
        table = self.inode_table_start(cpu) * BLOCK_SIZE
        return table + self.slot_of_ino(ino) * INODE_SLOT_BYTES


# -- superblock ---------------------------------------------------------------------


def write_superblock(device: PMDevice, layout: Layout, clean: bool) -> None:
    raw = _SB.pack(SUPERBLOCK_MAGIC, layout.num_cpus, 1 if clean else 0, 1,
                   layout.total_blocks)
    device.persist(layout.superblock_block * BLOCK_SIZE, raw)


def read_superblock(device: PMDevice) -> Tuple[Layout, bool]:
    raw = device.load(0, _SB.size)
    magic, ncpus, clean, _version, total_blocks = _SB.unpack(raw)
    if magic != SUPERBLOCK_MAGIC:
        raise CorruptionError("bad WineFS superblock magic")
    if ncpus < 1 or total_blocks <= 0:
        raise CorruptionError("implausible superblock fields")
    return Layout(num_cpus=ncpus, total_blocks=total_blocks), bool(clean)


# -- inode records ---------------------------------------------------------------------


@dataclass
class InodeRecord:
    """The on-PM image of one inode."""

    ino: int
    valid: bool
    is_dir: bool
    aligned_hint: bool
    nlink: int
    size: int
    parent_ino: int
    name: str
    extents: List[Extent]

    def to_inode(self):
        from ..fs.common.inode import Inode
        inode = Inode(ino=self.ino, is_dir=self.is_dir, size=self.size,
                      nlink=self.nlink, extents=ExtentList(self.extents))
        inode.aligned_hint = self.aligned_hint
        return inode


def pack_inode(rec: InodeRecord, indirect_block: int = 0) -> bytes:
    """Serialize the fixed 128B slot (inline part only)."""
    name_bytes = rec.name.encode()
    if len(name_bytes) > MAX_NAME:
        raise FSError(f"name too long for inode slot: {rec.name!r}")
    flags = (FLAG_DIR if rec.is_dir else 0) | \
            (FLAG_ALIGNED_HINT if rec.aligned_hint else 0)
    head = _INODE_HEAD.pack(1 if rec.valid else 0, flags, rec.nlink,
                            len(rec.extents), rec.size, rec.parent_ino,
                            indirect_block)
    inline = b"".join(_EXT.pack(e.start, e.length)
                      for e in rec.extents[:INLINE_EXTENTS])
    inline = inline.ljust(INLINE_EXTENTS * _EXT.size, b"\x00")
    name_field = bytes([len(name_bytes)]) + name_bytes
    body = head + inline + name_field
    if len(body) > INODE_SLOT_BYTES:
        raise FSError("inode slot overflow")
    return body.ljust(INODE_SLOT_BYTES, b"\x00")


class InodePacker:
    """:func:`pack_inode` specialized for the serialize-on-every-update
    path: keeps one preallocated slot buffer per inode and rewrites only
    the regions that changed since the last pack.

    The head is re-packed in place every call (size/nlink change often);
    the inline-extent region is rewritten only when the identity-cached
    extent tuple (:meth:`ExtentList.as_tuple`) changes, the name field
    only when the name string changes.  No per-call allocation, no
    concatenation, no trailing-pad copy — the returned buffer is always
    the full slot.  Output is byte-identical to :func:`pack_inode` of
    the equivalent record.

    The returned ``bytearray`` is reused by the next ``pack`` of the
    same inode: callers must consume it immediately (the device's sparse
    store copies it on write).  Entries must be dropped when an inode is
    freed (ino numbers are reused).
    """

    __slots__ = ("_slots",)

    _INLINE_OFF = _INODE_HEAD.size
    _NAME_OFF = _INODE_HEAD.size + INLINE_EXTENTS * _EXT.size

    def __init__(self) -> None:
        # ino -> [slot bytearray, extents tuple, n_inline_bytes,
        #         name str, name_end]
        self._slots: dict = {}

    def drop(self, ino: int) -> None:
        self._slots.pop(ino, None)

    def pack(self, inode, extents: tuple, indirect_block: int) -> bytearray:
        entry = self._slots.get(inode.ino)
        if entry is None:
            entry = [bytearray(INODE_SLOT_BYTES), None, 0, None, 0]
            self._slots[inode.ino] = entry
        buf = entry[0]
        flags = (FLAG_DIR if inode.is_dir else 0) | \
                (FLAG_ALIGNED_HINT if inode.aligned_hint else 0)
        _HEAD_PACK_INTO(buf, 0, 1, flags, inode.nlink, len(extents),
                        inode.size, inode.parent_ino, indirect_block)
        if entry[1] is not extents:
            flat = []
            for e in extents[:INLINE_EXTENTS]:
                flat.append(e.start)
                flat.append(e.length)
            off = self._INLINE_OFF
            _INLINE_PACK_INTO[len(flat) // 2](buf, off, *flat)
            used = len(flat) * 4
            if used < entry[2]:
                # fewer inline extents than last time: zero the stale tail
                buf[off + used:off + entry[2]] = bytes(entry[2] - used)
            entry[1] = extents
            entry[2] = used
        name = inode.name
        if entry[3] is not name:
            name_bytes = name.encode()
            if len(name_bytes) > MAX_NAME:
                raise FSError(f"name too long for inode slot: {name!r}")
            off = self._NAME_OFF
            buf[off] = len(name_bytes)
            end = off + 1 + len(name_bytes)
            buf[off + 1:end] = name_bytes
            if end < entry[4]:
                buf[end:entry[4]] = bytes(entry[4] - end)
            entry[3] = name
            entry[4] = end
        return buf


def unpack_inode(ino: int, raw: bytes,
                 read_indirect) -> Optional[InodeRecord]:
    """Parse a slot; *read_indirect(block) -> bytes* loads chain blocks.

    Returns None for empty/invalid slots; raises CorruptionError on
    garbage that claims to be valid.
    """
    if len(raw) != INODE_SLOT_BYTES:
        raise CorruptionError(f"inode slot wrong size: {len(raw)}")
    valid, flags, nlink, n_extents, size, parent_ino, indirect = \
        _INODE_HEAD.unpack(raw[:_INODE_HEAD.size])
    if not valid:
        return None
    if valid != 1 or size < 0:
        raise CorruptionError(f"corrupt inode {ino}")
    pos = _INODE_HEAD.size
    extents: List[Extent] = []
    for i in range(min(n_extents, INLINE_EXTENTS)):
        start, length = _EXT.unpack(raw[pos + i * 8: pos + i * 8 + 8])
        if length == 0:
            raise CorruptionError(f"inode {ino}: zero-length extent")
        extents.append(Extent(start, length))
    pos += INLINE_EXTENTS * _EXT.size
    name_len = raw[pos]
    if name_len > MAX_NAME:
        raise CorruptionError(f"inode {ino}: bad name length {name_len}")
    name = raw[pos + 1: pos + 1 + name_len].decode(errors="strict")
    remaining = n_extents - len(extents)
    block = indirect
    while remaining > 0:
        if not block:
            raise CorruptionError(f"inode {ino}: extent chain truncated")
        blob = read_indirect(block)
        nxt = struct.unpack_from("<Q", blob, 0)[0]
        count = min(remaining, EXTENTS_PER_INDIRECT)
        for i in range(count):
            start, length = _EXT.unpack_from(blob, 8 + i * 8)
            if length == 0:
                raise CorruptionError(f"inode {ino}: zero-length extent")
            extents.append(Extent(start, length))
        remaining -= count
        block = nxt
    return InodeRecord(ino=ino, valid=True, is_dir=bool(flags & FLAG_DIR),
                       aligned_hint=bool(flags & FLAG_ALIGNED_HINT),
                       nlink=nlink, size=size, parent_ino=parent_ino,
                       name=name, extents=extents)


def pack_indirect(next_block: int, extents: List[Extent]) -> bytes:
    if len(extents) > EXTENTS_PER_INDIRECT:
        raise FSError("too many extents for one indirect block")
    body = struct.pack("<Q", next_block) + \
        b"".join(_EXT.pack(e.start, e.length) for e in extents)
    return body.ljust(BLOCK_SIZE, b"\x00")
