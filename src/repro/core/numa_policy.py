"""WineFS NUMA-awareness (paper §3.6, "Minimizing remote NUMA accesses").

The policy: remote writes cost much more than remote reads, so each process
gets a *home* NUMA node assigned on its first create/write — the node with
the most free space.  Writes from a process are routed to (and, if needed,
the process is migrated to) its home node; reads are never migrated.
Children inherit the parent's home node.  When the home node fills up, a
new home is chosen and the process migrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..clock import SimContext
from ..errors import SimulationError
from ..pm.numa import NumaTopology


@dataclass
class ProcessInfo:
    pid: int
    home_node: Optional[int] = None
    parent_pid: Optional[int] = None
    migrations: int = 0


class NumaPolicy:
    """Tracks home nodes for simulated processes.

    ``free_space_of_node`` is a callback the file system provides so home
    selection can follow allocator occupancy.
    """

    def __init__(self, topology: NumaTopology, free_space_of_node) -> None:
        self.topology = topology
        self._free_space_of_node = free_space_of_node
        self._procs: Dict[int, ProcessInfo] = {}
        self.remote_writes_avoided = 0

    def register_process(self, pid: int,
                         parent_pid: Optional[int] = None) -> ProcessInfo:
        if pid in self._procs:
            raise SimulationError(f"pid {pid} already registered")
        info = ProcessInfo(pid=pid, parent_pid=parent_pid)
        if parent_pid is not None and parent_pid in self._procs:
            # §3.6: children inherit the parent's home NUMA node
            info.home_node = self._procs[parent_pid].home_node
        self._procs[pid] = info
        return info

    def _pick_home(self) -> int:
        best, best_free = 0, -1
        for node in range(self.topology.nodes):
            free = self._free_space_of_node(node)
            if free > best_free:
                best, best_free = node, free
        return best

    def home_of(self, pid: int) -> Optional[int]:
        info = self._procs.get(pid)
        return info.home_node if info else None

    def cpu_for_write(self, pid: int, ctx: SimContext) -> int:
        """The CPU this process's write should run on.

        Assigns a home node on first write; migrates the process (charging
        a context switch) if it is running on a foreign node, or if its
        home ran out of space.
        """
        info = self._procs.get(pid)
        if info is None:
            info = self.register_process(pid)
        if info.home_node is None:
            info.home_node = self._pick_home()
        elif self._free_space_of_node(info.home_node) == 0:
            # §3.6: "If the home NUMA node runs out of free space, a new
            # home is selected, and the process is migrated."
            info.home_node = self._pick_home()
        current_node = self.topology.node_of_cpu(ctx.cpu)
        if current_node != info.home_node:
            ctx.charge(ctx.clock.num_cpus and 2000.0)  # thread migration
            info.migrations += 1
            self.remote_writes_avoided += 1
            return self.topology.cpus_of_node(info.home_node)[
                ctx.cpu % self.topology.cpus_per_node]
        return ctx.cpu

    def migrations_of(self, pid: int) -> int:
        info = self._procs.get(pid)
        return info.migrations if info else 0
