"""The alignment-aware allocator (paper §3.4, §3.6).

The partition's data area is split per logical CPU.  Each CPU owns a pool
tracking free aligned 2MB extents and free unaligned "holes".  Incoming
requests are broken into chunks of at most one hugepage:

* hugepage-sized chunks are satisfied from the aligned-extent pool;
* smaller chunks are satisfied from holes, first-fit, spending unaligned
  slack before ever breaking an aligned extent.

The cross-CPU spill policy follows §3.4: if the local pool is exhausted,
pick the remote pool with the most free *aligned* extents for a large
request and the most free *unaligned* space for a small request.  Freed
extents return to the pool that owns their address range and are merged;
merges that reconstitute a whole aligned 2MB run automatically re-enter
the aligned pool (the FreePool run index handles this).
"""

from __future__ import annotations

from typing import List, Optional

from ..clock import SimContext
from ..errors import NoSpaceError, SimulationError
from ..params import BLOCKS_PER_HUGEPAGE
from ..structures.extents import Extent
from ..fs.common.freespace import FreePool
from .layout import Layout

#: DRAM free-list probe cost charged per allocation decision
_ALLOC_NS = 60.0


class AlignmentAwareAllocator:
    """Per-CPU aligned-extent and hole pools over one partition.

    When a :class:`~repro.faults.FaultPlan` is attached (``faults``), the
    allocator participates in fault injection: ``enospc`` specs make
    allocations fail on schedule, and blocks with write errors can be
    :meth:`quarantine`\\ d so they are never handed out again (the
    quarantine list is DRAM-only, like an unpersisted badblocks list —
    a remount rebuilds pools from inodes and forgets it).
    """

    def __init__(self, layout: Layout, faults=None) -> None:
        self.layout = layout
        self.pools: List[FreePool] = []
        for cpu in range(layout.num_cpus):
            start, length = layout.data_pool_range(cpu)
            self.pools.append(FreePool(start, length))
        # provenance: hugepage indexes handed out *as aligned extents*.
        # The hybrid data-atomicity policy (§3.4) keys off how an extent
        # was allocated, not its accidental physical alignment — on a
        # clean FS, hole allocations also merge into aligned runs.
        self.aligned_out: set = set()
        self._faults = None
        self.set_fault_plan(faults)
        self.quarantined: set = set()

    def set_fault_plan(self, faults) -> None:
        """Bind (or clear) a fault plan.  Inactive plans are dropped so
        the hot allocation path stays a single ``is not None`` check."""
        self._faults = faults if (faults is not None
                                  and faults.is_active) else None

    # -- introspection -----------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return sum(p.free_blocks for p in self.pools)

    def free_aligned_hugepages(self) -> int:
        return sum(p.aligned_hugepages() for p in self.pools)

    def pool_of_block(self, block: int) -> FreePool:
        for pool in self.pools:
            if pool.range_start <= block < pool.range_end:
                return pool
        raise SimulationError(f"block {block} outside every data pool")

    # -- allocation ---------------------------------------------------------------

    def _pool_order_large(self, home: int) -> List[FreePool]:
        """Local first, then remote pools by most free aligned extents."""
        remote = sorted((p for i, p in enumerate(self.pools) if i != home),
                        key=lambda p: p.aligned_hugepages(), reverse=True)
        return [self.pools[home]] + remote

    def _pool_order_small(self, home: int) -> List[FreePool]:
        """Local first, then remote pools by most free unaligned space."""
        def unaligned_free(p: FreePool) -> int:
            return p.free_blocks - p.aligned_hugepages() * BLOCKS_PER_HUGEPAGE
        remote = sorted((p for i, p in enumerate(self.pools) if i != home),
                        key=unaligned_free, reverse=True)
        return [self.pools[home]] + remote

    def alloc(self, nblocks: int, ctx: SimContext, *,
              want_aligned: Optional[bool] = None) -> List[Extent]:
        """Allocate *nblocks* for the calling CPU.

        Raises :class:`NoSpaceError` (leaving pools untouched on partial
        failure is not required: callers free what they got on error).
        """
        if nblocks <= 0:
            raise SimulationError("allocation must be positive")
        if ctx.trace.enabled:
            with ctx.trace.span(ctx, "alloc", blocks=nblocks):
                return self._alloc(nblocks, ctx, want_aligned=want_aligned)
        return self._alloc(nblocks, ctx, want_aligned=want_aligned)

    def _alloc(self, nblocks: int, ctx: SimContext, *,
               want_aligned: Optional[bool] = None) -> List[Extent]:
        # inlined ctx.charge (_ALLOC_NS >= 0, single add)
        ctx.clock._cpu_ns[ctx.cpu] += _ALLOC_NS
        if self._faults is not None and self._faults.take_enospc(ctx):
            raise NoSpaceError("injected fault: space exhausted")
        home = ctx.cpu % self.layout.num_cpus
        out: List[Extent] = []
        remaining = nblocks
        try:
            # hugepage-sized chunks from aligned pools
            while remaining >= BLOCKS_PER_HUGEPAGE and \
                    (want_aligned is None or want_aligned):
                ext = self._alloc_aligned_chunk(home)
                if ext is None:
                    break   # no aligned extent anywhere: fall through to holes
                out.append(ext)
                remaining -= BLOCKS_PER_HUGEPAGE
            # remainder (or everything, when not aligned-eligible) from holes
            while remaining > 0:
                take = min(remaining, BLOCKS_PER_HUGEPAGE)
                ext = self._alloc_hole_chunk(home, take)
                if ext is None:
                    raise NoSpaceError(
                        f"cannot allocate {take} blocks "
                        f"({self.free_blocks} free, fragmented)")
                out.append(ext)
                remaining -= ext.length
        except NoSpaceError:
            for ext in out:
                self.free(ext)
            raise
        return out

    def _alloc_aligned_chunk(self, home: int) -> Optional[Extent]:
        # the home pool usually satisfies the request; only rank the
        # remote pools (same order as _pool_order_large) when it cannot
        ext = self.pools[home].alloc_aligned_hugepage()
        if ext is not None:
            self.aligned_out.add(ext.start // BLOCKS_PER_HUGEPAGE)
            return ext
        for pool in self._pool_order_large(home)[1:]:
            ext = pool.alloc_aligned_hugepage()
            if ext is not None:
                self.aligned_out.add(ext.start // BLOCKS_PER_HUGEPAGE)
                return ext
        return None

    def _alloc_hole_chunk(self, home: int, nblocks: int) -> Optional[Extent]:
        # the home pool usually satisfies the request; only rank the
        # remote pools (same order as _pool_order_small) when it cannot
        ext = self.pools[home].alloc_avoiding_aligned(nblocks)
        if ext is not None:
            return ext
        order = self._pool_order_small(home)
        for pool in order[1:]:
            ext = pool.alloc_avoiding_aligned(nblocks)
            if ext is not None:
                return ext
        # final fallback: any first-fit anywhere, even a partial extent
        for pool in order:
            largest = pool.largest()
            if largest > 0:
                return pool.alloc_first_fit(min(nblocks, largest))
        return None

    def alloc_aligned_for_fault(self, home_cpu: int) -> Optional[Extent]:
        """One aligned hugepage for the page-fault path (§3.6 "hugepage
        handling on page faults"); None if no aligned extent exists."""
        return self._alloc_aligned_chunk(home_cpu)

    def is_aligned_provenance(self, hugepage_index: int) -> bool:
        """Was this hugepage handed out from the aligned-extent pool?"""
        return hugepage_index in self.aligned_out

    def alloc_meta_block(self, ctx: SimContext) -> Extent:
        """One block for an indirect extent block (metadata, hole-filled)."""
        ext = self._alloc_hole_chunk(ctx.cpu % self.layout.num_cpus, 1)
        if ext is None:
            raise NoSpaceError("no block for indirect extent chain")
        return ext

    # -- fault handling ---------------------------------------------------------------

    def quarantine(self, block: int) -> None:
        """Take *block* out of circulation permanently (write errors).

        Works whether the block is currently free (pulled from its pool)
        or allocated (``free`` will refuse to re-insert it later).
        """
        if block in self.quarantined:
            return
        self.quarantined.add(block)
        self.aligned_out.discard(block // BLOCKS_PER_HUGEPAGE)
        self.pool_of_block(block).alloc_exact(block, 1)

    def relocate_block(self, bad: int, ctx: SimContext) -> Extent:
        """Quarantine *bad* and hand out a 1-block replacement hole.

        Raises :class:`NoSpaceError` when no replacement exists (the
        caller then surfaces the write error instead of masking it).
        """
        self.quarantine(bad)
        ctx.charge(_ALLOC_NS)
        ext = self._alloc_hole_chunk(ctx.cpu % self.layout.num_cpus, 1)
        if ext is None:
            raise NoSpaceError("no replacement block for relocation")
        return ext

    # -- free ------------------------------------------------------------------------

    def free(self, extent: Extent, ctx: Optional[SimContext] = None) -> None:
        """Return an extent to its owning pool (§3.4: freed extents go back
        to the data pool they came from and merge with neighbours)."""
        if ctx is not None:
            # inlined ctx.charge (_ALLOC_NS >= 0, single add)
            ctx.clock._cpu_ns[ctx.cpu] += _ALLOC_NS
        if self.quarantined:
            bad = [b for b in range(extent.start, extent.end)
                   if b in self.quarantined]
            if bad:
                # split around the quarantined blocks; they never return
                # to a pool (their hugepages lose provenance regardless)
                for b in bad:
                    self.aligned_out.discard(b // BLOCKS_PER_HUGEPAGE)
                start = extent.start
                for b in bad:
                    if b > start:
                        self.free(Extent(start, b - start))
                    start = b + 1
                if start < extent.end:
                    self.free(Extent(start, extent.end - start))
                return
        # freeing any part of a hugepage ends its aligned-provenance life
        first_hp = extent.start // BLOCKS_PER_HUGEPAGE
        last_hp = (extent.end - 1) // BLOCKS_PER_HUGEPAGE
        for hp in range(first_hp, last_hp + 1):
            self.aligned_out.discard(hp)
        # an extent never spans pools (pools are hugepage-aligned splits and
        # allocations are chunked <= one hugepage), but be defensive:
        pool = self.pool_of_block(extent.start)
        if extent.end > pool.range_end:
            head_len = pool.range_end - extent.start
            pool.insert(Extent(extent.start, head_len))
            self.free(Extent(pool.range_end, extent.length - head_len))
            return
        pool.insert(extent)

    def free_all(self, extents: List[Extent],
                 ctx: Optional[SimContext] = None) -> None:
        for ext in extents:
            self.free(ext, ctx)

    # -- recovery ---------------------------------------------------------------------

    def rebuild_from_inodes(self, used_extents: List[Extent]) -> None:
        """Reset pools to 'everything free', then subtract used extents
        (the §3.6 crash path: pools are re-initialized by scanning the set
        of used inodes)."""
        self.pools = []
        for cpu in range(self.layout.num_cpus):
            start, length = self.layout.data_pool_range(cpu)
            self.pools.append(FreePool(start, length))
        for ext in sorted(used_extents, key=lambda e: e.start):
            self._mark_used(ext)
        for block in sorted(self.quarantined):
            self.pool_of_block(block).alloc_exact(block, 1)

    def _mark_used(self, extent: Extent) -> None:
        pool = self.pool_of_block(extent.start)
        end = min(extent.end, pool.range_end)
        got = pool.alloc_exact(extent.start, end - extent.start)
        if got is None:
            raise SimulationError(f"recovery: extent {extent} not free")
        if extent.end > end:
            self._mark_used(Extent(end, extent.end - end))
