"""Command-line interface: ``python -m repro <command>``.

Quick access to the library without writing a script:

* ``repro info`` — the evaluated file systems and experiment catalogue;
* ``repro age --fs NOVA --util 0.75`` — age one file system and print the
  fragmentation report;
* ``repro mmap-bench --fs WineFS --aged`` — the Fig 1-style probe;
* ``repro crash-test`` — run the CrashMonkey/ACE catalogue on WineFS;
* ``repro lint`` — the repro.analysis static-analysis suite (CI gate);
* ``repro slo --jobs 2`` — seeded fault campaign with SLO telemetry;
* ``repro serve --load --seeds 1,2`` — seeded multi-tenant object-service
  load over simulated backends (``repro.serve``);
* ``repro snapshot build --jobs 4`` — archive an aged-image corpus into
  the sharded snapshot archive (then ``ls``/``scrub``/``gc`` it);
* ``repro scalability --fs WineFS --threads 1,4,16`` — a Fig 10 slice.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .aging import PROFILES, Geriatrix, fragmentation_report
from .harness import SPECS_BY_NAME, Table, aged_fs, fresh_fs
from .params import GIB, MIB
from .workloads import mmap_rw_benchmark, run_scalability


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--fs", default="WineFS", choices=sorted(SPECS_BY_NAME),
                   help="file system to run (default: WineFS)")
    p.add_argument("--size-gib", type=float, default=0.5,
                   help="simulated partition size in GiB")
    p.add_argument("--cpus", type=int, default=4)
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="dump the run's metrics registry as JSON "
                        "('-' for stdout)")


def _dump_metrics(args, counters) -> None:
    if getattr(args, "metrics_out", None):
        from .obs import write_metrics_json
        write_metrics_json(args.metrics_out, counters.registry)


def cmd_bench(args) -> int:
    """Deterministic (fs, pattern, seed) matrix over the fleet runner.

    The JSON report contains only simulated quantities and is sorted by
    cell key, so it is byte-identical for any ``--jobs`` value.
    """
    import json

    from .harness.fleet import bench_matrix, run_bench_matrix

    fs_names = sorted(args.bench_fs.split(","))
    for name in fs_names:
        if name not in SPECS_BY_NAME:
            raise SystemExit(f"unknown file system {name!r}")
    seeds = sorted(int(s) for s in args.seeds.split(","))
    patterns = sorted(args.patterns.split(","))
    cells = bench_matrix(fs_names, patterns, seeds,
                         size_gib=args.size_gib, num_cpus=args.cpus,
                         aged=args.aged)
    report = run_bench_matrix(cells, jobs=args.jobs)
    blob = json.dumps(report, sort_keys=True, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(blob)
    else:
        with open(args.out, "w") as handle:
            handle.write(blob)
        cell_count = len(report["cells"])
        print(f"wrote {args.out} ({cell_count} cells, jobs={args.jobs})")
    return 0


def cmd_info(_args) -> int:
    table = Table("Evaluated file systems", ["name", "consistency",
                                             "ageable"])
    for spec in SPECS_BY_NAME.values():
        table.add_row(spec.name,
                      "data+metadata" if spec.data_consistent
                      else "metadata", "yes" if spec.ageable else "no")
    print(table.render())
    print("\nExperiments: pytest benchmarks/ --benchmark-only")
    print("Figures/tables covered: 1, 2, 3, 4, 6, 7, 8, 9, 10; "
          "Table 2; §4, §5.2, §5.5 utilities, §5.7; ablations")
    return 0


def cmd_age(args) -> int:
    profile = PROFILES[args.profile]
    fs, ctx = fresh_fs(args.fs, size_gib=args.size_gib, num_cpus=args.cpus)
    ager = Geriatrix(fs, profile, target_utilization=args.util,
                     seed=args.seed)
    result = ager.age(ctx, write_volume=int(args.churn * args.size_gib
                                            * GIB))
    print(f"aged {fs.name} with {result.bytes_written / GIB:.2f} GiB of "
          f"churn ({result.files_created} creates / "
          f"{result.files_deleted} deletes)")
    print(fragmentation_report(fs))
    _dump_metrics(args, ctx.counters)
    return 0


def cmd_mmap_bench(args) -> int:
    if args.aged:
        fs, ctx = aged_fs(args.fs, size_gib=args.size_gib,
                          num_cpus=args.cpus, utilization=args.util,
                          churn_multiple=args.churn)
    else:
        fs, ctx = fresh_fs(args.fs, size_gib=args.size_gib,
                           num_cpus=args.cpus)
    stats = fs.statfs()
    file_size = min(int(stats.free_blocks * stats.block_size * 0.6),
                    64 * MIB)
    file_size -= file_size % (2 * MIB)
    r = mmap_rw_benchmark(fs, ctx, file_size=max(file_size, 4 * MIB),
                          io_size=2 * MIB, pattern=args.pattern)
    state = "aged" if args.aged else "clean"
    print(f"{fs.name} ({state}) {args.pattern}: "
          f"{r.throughput_mb_s:,.0f} MB/s; faults "
          f"{r.page_faults_2m} huge / {r.page_faults_4k} base; "
          f"{r.fault_time_fraction:.0%} of time in faults")
    _dump_metrics(args, ctx.counters)
    return 0


def cmd_crash_test(args) -> int:
    from .core.filesystem import WineFS
    from .crashmon import CrashExplorer, generate_workloads
    from .pm.device import PMDevice
    explorer = CrashExplorer(lambda dev: WineFS(dev, num_cpus=2),
                             device_size=64 * MIB, num_cpus=2)
    depth = 1 if args.quick else args.depth
    workloads = generate_workloads(seq2=depth >= 2, seq3=depth >= 3)
    failures = 0
    for result in explorer.run_all(workloads):
        mark = "PASS" if result.passed else "FAIL"
        print(f"{mark} {result.workload:22s} "
              f"({result.states_checked} crash states)")
        failures += not result.passed
        for v in result.violations[:3]:
            print("   ", v[:200])
    return 1 if failures else 0


def cmd_faults(args) -> int:
    """Run a canned WineFS workload under a fault plan and report it."""
    from .clock import make_context
    from .core.filesystem import WineFS
    from .errors import FSError
    from .faults import FaultPlan, FaultSpec
    from .obs import fault_report
    from .params import BLOCK_SIZE
    from .pm.device import PMDevice

    device = PMDevice(64 * MIB)
    fs = WineFS(device, num_cpus=2)
    ctx = make_context(2)
    fs.mkfs(ctx)
    f = fs.create("/victim", ctx)
    f.append(b"\xab" * (64 * BLOCK_SIZE), ctx)
    f.close()
    extents = list(fs.file_extents(fs.getattr("/victim").ino))

    if args.plan:
        with open(args.plan, encoding="utf-8") as fh:
            plan = FaultPlan.from_json(fh.read())
    else:
        kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
        specs = []
        if "poison" in kinds:
            specs.append(FaultSpec("poison",
                                   addr=extents[0].start * BLOCK_SIZE,
                                   length=64))
        if "torn_store" in kinds:
            specs.append(FaultSpec("torn_store", at_op=5))
        if "latency" in kinds:
            specs.append(FaultSpec("latency", at_op=0, count=500,
                                   latency_mult=4.0))
        if "enospc" in kinds:
            specs.append(FaultSpec("enospc", at_op=2, count=1))
        if "write_error" in kinds:
            specs.append(FaultSpec("write_error",
                                   blocks=(extents[0].start + 1,),
                                   count=1))
        plan = FaultPlan(seed=args.seed, specs=specs)
    if args.emit_plan:
        with open(args.emit_plan, "w", encoding="utf-8") as fh:
            fh.write(plan.to_json() + "\n")
    fs.attach_fault_plan(plan)

    surfaced: List[str] = []

    def attempt(label, fn):
        try:
            fn()
        except FSError as exc:
            surfaced.append(f"{label}: {exc.errno_name}: {exc}")

    attempt("read", lambda: fs.read_file("/victim", ctx))
    attempt("overwrite", lambda: fs.open("/victim", ctx)
            .pwrite(BLOCK_SIZE, b"\xcd" * BLOCK_SIZE, ctx))
    for i in range(4):
        attempt(f"create-{i}",
                lambda i=i: fs.write_file(f"/new{i}",
                                          b"z" * BLOCK_SIZE, ctx))
    attempt("reread", lambda: fs.read_file("/victim", ctx))
    attempt("unmount", lambda: fs.unmount(ctx))
    attempt("remount", lambda: fs.mount(ctx))

    print(fault_report(plan, title=f"fault report (seed={plan.seed}, "
                                   f"{len(plan.specs)} specs)"))
    for line in surfaced:
        print("surfaced:", line)
    state = f"read-only ({fs.degraded_reason})" if fs.read_only \
        else "read-write"
    print(f"post-run state: {state}")
    return 0


def cmd_slo(args) -> int:
    """Run a seeded fault campaign with telemetry on and report SLOs.

    The JSON report (``--out``) contains only simulated quantities,
    merged in sorted-cell-key order, so it is byte-identical for any
    ``--jobs`` value — that is what the CI ``slo-smoke`` step diffs.
    """
    import json

    from .harness.fleet import run_slo_campaign, slo_matrix
    from .harness.report import availability_table, slo_table

    fs_names = sorted(args.slo_fs.split(","))
    for name in fs_names:
        if name not in SPECS_BY_NAME:
            raise SystemExit(f"unknown file system {name!r}")
    seeds = sorted(int(s) for s in args.seeds.split(","))
    cells = slo_matrix(fs_names, seeds, size_gib=args.size_gib,
                       num_cpus=args.cpus, ops=args.ops)
    report = run_slo_campaign(cells, jobs=args.jobs)
    if args.out:
        blob = json.dumps(report, sort_keys=True, indent=2) + "\n"
        if args.out == "-":
            sys.stdout.write(blob)
        else:
            with open(args.out, "w") as handle:
                handle.write(blob)
            print(f"wrote {args.out} ({len(report['cells'])} cells, "
                  f"jobs={args.jobs})")
    if args.openmetrics:
        from .obs import write_openmetrics
        write_openmetrics(args.openmetrics, report["frame"])
        if args.openmetrics != "-":
            print(f"wrote {args.openmetrics} (OpenMetrics)")
    if args.out != "-" and args.openmetrics != "-":
        title = (f"SLO report ({len(report['cells'])} cells, "
                 f"seeds={','.join(str(s) for s in seeds)})")
        print(slo_table(report["results"], title=title).render())
        if report["availability"]:
            print()
            print(availability_table(report["availability"]).render())
    return 0


def cmd_serve(args) -> int:
    """The ``repro.serve`` object service from the command line.

    Without ``--load``: stand up one storage from the flags, serve a few
    demonstration objects through the RPC loopback, and print what
    happened — a smoke test of the whole stack.

    With ``--load``: run the seeded multi-tenant load matrix through the
    fleet runner.  The JSON report and the OpenMetrics exposition
    contain only simulated quantities merged in sorted-cell-key order,
    so both are byte-identical for any ``--jobs`` value and across
    repeated runs with the same seeds.
    """
    import json

    from .harness.fleet import run_serve_campaign, serve_matrix
    from .harness.report import slo_table

    fs_names = sorted(args.serve_fs.split(","))
    for name in fs_names:
        if name not in SPECS_BY_NAME:
            raise SystemExit(f"unknown file system {name!r}")

    if not args.load:
        from .serve import LoadSpec, generate_stream, get_objstorage, \
            loopback_client, run_load
        backends = [{"cls": "fs", "fs": name, "size_gib": args.size_gib,
                     "num_cpus": args.cpus, "aged": args.aged}
                    for name in fs_names]
        storage = get_objstorage(cls="multiplexer", backends=backends,
                                 queue_cap=args.queue_cap)
        client = loopback_client(storage)
        stream = generate_stream(LoadSpec(seed=args.seeds_list[0],
                                          tenants=args.tenants, ops=50))
        report = run_load(client, stream)
        print(f"served {report['requests']} requests across "
              f"{args.tenants} tenant(s) on {len(fs_names)} backend(s): "
              f"{report['ops']}")
        print(f"moved {report['bytes_put']} bytes in / "
              f"{report['bytes_got']} bytes out; "
              f"rejected {report['rejected']}; "
              f"errors {report['errors'] or 'none'}")
        return 0

    cells = serve_matrix(fs_names, args.seeds_list, size_gib=args.size_gib,
                         num_cpus=args.cpus, ops=args.ops,
                         tenants=args.tenants, queue_cap=args.queue_cap,
                         aged=args.aged, faults=args.faults)
    report = run_serve_campaign(cells, jobs=args.jobs)
    if args.out:
        blob = json.dumps(report, sort_keys=True, indent=2) + "\n"
        if args.out == "-":
            sys.stdout.write(blob)
        else:
            with open(args.out, "w") as handle:
                handle.write(blob)
            print(f"wrote {args.out} ({len(report['cells'])} cells, "
                  f"jobs={args.jobs})")
    if args.openmetrics:
        from .obs import write_openmetrics
        write_openmetrics(args.openmetrics, report["frame"])
        if args.openmetrics != "-":
            print(f"wrote {args.openmetrics} (OpenMetrics)")
    if args.out != "-" and args.openmetrics != "-":
        totals = report["totals"]
        title = (f"serve report ({len(report['cells'])} cells, "
                 f"{totals['requests']} requests, "
                 f"{totals['rejected']} rejected)")
        service_rows = [r for r in report["results"]
                        if r["slo"] == "service"]
        print(slo_table(service_rows, title=title).render())
    return 0


def cmd_snapshot(args) -> int:
    """Build and maintain the sharded aged-image snapshot archive.

    ``build`` fans the (fs × profile × utilization × seed) grid across
    ``--jobs`` workers and archives every image (byte-identical packs
    and index for any jobs value); ``ls`` enumerates the index;
    ``scrub`` re-verifies every record CRC and quarantines damaged
    packs (exit 1 when it finds any); ``gc`` evicts LRU packs — or,
    without an archive, LRU ``.snap`` files in ``$REPRO_SNAPSHOT_DIR``
    — until ``--max-bytes`` holds.
    """
    import json
    import os

    from .snapshot import archive as archive_mod
    from .snapshot import store as store_mod

    root = args.archive or archive_mod.archive_root()

    def make_archive():
        if root is None:
            raise SystemExit("no archive: pass --archive DIR or set "
                             "$REPRO_SNAPSHOT_ARCHIVE")
        return archive_mod.Archive(root)

    if args.action == "build":
        from .harness.fleet import build_corpus, corpus_matrix

        fs_names = sorted(args.snap_fs.split(","))
        for name in fs_names:
            if name not in SPECS_BY_NAME:
                raise SystemExit(f"unknown file system {name!r}")
        profiles = sorted(args.profiles.split(","))
        utilizations = sorted(float(u) for u in args.utils.split(","))
        seeds = sorted(int(s) for s in args.seeds.split(","))
        make_archive()  # fail before aging if the root is unusable
        cells = corpus_matrix(fs_names, profiles, utilizations, seeds,
                              size_gib=args.size_gib, num_cpus=args.cpus,
                              churn_multiple=args.churn,
                              track_data=args.track_data)
        seal = (None if args.seal_mib is None
                else int(args.seal_mib * MIB))
        report = build_corpus(cells, root, jobs=args.jobs, seal_bytes=seal)
        if args.out:
            blob = json.dumps(report, sort_keys=True, indent=2) + "\n"
            if args.out == "-":
                sys.stdout.write(blob)
            else:
                with open(args.out, "w") as handle:
                    handle.write(blob)
                print(f"wrote {args.out} ({len(report['cells'])} cells, "
                      f"jobs={args.jobs})")
        if args.out != "-":
            stats = report["archive"]
            print(f"archived {len(report['cells'])} cells -> "
                  f"{stats['objects']} objects "
                  f"({stats['aliases']} deduped) in {stats['packs']} "
                  f"pack(s), {stats['bytes']:,} bytes")
        return 0

    if args.action == "ls":
        archive = make_archive()
        for key, relpath, offset, length in archive.objects():
            print(f"{key}  {relpath}:{offset}+{length}")
        stats = archive.stats()
        print(f"{stats['objects']} object(s) ({stats['aliases']} aliased), "
              f"{stats['packs']} pack(s), {stats['shards']} shard(s), "
              f"{stats['bytes']:,} bytes")
        return 0

    if args.action == "scrub":
        archive = make_archive()
        report = archive.scrub()
        print(f"scrubbed {report['files']} file(s), "
              f"{report['objects']} object record(s)")
        for relpath in report["quarantined"]:
            print(f"quarantined {relpath}")
        if report["dropped_keys"]:
            print(f"dropped {len(report['dropped_keys'])} key(s); "
                  "affected images will re-age on next use")
        return 1 if report["quarantined"] else 0

    # gc: archive packs when an archive is configured, else the flat dir
    max_bytes = args.max_bytes
    if max_bytes is None:
        raw = os.environ.get("REPRO_SNAPSHOT_MAX_BYTES")
        if raw is None:
            raise SystemExit("gc needs --max-bytes or "
                             "$REPRO_SNAPSHOT_MAX_BYTES")
        max_bytes = int(raw)
    if root is not None:
        report = archive_mod.Archive(root).gc(max_bytes)
        print(f"evicted {len(report['evicted'])} pack(s), freed "
              f"{report['freed_bytes']:,} bytes "
              f"({len(report['dropped_keys'])} key(s) dropped)")
    else:
        directory = store_mod.snapshot_dir()
        report = store_mod.evict_lru(directory, max_bytes)
        print(f"evicted {len(report['evicted'])} snapshot(s) from "
              f"{directory}, freed {report['freed_bytes']:,} bytes "
              f"({report['kept_bytes']:,} kept)")
    return 0


def cmd_lint(args) -> int:
    """Run the repro.analysis static-analysis suite (see DESIGN.md)."""
    import json
    import os

    from .analysis import (DEFAULT_BASELINE, DEFAULT_CACHE,
                           DEFAULT_FLOW_BASELINE, DEFAULT_FLOW_CACHE,
                           DEFAULT_TARGET, flow_rules, run_lint,
                           update_baseline)

    root = os.getcwd()
    targets = args.paths or [os.path.join(root, DEFAULT_TARGET)]
    default_baseline = DEFAULT_FLOW_BASELINE if args.flow else \
        DEFAULT_BASELINE
    default_cache = DEFAULT_FLOW_CACHE if args.flow else DEFAULT_CACHE
    rules = flow_rules() if args.flow else None
    baseline = args.baseline
    if baseline is None:
        baseline = os.path.join(root, default_baseline)
    elif baseline == "":
        baseline = None
    cache = None if args.no_cache else os.path.join(root, default_cache)

    if args.emit_registry:
        from .analysis.rules.metric_names import emit_registry
        print(json.dumps(emit_registry(targets, root=root), indent=2))
        return 0

    if args.write_baseline:
        count = update_baseline(targets, baseline_path=baseline,
                                root=root, cache_path=cache, rules=rules)
        print(f"wrote {count} finding(s) to {baseline}")
        return 0

    result = run_lint(targets, baseline_path=baseline, cache_path=cache,
                      root=root, rules=rules, changed_only=args.changed)
    if args.sarif:
        from .analysis.sarif import to_sarif, validate_sarif
        doc = to_sarif(result.findings, base_uri=root)
        problems = validate_sarif(doc)
        if problems:  # never ship an invalid artifact silently
            print("\n".join(f"sarif: {p}" for p in problems))
            return 2
        with open(args.sarif, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
    if args.json:
        print(result.render_json())
    else:
        print(result.render_text(verbose=args.verbose))
    return result.exit_code


def cmd_scalability(args) -> int:
    from .clock import make_context
    from .pm.device import PMDevice
    spec = SPECS_BY_NAME[args.fs]
    table = Table(f"{args.fs} scalability", ["threads", "Kops/s"])
    merged = None
    for threads in args.threads:
        device = PMDevice(int(args.size_gib * GIB))
        fs = spec.build(device, num_cpus=min(threads, 16),
                        track_data=False)
        ctx = make_context(16)
        fs.mkfs(ctx)
        ctx.clock.reset()
        r = run_scalability(fs, ctx, threads=threads, ops_per_thread=60)
        table.add_row(threads, r.kops_per_sec)
        merged = ctx.counters if merged is None \
            else merged.merged_with(ctx.counters)
    print(table.render())
    if merged is not None:
        _dump_metrics(args, merged)
    return 0


def cmd_trace(args) -> int:
    from .harness import phase_breakdown_table
    from .obs import Tracer, write_chrome_trace, write_span_jsonl
    from .workloads import posix_rw_benchmark
    tracer = Tracer(capacity=args.trace_capacity)
    if args.workload == "scalability":
        from .clock import make_context
        from .pm.device import PMDevice
        spec = SPECS_BY_NAME[args.fs]
        device = PMDevice(int(args.size_gib * GIB))
        fs = spec.build(device, num_cpus=args.cpus, track_data=False)
        ctx = make_context(16, trace=tracer)
        device.bind_metrics(ctx.counters.registry, fs=args.fs)
        fs.mkfs(ctx)
        ctx.clock.reset()
        run_scalability(fs, ctx, threads=args.cpus, ops_per_thread=60)
    else:
        fs, ctx = fresh_fs(args.fs, size_gib=args.size_gib,
                           num_cpus=args.cpus, trace=tracer)
        bench = mmap_rw_benchmark if args.workload == "mmap" \
            else posix_rw_benchmark
        bench(fs, ctx, file_size=8 * MIB, pattern=args.pattern)
    if args.format == "chrome":
        write_chrome_trace(args.trace_out, tracer, ctx.counters.registry)
    else:
        write_span_jsonl(args.trace_out, tracer)
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(f"wrote {len(tracer)} spans to {args.trace_out} "
          f"[{args.format}]{dropped}")
    print(phase_breakdown_table({fs.name: ctx.counters}).render())
    _dump_metrics(args, ctx.counters)
    return 0


def _parse_threads(value: str) -> List[int]:
    return [int(x) for x in value.split(",") if x]


def _parse_seeds(value: str) -> List[int]:
    seeds = sorted(int(x) for x in value.split(",") if x)
    if not seeds:
        raise argparse.ArgumentTypeError("need at least one seed")
    return seeds


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="WineFS (SOSP 2021) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list file systems and experiments")

    p = sub.add_parser("age", help="age a file system and report "
                                   "fragmentation")
    _add_common(p)
    p.add_argument("--util", type=float, default=0.75)
    p.add_argument("--churn", type=float, default=8.0,
                   help="churn volume as a multiple of partition size")
    p.add_argument("--profile", choices=sorted(PROFILES),
                   default="agrawal")
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("mmap-bench", help="Fig 1-style mmap bandwidth "
                                          "probe")
    _add_common(p)
    p.add_argument("--aged", action="store_true")
    p.add_argument("--util", type=float, default=0.75)
    p.add_argument("--churn", type=float, default=8.0)
    p.add_argument("--pattern", default="seq-write",
                   choices=["seq-write", "rand-write", "seq-read",
                            "rand-read"])

    p = sub.add_parser("crash-test", help="run the CrashMonkey/ACE "
                                          "catalogue on WineFS")
    p.add_argument("--quick", action="store_true",
                   help="seq-1 workloads only (same as --depth 1)")
    p.add_argument("--depth", type=int, choices=[1, 2, 3], default=2,
                   help="ACE sequence depth: 1 = single ops, 2 = + pairs "
                        "(default), 3 = + triples")

    p = sub.add_parser("faults", help="inject a deterministic fault plan "
                                      "into a WineFS run and report "
                                      "injected/masked/surfaced outcomes")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the plan's RNG (torn-store prefixes)")
    p.add_argument("--kinds", default="poison,torn_store,latency,enospc,"
                                      "write_error",
                   help="comma-separated fault kinds for the default plan")
    p.add_argument("--plan", metavar="PATH", default=None,
                   help="JSON fault plan to load instead of --kinds")
    p.add_argument("--emit-plan", metavar="PATH", default=None,
                   help="write the effective plan as JSON")

    p = sub.add_parser("scalability", help="Fig 10 slice for one FS")
    _add_common(p)
    p.add_argument("--threads", type=_parse_threads, default=[1, 4, 16])

    p = sub.add_parser("bench", help="run a deterministic benchmark matrix "
                                     "across worker processes")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes (results are byte-identical "
                        "for any value)")
    p.add_argument("--fs", dest="bench_fs", default="WineFS,ext4-DAX",
                   help="comma-separated file systems")
    p.add_argument("--patterns", default="seq-read,rand-read",
                   help="comma-separated mmap I/O patterns")
    p.add_argument("--seeds", default="1,2",
                   help="comma-separated workload seeds")
    p.add_argument("--size-gib", type=float, default=0.25)
    p.add_argument("--cpus", type=int, default=4)
    p.add_argument("--aged", action="store_true",
                   help="age each cell's file system first (snapshot-"
                        "cached)")
    p.add_argument("--out", metavar="PATH", default="-",
                   help="report path ('-' for stdout)")

    p = sub.add_parser("slo", help="run a seeded fault campaign with "
                                   "telemetry on and report per-FS SLOs "
                                   "(latency quantiles, error budgets, "
                                   "degraded-mode time)")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes (the report is byte-identical "
                        "for any value)")
    p.add_argument("--fs", dest="slo_fs", default="WineFS,ext4-DAX",
                   help="comma-separated file systems")
    p.add_argument("--seeds", default="1,2",
                   help="comma-separated campaign seeds")
    p.add_argument("--ops", type=_positive_int, default=160,
                   help="operations per campaign phase")
    p.add_argument("--size-gib", type=float, default=0.25)
    p.add_argument("--cpus", type=int, default=2)
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write the JSON SLO report ('-' for stdout)")
    p.add_argument("--openmetrics", metavar="PATH", default=None,
                   help="write the merged frame as OpenMetrics text "
                        "('-' for stdout)")

    p = sub.add_parser("serve", help="serve a multi-tenant object "
                                     "workload (put/get/exists/delete/"
                                     "list) over simulated FS backends")
    p.add_argument("--load", action="store_true",
                   help="run the seeded load matrix instead of the "
                        "demo smoke run")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes (the report is byte-identical "
                        "for any value)")
    p.add_argument("--fs", dest="serve_fs", default="WineFS",
                   help="comma-separated backend file systems")
    p.add_argument("--seeds", dest="seeds_list", type=_parse_seeds,
                   default=[1], help="comma-separated load seeds")
    p.add_argument("--ops", type=_positive_int, default=300,
                   help="requests per load cell")
    p.add_argument("--tenants", type=_positive_int, default=4)
    p.add_argument("--queue-cap", type=int, default=0,
                   help="per-backend admission queue depth "
                        "(0 disables admission control)")
    p.add_argument("--aged", action="store_true",
                   help="serve from aged images (snapshot-cached)")
    p.add_argument("--faults", action="store_true",
                   help="run the seeded serve fault campaign mid-load")
    p.add_argument("--size-gib", type=float, default=0.0625)
    p.add_argument("--cpus", type=int, default=2)
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write the JSON serve report ('-' for stdout)")
    p.add_argument("--openmetrics", metavar="PATH", default=None,
                   help="write the merged frame as OpenMetrics text "
                        "('-' for stdout)")

    p = sub.add_parser("snapshot", help="build and maintain the sharded "
                                        "aged-image snapshot archive")
    p.add_argument("action", choices=["build", "ls", "scrub", "gc"],
                   help="build: archive an aged-image corpus; ls: list "
                        "objects; scrub: verify CRCs and quarantine "
                        "damage; gc: evict LRU packs/snapshots")
    p.add_argument("--archive", metavar="DIR", default=None,
                   help="archive root (default: $REPRO_SNAPSHOT_ARCHIVE)")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes for build (packs and index are "
                        "byte-identical for any value)")
    p.add_argument("--fs", dest="snap_fs", default="WineFS",
                   help="comma-separated file systems to build")
    p.add_argument("--profiles", default="agrawal",
                   help="comma-separated aging profiles "
                        "(agrawal, wang-hpc)")
    p.add_argument("--utils", default="0.75",
                   help="comma-separated target utilizations")
    p.add_argument("--seeds", default="7",
                   help="comma-separated aging seeds")
    p.add_argument("--size-gib", type=float, default=0.25)
    p.add_argument("--cpus", type=int, default=2)
    p.add_argument("--churn", type=float, default=1.0,
                   help="churn volume as a multiple of partition size")
    p.add_argument("--track-data", action="store_true",
                   help="archive images that keep file contents (what "
                        "serve backends restore)")
    p.add_argument("--seal-mib", type=float, default=None,
                   help="pack seal threshold in MiB (default 64)")
    p.add_argument("--max-bytes", type=int, default=None,
                   help="gc target size (default: "
                        "$REPRO_SNAPSHOT_MAX_BYTES)")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write the JSON build report ('-' for stdout)")

    p = sub.add_parser("lint", help="run the repro.analysis static-"
                                    "analysis suite over src/repro")
    p.add_argument("paths", nargs="*",
                   help="files or directories to lint "
                        "(default: src/repro)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (byte-stable for a "
                        "given tree)")
    p.add_argument("--verbose", action="store_true",
                   help="also print baselined findings")
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="baseline file (default: "
                        "src/repro/analysis/baseline.json; '' disables)")
    p.add_argument("--write-baseline", action="store_true",
                   help="regenerate the baseline from current findings")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write .repro-lint-cache.json")
    p.add_argument("--emit-registry", action="store_true",
                   help="print every metric/span name referenced at call "
                        "sites (to refresh repro/obs/names.py)")
    p.add_argument("--flow", action="store_true",
                   help="run the interprocedural rules (persist-before-"
                        "commit, lock-order-cycle, degraded-write-guard) "
                        "with the flow baseline/cache")
    p.add_argument("--sarif", metavar="PATH", default=None,
                   help="also write a SARIF 2.1.0 report to PATH")
    p.add_argument("--changed", action="store_true",
                   help="re-analyze only the git-dirty strongly-connected "
                        "region of the module graph; everything else is "
                        "served from the cache (byte-identical findings)")

    p = sub.add_parser("trace", help="run a workload with span tracing on "
                                     "and export the trace")
    p.add_argument("workload", choices=["mmap", "posix", "scalability"],
                   help="which workload to trace")
    _add_common(p)
    p.add_argument("--pattern", default="seq-write",
                   choices=["seq-write", "rand-write", "seq-read",
                            "rand-read"],
                   help="I/O pattern for mmap/posix workloads")
    p.add_argument("--trace-out", metavar="PATH", default="trace.json",
                   help="output file (default: trace.json)")
    p.add_argument("--format", choices=["chrome", "jsonl"],
                   default="chrome",
                   help="chrome: Perfetto-compatible trace_event JSON; "
                        "jsonl: one span object per line")
    p.add_argument("--trace-capacity", type=_positive_int, default=65536,
                   help="span ring-buffer size (oldest spans drop first)")
    return parser


COMMANDS = {
    "bench": cmd_bench,
    "info": cmd_info,
    "age": cmd_age,
    "mmap-bench": cmd_mmap_bench,
    "crash-test": cmd_crash_test,
    "faults": cmd_faults,
    "slo": cmd_slo,
    "serve": cmd_serve,
    "snapshot": cmd_snapshot,
    "lint": cmd_lint,
    "scalability": cmd_scalability,
    "trace": cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
