"""Metrics registry: labelled counters, gauges and histograms.

The statsd-style shape (one registry, get-or-create metric handles keyed by
name + sorted labels) follows what production object stores expose; here
every value is derived from *simulated* state — nothing in this module ever
reads the wall clock or charges simulated time.

A series is one (name, labels) pair, e.g. ``page_faults{size="2m"}``.
Handles are cheap plain objects so hot paths can cache them and bump a
``value`` attribute directly; the registry is only walked at report time.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError
from ..structures.stats import Summary

LabelsKey = Tuple[Tuple[str, str], ...]

#: per-metric-name ceiling on distinct label combinations; a workload that
#: labels by an unbounded dimension (path, offset, ...) fails fast instead
#: of silently eating memory
DEFAULT_MAX_SERIES = 1024


def _labels_key(labels: Dict[str, object]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, labels: LabelsKey) -> str:
    """``name{k="v",...}`` — the conventional exposition key."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Metric:
    """Base class: one series of one metric."""

    kind = "metric"

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels

    @property
    def series(self) -> str:
        return format_series(self.name, self.labels)

    def __repr__(self) -> str:
        return f"<{self.kind} {self.series}>"


class Counter(Metric):
    """Monotonic count (int or float).

    ``value`` is a plain attribute so compatibility layers (EventCounters
    properties) may assign it directly; ``inc`` is the normal API and
    rejects negative increments.
    """

    kind = "counter"

    def __init__(self, name: str, labels: LabelsKey) -> None:
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.series} cannot decrease (inc {amount})")
        self.value += amount


class Gauge(Metric):
    """Point-in-time value; either set directly or backed by a callback."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelsKey,
                 fn: Optional[Callable[[], float]] = None) -> None:
        super().__init__(name, labels)
        self._fn = fn
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ObservabilityError(
                f"gauge {self.series} is callback-backed")
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.set(self.value - amount)


#: default histogram buckets: exponential ns ladder, 1ns .. ~1s
DEFAULT_BUCKETS = tuple(float(10 ** e) for e in range(10))


class Histogram(Metric):
    """Distribution of observations (simulated-ns latencies, sizes).

    Keeps cumulative bucket counts for cheap exposition plus the raw
    samples (bounded by ``max_samples``) so exact percentiles come from
    :meth:`summary` via the single-sort ``Summary.from_samples`` path.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelsKey,
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 max_samples: int = 100_000) -> None:
        super().__init__(name, labels)
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self.count = 0
        self.sum = 0.0
        self._samples: List[float] = []
        self._max_samples = max_samples

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        if len(self._samples) < self._max_samples:
            self._samples.append(value)

    @property
    def value(self) -> float:
        """Mean observation (what a scalar reading of a histogram means)."""
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> Summary:
        return Summary.from_samples(self._samples)

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {"count": self.count, "sum": self.sum}
        if self._samples:
            s = self.summary()
            out.update(p50=s.median, p90=s.p90, p99=s.p99,
                       min=s.minimum, max=s.maximum)
        return out


class MetricsRegistry:
    """Get-or-create registry of labelled metric series.

    Re-requesting a series returns the same handle; requesting an existing
    series as a different metric kind raises.  A per-name cardinality cap
    guards against unbounded label values.
    """

    def __init__(self, max_series_per_name: int = DEFAULT_MAX_SERIES) -> None:
        self._metrics: Dict[Tuple[str, LabelsKey], Metric] = {}
        self._series_per_name: Dict[str, int] = {}
        self.max_series_per_name = max_series_per_name

    # -- get-or-create ------------------------------------------------------

    def _lookup(self, cls, name: str, labels: Dict[str, object],
                **kwargs) -> Metric:
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ObservabilityError(
                    f"{format_series(*key)} already registered as "
                    f"{metric.kind}, requested {cls.kind}")
            return metric
        count = self._series_per_name.get(name, 0)
        if count >= self.max_series_per_name:
            raise ObservabilityError(
                f"metric {name!r} exceeds {self.max_series_per_name} label "
                "combinations (unbounded label value?)")
        metric = cls(name, key[1], **kwargs)
        self._metrics[key] = metric
        self._series_per_name[name] = count + 1
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._lookup(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels) -> Gauge:
        g = self._lookup(Gauge, name, labels, fn=fn)
        return g  # type: ignore[return-value]

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        h = self._lookup(Histogram, name, labels, buckets=buckets)
        return h  # type: ignore[return-value]

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every stored series in place, keeping handles valid.

        Counters go back to 0, settable gauges to 0.0, histograms drop all
        observations.  Callback-backed gauges are left alone — they reflect
        live object state, not accumulated history.  Existing handles cached
        by hot paths (EventCounters properties) stay bound.
        """
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                metric.value = 0
            elif isinstance(metric, Gauge):
                if metric._fn is None:
                    metric._value = 0.0
            elif isinstance(metric, Histogram):
                metric.bucket_counts = [0] * (len(metric.buckets) + 1)
                metric.count = 0
                metric.sum = 0.0
                metric._samples = []

    # -- introspection ------------------------------------------------------

    def collect(self) -> Iterator[Metric]:
        yield from self._metrics.values()

    def series_count(self, name: Optional[str] = None) -> int:
        if name is None:
            return len(self._metrics)
        return self._series_per_name.get(name, 0)

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Scalar value of one series; *default* when never registered."""
        metric = self._metrics.get((name, _labels_key(labels)))
        return default if metric is None else metric.value

    def as_dict(self) -> Dict[str, object]:
        """Exposition snapshot: series key -> scalar (or histogram dict)."""
        out: Dict[str, object] = {}
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                out[metric.series] = metric.as_dict()
            else:
                out[metric.series] = metric.value
        return out
