"""Per-operation span tracing over simulated time.

A span is one timed region of one virtual CPU's timeline: a VFS call, the
journal commit inside it, the lock wait that preceded it, one page fault.
Timestamps are the :class:`~repro.clock.SimClock` nanoseconds of the CPU
the span ran on — never the wall clock — and recording a span charges
nothing, so enabling tracing cannot perturb any simulated result.

The default handle on every :class:`~repro.clock.SimContext` is the shared
:data:`NULL_TRACER`, whose ``span`` returns one reusable no-op context
manager: instrumentation in hot paths costs a method call when tracing is
off.  A real :class:`Tracer` keeps spans in a bounded ring buffer (oldest
spans drop first) and maintains one open-span stack per CPU so nesting
reflects the call structure on that CPU's virtual timeline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..clock import SimContext

DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True)
class SpanRecord:
    """One completed span on one virtual CPU."""

    span_id: int
    parent_id: Optional[int]
    name: str
    cpu: int
    start_ns: float
    end_ns: float
    depth: int
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


class _NullSpan:
    """Reusable no-op context manager handed out when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set_attr(self, key: str, value: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Default-off trace handle: every operation is a no-op.

    Shared as :data:`NULL_TRACER`; it is stateless, so one instance serves
    every context.
    """

    enabled = False

    def span(self, ctx: "SimContext", name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, cpu: int, start_ns: float, end_ns: float,
               **attrs) -> None:
        return None

    def spans(self) -> List[SpanRecord]:
        return []

    def clear(self) -> None:
        return None


NULL_TRACER = NullTracer()


class _OpenSpan:
    __slots__ = ("tracer", "ctx", "name", "attrs", "span_id", "parent_id",
                 "start_ns", "depth")

    def __init__(self, tracer: "Tracer", ctx: "SimContext", name: str,
                 attrs: Dict[str, object]) -> None:
        self.tracer = tracer
        self.ctx = ctx
        self.name = name
        self.attrs = attrs

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "_OpenSpan":
        self.tracer._push(self)
        return self

    def __exit__(self, *exc) -> None:
        self.tracer._pop(self)


class Tracer(NullTracer):
    """Collects spans into a bounded in-memory ring buffer.

    ``span(ctx, name, **attrs)`` opens a nested span on ``ctx.cpu``;
    ``record`` logs an already-timed interval (e.g. a simulated lock wait)
    without touching the open-span stack beyond parent attribution.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[SpanRecord] = deque(maxlen=capacity)
        self._stacks: Dict[int, List[_OpenSpan]] = {}
        self._next_id = 1
        self.dropped = 0

    # -- span lifecycle -----------------------------------------------------

    def span(self, ctx: "SimContext", name: str, **attrs) -> _OpenSpan:
        return _OpenSpan(self, ctx, name, attrs)

    def _push(self, span: _OpenSpan) -> None:
        stack = self._stacks.setdefault(span.ctx.cpu, [])
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = stack[-1].span_id if stack else None
        span.depth = len(stack)
        span.start_ns = span.ctx.now
        stack.append(span)

    def _pop(self, span: _OpenSpan) -> None:
        stack = self._stacks.get(span.ctx.cpu, [])
        if not stack or stack[-1] is not span:
            # exits must mirror entries per CPU; tolerate (drop) mismatches
            # rather than corrupting an experiment mid-run
            if span in stack:
                stack.remove(span)
            return
        stack.pop()
        self._append(SpanRecord(
            span_id=span.span_id, parent_id=span.parent_id, name=span.name,
            cpu=span.ctx.cpu, start_ns=span.start_ns, end_ns=span.ctx.now,
            depth=span.depth, attrs=span.attrs))

    def record(self, name: str, cpu: int, start_ns: float, end_ns: float,
               **attrs) -> None:
        stack = self._stacks.get(cpu, [])
        parent_id = stack[-1].span_id if stack else None
        span_id = self._next_id
        self._next_id += 1
        self._append(SpanRecord(
            span_id=span_id, parent_id=parent_id, name=name, cpu=cpu,
            start_ns=start_ns, end_ns=end_ns, depth=len(stack), attrs=attrs))

    def _append(self, record: SpanRecord) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)

    # -- introspection ------------------------------------------------------

    def spans(self) -> List[SpanRecord]:
        """Completed spans, oldest first (children precede their parents,
        since a parent closes after its children)."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self._stacks.clear()
        self.dropped = 0

    def open_depth(self, cpu: int) -> int:
        return len(self._stacks.get(cpu, []))

    def __len__(self) -> int:
        return len(self._ring)
