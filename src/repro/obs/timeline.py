"""Degraded-mode timelines over simulated time.

Tracks *when* each simulated mount was degraded (remounted read-only),
when (if ever) it recovered, and the quarantine/relocation events that
preceded degradation.  Driven by the hooks in
:mod:`repro.vfs.interface` — ``remount_read_only`` opens an interval,
an explicit recovery closes it, and :meth:`DegradedTimeline.finalize`
closes whatever is still open at campaign end (degraded-to-end-of-
observation, the availability view).

All timestamps are simulated nanoseconds from the recording context;
nothing here reads wall time or charges the clock.  Timelines from fleet
cells merge by concatenation in the caller's (sorted-cell-key) order, so
merged payloads are byte-stable for any ``--jobs`` value.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ObservabilityError

__all__ = ["DegradedTimeline"]

_SCHEMA = "repro.timeline/1"


class DegradedTimeline:
    """Per-mount degraded intervals plus a flat degradation event log.

    ``tag`` distinguishes mounts that share an FS name (fleet cells each
    label their timeline with the cell key); per-FS aggregates simply sum
    over tags.
    """

    def __init__(self, tag: str = "") -> None:
        self.tag = tag
        #: closed + open intervals, in event order:
        #: {"fs", "tag", "start", "end" (None while open), "reason",
        #:  "recovered" (bool: closed by recovery, not by finalize)}
        self.intervals: List[Dict[str, object]] = []
        #: flat event log: {"t", "fs", "tag", "kind", ...attrs}
        self.events: List[Dict[str, object]] = []
        self.end_ns: Optional[float] = None

    # -- hooks --------------------------------------------------------------

    def _open_interval(self, fs: str) -> Optional[Dict[str, object]]:
        for interval in reversed(self.intervals):
            if interval["fs"] == fs and interval["tag"] == self.tag \
                    and interval["end"] is None:
                return interval
        return None

    def mark_degraded(self, fs: str, reason: str, now_ns: float) -> None:
        """Open a degraded interval for *fs* (idempotent while open).

        A second degradation reason on an already-degraded mount is
        dropped: the first detection wins, matching
        ``FileSystem.remount_read_only``, and no duplicate interval or
        event is emitted.
        """
        if self._open_interval(fs) is not None:
            return
        self.intervals.append({"fs": fs, "tag": self.tag,
                               "start": now_ns, "end": None,
                               "reason": reason, "recovered": False})
        self.note_event(fs, "degraded", now_ns, reason=reason)

    def mark_recovered(self, fs: str, now_ns: float) -> None:
        """Close the open interval (a clean mkfs/mount cycle healed it)."""
        interval = self._open_interval(fs)
        if interval is None:
            return
        if now_ns < float(interval["start"]):  # type: ignore[arg-type]
            raise ObservabilityError("recovery precedes degradation")
        interval["end"] = now_ns
        interval["recovered"] = True
        self.note_event(fs, "recovered", now_ns)

    def note_event(self, fs: str, kind: str, now_ns: float,
                   **attrs: object) -> None:
        """Log one zero-width degradation-related event (quarantine,
        relocation, ...)."""
        entry: Dict[str, object] = {"t": now_ns, "fs": fs,
                                    "tag": self.tag, "kind": kind}
        for key in sorted(attrs):
            entry[key] = attrs[key]
        self.events.append(entry)

    def finalize(self, end_ns: float) -> None:
        """Close every still-open interval at the end of observation."""
        self.end_ns = end_ns
        for interval in self.intervals:
            if interval["end"] is None:
                interval["end"] = end_ns

    # -- aggregates ---------------------------------------------------------

    def degraded_ns(self, fs: Optional[str] = None) -> float:
        """Total degraded simulated time (optionally for one FS).

        Open intervals (no finalize yet) contribute nothing until closed.
        """
        total = 0.0
        for interval in self.intervals:
            if fs is not None and interval["fs"] != fs:
                continue
            if interval["end"] is None:
                continue
            total += float(interval["end"]) - float(interval["start"])  # type: ignore[arg-type]
        return total

    def mttr_ns(self, fs: Optional[str] = None) -> Optional[float]:
        """Mean time-to-recover over *recovered* intervals only.

        ``None`` when nothing recovered — a mount degraded to the end of
        observation has no repair time, and reporting the observation
        cutoff as one would understate real MTTR.
        """
        durations = [float(i["end"]) - float(i["start"])  # type: ignore[arg-type]
                     for i in self.intervals
                     if i["recovered"] and i["end"] is not None
                     and (fs is None or i["fs"] == fs)]
        if not durations:
            return None
        return sum(durations) / len(durations)

    def degradations(self, fs: Optional[str] = None) -> int:
        return sum(1 for i in self.intervals
                   if fs is None or i["fs"] == fs)

    def event_count(self, kind: str, fs: Optional[str] = None) -> int:
        return sum(1 for e in self.events if e["kind"] == kind
                   and (fs is None or e["fs"] == fs))

    def fs_names(self) -> List[str]:
        return sorted({str(i["fs"]) for i in self.intervals}
                      | {str(e["fs"]) for e in self.events})

    # -- merge / serialization ----------------------------------------------

    def merge(self, other: "DegradedTimeline") -> "DegradedTimeline":
        """Concatenate *other*'s record (caller fixes the merge order)."""
        self.intervals.extend(dict(i) for i in other.intervals)
        self.events.extend(dict(e) for e in other.events)
        if other.end_ns is not None:
            self.end_ns = other.end_ns if self.end_ns is None \
                else max(self.end_ns, other.end_ns)
        return self

    def to_payload(self) -> Dict[str, object]:
        return {
            "schema": _SCHEMA,
            "tag": self.tag,
            "end_ns": self.end_ns,
            "intervals": [dict(i) for i in self.intervals],
            "events": [dict(e) for e in self.events],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "DegradedTimeline":
        if payload.get("schema") != _SCHEMA:
            raise ObservabilityError(
                f"unknown timeline schema {payload.get('schema')!r}")
        timeline = cls(tag=str(payload.get("tag", "")))
        timeline.end_ns = payload.get("end_ns")  # type: ignore[assignment]
        timeline.intervals = [dict(i) for i in payload["intervals"]]
        timeline.events = [dict(e) for e in payload["events"]]
        return timeline
