"""SLO specs, the surfaced/masked error ledger, and SLO evaluation.

An :class:`SLOSpec` states what "good" means for one class of VFS
operations: latency objectives on the sketch quantiles (p50/p99/p999 in
simulated ns) and an error budget — the fraction of operations allowed to
surface an error to the caller.  Faults that the stack *masks* (a torn
journal record caught by its checksum, a failing block relocated on
retry) never burn budget; that distinction is exactly what the
:class:`~repro.faults.FaultPlan` ledger records, and
:meth:`ErrorLedger.absorb_fault_counts` folds it in per FS.

Evaluation (:func:`evaluate`) is pure arithmetic over a telemetry frame:
same frame, same report, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from .sketch import SketchBank
from .timeline import DegradedTimeline

__all__ = ["SLOSpec", "DEFAULT_SLOS", "ErrorLedger", "SLOResult",
           "evaluate"]


@dataclass(frozen=True)
class SLOSpec:
    """One operation class's objectives.

    ``ops`` names the VFS entry points the spec covers; quantile bounds
    are inclusive (``p99 <= p99_ns`` passes).  ``error_budget`` is the
    allowed surfaced-error fraction of operations in the class (0.001 =
    "three nines" on errors).  A bound of ``None`` means "no objective".
    """

    name: str
    ops: Tuple[str, ...]
    p50_ns: Optional[float] = None
    p99_ns: Optional[float] = None
    p999_ns: Optional[float] = None
    error_budget: float = 0.001

    def covers(self, op: str) -> bool:
        return op in self.ops


#: default objectives per VFS operation class.  Thresholds are generous
#: multiples of fresh-filesystem latencies (the point is catching
#: degraded-mode regressions and fault-campaign tail blowups, not
#: grading healthy runs).
DEFAULT_SLOS: Tuple[SLOSpec, ...] = (
    SLOSpec("data", ("read", "write", "write_zeros"),
            p99_ns=2e5, p999_ns=2e6, error_budget=0.001),
    SLOSpec("sync", ("fsync",),
            p99_ns=1e6, p999_ns=5e6, error_budget=0.001),
    SLOSpec("namespace", ("create", "open", "unlink", "mkdir", "rmdir",
                          "rename", "readdir"),
            p99_ns=1e6, p999_ns=5e6, error_budget=0.005),
    SLOSpec("space", ("truncate", "fallocate", "mmap"),
            p99_ns=5e6, p999_ns=2e7, error_budget=0.005),
    # service-level objectives for repro.serve: the object verbs recorded
    # under the "serve" label.  The names never collide with VFS entry
    # points, so frames without a service layer evaluate exactly as
    # before.  Thresholds cover a whole object op (several VFS calls,
    # payloads up to 256 KiB) on an aged image.
    SLOSpec("service", ("put", "get", "exists", "delete", "list"),
            p99_ns=5e7, p999_ns=2e8, error_budget=0.001),
)


class ErrorLedger:
    """Per-(fs, op) operation/error counts plus per-fs fault outcomes.

    ``ops`` counts every instrumented VFS call (successes and failures);
    ``surfaced`` counts the calls that raised an
    :class:`~repro.errors.FSError` to the caller, keyed further by errno
    name.  Fault-plan outcomes (injected/masked/surfaced per kind) are
    absorbed per FS so reports can show what the stack swallowed.
    """

    def __init__(self) -> None:
        self._ops: Dict[Tuple[str, str], int] = {}
        self._surfaced: Dict[Tuple[str, str], Dict[str, int]] = {}
        self._faults: Dict[str, Dict[str, Dict[str, int]]] = {}

    # -- recording ----------------------------------------------------------

    def note_op(self, fs: str, op: str) -> None:
        key = (fs, op)
        self._ops[key] = self._ops.get(key, 0) + 1

    def note_surfaced(self, fs: str, op: str, errno_name: str) -> None:
        key = (fs, op)
        by_errno = self._surfaced.setdefault(key, {})
        by_errno[errno_name] = by_errno.get(errno_name, 0) + 1

    def absorb_fault_counts(self, fs: str,
                            counts: Mapping[Tuple[str, str], int]) -> None:
        """Fold a :class:`~repro.faults.FaultPlan`'s ``counts`` ledger
        (keyed ``(kind, outcome)``) into this FS's fault record."""
        store = self._faults.setdefault(fs, {})
        for (kind, outcome), n in sorted(counts.items()):
            by_outcome = store.setdefault(kind, {})
            by_outcome[outcome] = by_outcome.get(outcome, 0) + int(n)

    # -- queries ------------------------------------------------------------

    def ops(self, fs: str, op: Optional[str] = None) -> int:
        if op is not None:
            return self._ops.get((fs, op), 0)
        return sum(n for (f, _o), n in self._ops.items() if f == fs)

    def surfaced(self, fs: str, op: Optional[str] = None) -> int:
        total = 0
        for (f, o), by_errno in self._surfaced.items():
            if f == fs and (op is None or o == op):
                total += sum(by_errno.values())
        return total

    def fault_total(self, fs: str, outcome: str) -> int:
        return sum(by_outcome.get(outcome, 0)
                   for by_outcome in self._faults.get(fs, {}).values())

    def fs_names(self) -> List[str]:
        return sorted({f for (f, _o) in self._ops}
                      | {f for (f, _o) in self._surfaced}
                      | set(self._faults))

    def op_names(self, fs: str) -> List[str]:
        return sorted({o for (f, o) in self._ops if f == fs}
                      | {o for (f, o) in self._surfaced if f == fs})

    # -- merge / serialization ----------------------------------------------

    def merge(self, other: "ErrorLedger") -> "ErrorLedger":
        for key in sorted(other._ops):
            self._ops[key] = self._ops.get(key, 0) + other._ops[key]
        for key in sorted(other._surfaced):
            mine = self._surfaced.setdefault(key, {})
            for errno_name in sorted(other._surfaced[key]):
                mine[errno_name] = mine.get(errno_name, 0) \
                    + other._surfaced[key][errno_name]
        for fs in sorted(other._faults):
            store = self._faults.setdefault(fs, {})
            for kind in sorted(other._faults[fs]):
                by_outcome = store.setdefault(kind, {})
                for outcome in sorted(other._faults[fs][kind]):
                    by_outcome[outcome] = by_outcome.get(outcome, 0) \
                        + other._faults[fs][kind][outcome]
        return self

    def to_payload(self) -> Dict[str, object]:
        return {
            "ops": {f"{f}\x1f{o}": n
                    for (f, o), n in sorted(self._ops.items())},
            "surfaced": {f"{f}\x1f{o}": dict(sorted(by.items()))
                         for (f, o), by in sorted(self._surfaced.items())},
            "faults": {fs: {kind: dict(sorted(by.items()))
                            for kind, by in sorted(kinds.items())}
                       for fs, kinds in sorted(self._faults.items())},
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ErrorLedger":
        ledger = cls()
        for key, n in dict(payload.get("ops", {})).items():
            fs, _, op = key.partition("\x1f")
            ledger._ops[(fs, op)] = int(n)
        for key, by in dict(payload.get("surfaced", {})).items():
            fs, _, op = key.partition("\x1f")
            ledger._surfaced[(fs, op)] = {k: int(v)
                                          for k, v in dict(by).items()}
        for fs, kinds in dict(payload.get("faults", {})).items():
            ledger._faults[fs] = {kind: {o: int(v)
                                         for o, v in dict(by).items()}
                                  for kind, by in dict(kinds).items()}
        return ledger


@dataclass
class SLOResult:
    """One (fs, spec) evaluation row."""

    fs: str
    spec: SLOSpec
    ops: int
    surfaced: int
    p50_ns: float
    p99_ns: float
    p999_ns: float
    #: surfaced-error fraction divided by the budget; > 1.0 = budget blown
    budget_burn: float
    #: "objective<=bound: OK|VIOLATED" lines, one per set objective
    objective_lines: Tuple[str, ...]
    ok: bool


def _check(label: str, value: float, bound: Optional[float],
           lines: List[str]) -> bool:
    if bound is None:
        return True
    ok = value <= bound
    lines.append(f"{label}<={bound:.0f}ns: {'OK' if ok else 'VIOLATED'}")
    return ok


def evaluate(sketches: SketchBank, ledger: ErrorLedger,
             timeline: Optional[DegradedTimeline] = None,
             slos: Tuple[SLOSpec, ...] = DEFAULT_SLOS) -> List[SLOResult]:
    """Evaluate every (fs, spec) pair that saw at least one operation.

    Quantiles come from the merged per-op sketches of the spec's op
    class (an exact merge — the class sketch is what a per-class sketch
    would have recorded); errors from the ledger.  Rows are ordered
    (fs, spec) — deterministic for a deterministic frame.
    """
    fs_names = sorted(set(ledger.fs_names())
                      | {fs for (fs, _op) in sketches.keys()})
    results: List[SLOResult] = []
    for fs in fs_names:
        for spec in slos:
            class_sketch = None
            ops = 0
            surfaced = 0
            for op in spec.ops:
                sketch = sketches.get(fs, op)
                if sketch is not None:
                    if class_sketch is None:
                        from .sketch import LatencySketch
                        class_sketch = LatencySketch()
                    class_sketch.merge(sketch)
                ops += ledger.ops(fs, op)
                surfaced += ledger.surfaced(fs, op)
            if ops == 0 and class_sketch is None:
                continue
            p50 = class_sketch.p50 if class_sketch else 0.0
            p99 = class_sketch.p99 if class_sketch else 0.0
            p999 = class_sketch.p999 if class_sketch else 0.0
            error_fraction = surfaced / ops if ops else 0.0
            burn = (error_fraction / spec.error_budget
                    if spec.error_budget > 0 else 0.0)
            lines: List[str] = []
            ok = True
            ok &= _check("p50", p50, spec.p50_ns, lines)
            ok &= _check("p99", p99, spec.p99_ns, lines)
            ok &= _check("p999", p999, spec.p999_ns, lines)
            if spec.error_budget > 0:
                budget_ok = burn <= 1.0
                lines.append(f"errors<={spec.error_budget:g}: "
                             f"{'OK' if budget_ok else 'VIOLATED'}")
                ok &= budget_ok
            results.append(SLOResult(
                fs=fs, spec=spec, ops=ops, surfaced=surfaced,
                p50_ns=p50, p99_ns=p99, p999_ns=p999, budget_burn=burn,
                objective_lines=tuple(lines), ok=bool(ok)))
    return results
