"""Observability for the simulated WineFS stack.

Three pieces, all keyed to **simulated** nanoseconds (never wall time):

* :mod:`repro.obs.metrics` — a labelled metrics registry (Counter, Gauge,
  Histogram) that :class:`~repro.clock.EventCounters` sits on top of;
* :mod:`repro.obs.trace` — nested per-operation spans with a bounded ring
  buffer; default-off via the shared :data:`NULL_TRACER` handle carried by
  every :class:`~repro.clock.SimContext`;
* :mod:`repro.obs.export` — JSONL and Chrome ``trace_event`` exporters so
  runs open in Perfetto, plus the OpenMetrics SLO exposition;
* :mod:`repro.obs.sketch` / :mod:`repro.obs.slo` /
  :mod:`repro.obs.timeline` / :mod:`repro.obs.telemetry` — the SLO
  telemetry pipeline: mergeable per-(fs, op) latency sketches, error
  budgets over a surfaced/masked ledger, and degraded-mode timelines,
  attached per file system via ``FileSystem.attach_telemetry``.

Invariant: observability never charges the :class:`~repro.clock.SimClock`;
all benchmark numbers are bit-identical with tracing or telemetry on or
off.
"""

from .metrics import (Counter, Gauge, Histogram, Metric, MetricsRegistry,
                      format_series)
from .trace import NULL_TRACER, NullTracer, SpanRecord, Tracer
from .export import (chrome_trace, chrome_trace_events,
                     openmetrics_exposition, openmetrics_lines,
                     span_jsonl_lines, write_chrome_trace,
                     write_metrics_json, write_openmetrics,
                     write_span_jsonl)
from .faults import bind_fault_metrics, fault_report
from .sketch import LatencySketch, SketchBank
from .slo import DEFAULT_SLOS, ErrorLedger, SLOResult, SLOSpec
from .telemetry import (Telemetry, evaluate_frame, frame_of, merge_frames)
from .timeline import DegradedTimeline

__all__ = [
    "Counter", "Gauge", "Histogram", "Metric", "MetricsRegistry",
    "format_series",
    "NULL_TRACER", "NullTracer", "SpanRecord", "Tracer",
    "chrome_trace", "chrome_trace_events", "span_jsonl_lines",
    "write_chrome_trace", "write_metrics_json", "write_span_jsonl",
    "openmetrics_exposition", "openmetrics_lines", "write_openmetrics",
    "bind_fault_metrics", "fault_report",
    "LatencySketch", "SketchBank",
    "DEFAULT_SLOS", "ErrorLedger", "SLOResult", "SLOSpec",
    "Telemetry", "evaluate_frame", "frame_of", "merge_frames",
    "DegradedTimeline",
]
