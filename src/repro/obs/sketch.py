"""Mergeable latency sketches over simulated nanoseconds.

A :class:`LatencySketch` is a fixed-boundary log-bucketed histogram: every
sketch in the tree shares the same boundary ladder, so merging two sketches
is exact elementwise addition — no rank error is introduced by the merge
itself, only by the bucket resolution, which is identical for a serial run
and a fleet run.  That is what lets a ``--jobs N`` fault campaign produce
an SLO report byte-identical to ``--jobs 1``: each cell's sketch is
deterministic, and the merge is a sum in sorted-cell-key order.

The ladder is four sub-buckets per octave with mantissas (1, 1.25, 1.5,
1.75) — all exactly representable in binary floating point, so the
boundaries (and therefore every bucket assignment) are bit-identical on
any IEEE-754 host.  Resolution is <= 25% relative error on any reported
quantile, spanning 1 ns to ~2^40 ns (~18 simulated minutes) with under/
overflow buckets at the ends.

Serialization (:meth:`LatencySketch.to_payload`) is a plain-JSON dict with
sparse bucket counts keyed by stringified index; identical observation
streams produce identical payloads, and ``json.dumps(..., sort_keys=True)``
of a payload is byte-stable.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ObservabilityError

__all__ = ["BOUNDARIES", "LatencySketch", "SketchBank"]

#: exact-in-binary sub-bucket mantissas (x/4 for x in 4..7)
_SUBS = (1.0, 1.25, 1.5, 1.75)
_MIN_EXP = 0     # first octave starts at 2^0 = 1 ns
_MAX_EXP = 40    # last finite boundary 1.75 * 2^39; overflow above

#: the shared boundary ladder: bucket ``i`` holds values ``v`` with
#: ``BOUNDARIES[i-1] < v <= BOUNDARIES[i]`` (bucket 0: ``v <= 1.0``);
#: one extra overflow bucket sits past the final boundary
BOUNDARIES: Tuple[float, ...] = tuple(
    m * float(2 ** e) for e in range(_MIN_EXP, _MAX_EXP) for m in _SUBS)

_NUM_BUCKETS = len(BOUNDARIES) + 1   # + overflow

#: payload schema tag; bump on any incompatible layout change
_SCHEMA = "repro.sketch/1"


class LatencySketch:
    """One fixed-boundary latency distribution (simulated ns).

    Exact counts per bucket, exact ``count``/``sum``/``min``/``max``.
    Quantiles come from the cumulative bucket counts and report the
    bucket's inclusive upper boundary — a deterministic, mergeable answer
    (never an interpolation over raw samples, which would not survive a
    merge).
    """

    __slots__ = ("counts", "count", "sum", "minimum", "maximum")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    # -- recording ----------------------------------------------------------

    def observe(self, value: float) -> None:
        if value < 0:
            raise ObservabilityError(f"negative latency {value}")
        idx = bisect_left(BOUNDARIES, value)
        self.counts[idx] = self.counts.get(idx, 0) + 1
        self.count += 1
        self.sum += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    # -- queries ------------------------------------------------------------

    def quantile(self, pct: float) -> float:
        """Inclusive upper boundary of the bucket holding the pct-th
        percentile observation (0 when the sketch is empty).

        Overflow observations report the exact tracked maximum."""
        if not 0.0 <= pct <= 100.0:
            raise ObservabilityError(f"percentile {pct} out of range")
        if not self.count:
            return 0.0
        # smallest rank r with cumulative(r) >= ceil(pct/100 * count),
        # computed in integers so no float rank ever straddles a bucket
        target = -(-int(pct * self.count) // 100)  # ceil without floats
        target = max(target, 1)
        cum = 0
        for idx in sorted(self.counts):
            cum += self.counts[idx]
            if cum >= target:
                if idx >= len(BOUNDARIES):
                    return float(self.maximum)
                return BOUNDARIES[idx]
        return float(self.maximum)   # pragma: no cover - cum always reaches

    @property
    def p50(self) -> float:
        return self.quantile(50)

    @property
    def p99(self) -> float:
        return self.quantile(99)

    @property
    def p999(self) -> float:
        return self.quantile(99.9)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper boundary, cumulative count) pairs for every bucket up to
        the last occupied one — the OpenMetrics ``le`` series."""
        if not self.counts:
            return []
        last = max(self.counts)
        out: List[Tuple[float, int]] = []
        cum = 0
        for idx in range(min(last + 1, len(BOUNDARIES))):
            cum += self.counts.get(idx, 0)
            out.append((BOUNDARIES[idx], cum))
        return out

    # -- merge / serialization ----------------------------------------------

    def merge(self, other: "LatencySketch") -> "LatencySketch":
        """Fold *other* into self (exact; both share the ladder)."""
        for idx, n in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + n
        self.count += other.count
        self.sum += other.sum
        if other.minimum is not None and (self.minimum is None
                                          or other.minimum < self.minimum):
            self.minimum = other.minimum
        if other.maximum is not None and (self.maximum is None
                                          or other.maximum > self.maximum):
            self.maximum = other.maximum
        return self

    def to_payload(self) -> Dict[str, object]:
        return {
            "schema": _SCHEMA,
            "count": self.count,
            "sum": self.sum,
            "min": self.minimum,
            "max": self.maximum,
            "counts": {str(idx): self.counts[idx]
                       for idx in sorted(self.counts)},
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "LatencySketch":
        if payload.get("schema") != _SCHEMA:
            raise ObservabilityError(
                f"unknown sketch schema {payload.get('schema')!r}")
        sketch = cls()
        sketch.count = int(payload["count"])
        sketch.sum = float(payload["sum"])
        sketch.minimum = None if payload["min"] is None \
            else float(payload["min"])
        sketch.maximum = None if payload["max"] is None \
            else float(payload["max"])
        for key, n in dict(payload["counts"]).items():
            idx = int(key)
            if not 0 <= idx < _NUM_BUCKETS:
                raise ObservabilityError(f"bucket index {idx} out of range")
            sketch.counts[idx] = int(n)
        return sketch

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"LatencySketch(n={self.count}, p50={self.p50:.0f}, "
                f"p99={self.p99:.0f})")


class SketchBank:
    """Latency sketches keyed by (fs, op) — one per VFS entry point.

    Key order in payloads is sorted, so two banks built from the same
    observations serialize identically regardless of insertion order.
    """

    def __init__(self) -> None:
        self._sketches: Dict[Tuple[str, str], LatencySketch] = {}

    def observe(self, fs: str, op: str, latency_ns: float) -> None:
        key = (fs, op)
        sketch = self._sketches.get(key)
        if sketch is None:
            sketch = self._sketches[key] = LatencySketch()
        sketch.observe(latency_ns)

    def get(self, fs: str, op: str) -> Optional[LatencySketch]:
        return self._sketches.get((fs, op))

    def keys(self) -> List[Tuple[str, str]]:
        return sorted(self._sketches)

    def items(self) -> Iterable[Tuple[Tuple[str, str], LatencySketch]]:
        for key in sorted(self._sketches):
            yield key, self._sketches[key]

    def merge(self, other: "SketchBank") -> "SketchBank":
        for key in sorted(other._sketches):
            mine = self._sketches.get(key)
            if mine is None:
                mine = self._sketches[key] = LatencySketch()
            mine.merge(other._sketches[key])
        return self

    def to_payload(self) -> Dict[str, object]:
        return {f"{fs}\x1f{op}": sketch.to_payload()
                for (fs, op), sketch in self.items()}

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "SketchBank":
        bank = cls()
        for key in sorted(payload):
            fs, _, op = key.partition("\x1f")
            bank._sketches[(fs, op)] = LatencySketch.from_payload(
                payload[key])
        return bank

    def __len__(self) -> int:
        return len(self._sketches)
