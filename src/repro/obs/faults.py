"""Observability helpers for fault injection.

The :class:`~repro.faults.FaultPlan` ledger mirrors events into the
metrics registry lazily (``fault_events{kind,outcome}``) and, with tracing
on, emits zero-width ``fault.<kind>`` records.  This module adds the
pull side: registry gauges that expose the ledger without the plan having
to push, and a plain-text report for the CLI.

Everything here is read-only over the plan — binding metrics or printing
a report never perturbs clocks or counters.
"""

from __future__ import annotations

from typing import List, Optional

from .metrics import MetricsRegistry

#: column layout shared by the CLI and tests
_REPORT_HEADER = ("kind", "injected", "masked", "surfaced")


def bind_fault_metrics(registry: MetricsRegistry, plan) -> None:
    """Register pull-gauges over *plan*'s ledger.

    One ``fault_outcomes{kind,outcome}`` gauge per (kind, outcome) pair
    the plan can produce, so dashboards see explicit zeros instead of
    missing series.
    """
    from ..faults.plan import FAULT_KINDS, OUTCOMES

    for kind in FAULT_KINDS:
        for outcome in OUTCOMES:
            registry.gauge(
                "fault_outcomes",
                fn=(lambda k=kind, o=outcome: float(plan.count(k, o))),
                kind=kind, outcome=outcome)


def fault_report(plan, title: Optional[str] = None) -> str:
    """Render the plan's ledger as an aligned text table."""
    rows = plan.report_rows()
    lines: List[str] = []
    if title:
        lines.append(title)
    widths = [max(len(_REPORT_HEADER[0]),
                  *(len(r[0]) for r in rows)) if rows
              else len(_REPORT_HEADER[0]),
              8, 8, 8]
    header = "  ".join(h.ljust(w) if i == 0 else h.rjust(w)
                       for i, (h, w) in enumerate(zip(_REPORT_HEADER,
                                                      widths)))
    lines.append(header)
    lines.append("-" * len(header))
    if not rows:
        lines.append("(no fault events)")
    for kind, injected, masked, surfaced in rows:
        lines.append("  ".join([kind.ljust(widths[0]),
                                str(injected).rjust(widths[1]),
                                str(masked).rjust(widths[2]),
                                str(surfaced).rjust(widths[3])]))
    return "\n".join(lines)
