"""The metric and span name registry.

One authoritative list of every counter/gauge/histogram name and every
span/record name used anywhere in ``src/repro``.  The ``metric-names``
lint rule (:mod:`repro.analysis.rules.metric_names`) resolves each call
site's name literal against this module, so a typo'd label fails CI
instead of silently splitting a series into two.

To regenerate after adding instrumentation, run::

    python -m repro lint --emit-registry

which prints every name referenced in the tree; add the new ones here
(a name used at a call site but absent below is a lint finding, and an
entry below that no call site uses anymore is harmless but should be
pruned when noticed).

Sketch-name prefix convention
-----------------------------
Latency-sketch families (:mod:`repro.obs.sketch`) are exposed as
OpenMetrics histograms and follow ``<layer>_op_latency_ns``: the layer
prefix (``vfs_`` today) names the instrumentation point, and the ``_ns``
suffix pins the unit to simulated nanoseconds.  SLO-evaluation families
(:mod:`repro.obs.slo` via the exposition) carry the ``slo_`` prefix with
OpenMetrics-conventional suffixes — ``_total`` for counters,
``_seconds`` for simulated-time gauges.  Every family name below is
asserted against the exposition by the tier-1 telemetry suite, so a new
sketch or SLO family must be registered here (no baseline entries).
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = ["METRIC_NAMES", "SPAN_NAMES", "SPAN_PREFIXES", "all_names"]

#: every registered counter/gauge/histogram name
METRIC_NAMES: FrozenSet[str] = frozenset({
    # EventCounters facade series (clock._COUNTER_LAYOUT)
    "page_faults",
    "tlb_lookups",
    "llc_lookups",
    "pm_bytes",
    "phase_ns",
    "syscalls",
    # device / MMU pull gauges
    "pm_device_bytes",
    "pm_materialized_bytes",
    "tlb_occupancy",
    "tlb_lookups_total",
    "tlb_miss_rate",
    "pt_mapped_pages",
    "pt_installed_total",
    # fault injection
    "fault_events",
    "fault_outcomes",
    "fs_degraded",
    # SLO telemetry exposition (repro.obs.sketch / slo / timeline)
    "vfs_op_latency_ns",
    "slo_ops_total",
    "slo_errors_total",
    "slo_fault_outcomes_total",
    "slo_latency_ns",
    "slo_error_budget_burn",
    "slo_objective_ok",
    "slo_degraded_seconds",
    "slo_degradations_total",
    "slo_mttr_seconds",
    # service layer (repro.serve)
    "serve_requests_total",
    "serve_rejected_total",
    "serve_queue_depth",
    # snapshot cache health (repro.harness.setup)
    "snapshot_load_failures",
    # snapshot archive / corpus builder (repro.harness.fleet)
    "snapshot_archive_objects",
    "snapshot_archive_bytes",
})

#: every span / zero-width record name
SPAN_NAMES: FrozenSet[str] = frozenset({
    "vfs.create",
    "vfs.open",
    "vfs.unlink",
    "vfs.mkdir",
    "vfs.rmdir",
    "vfs.rename",
    "vfs.read",
    "vfs.write",
    "vfs.truncate",
    "vfs.fallocate",
    "vfs.fsync",
    "vfs.mmap",
    "alloc",
    "journal.begin",
    "journal.commit",
    "winefs.recover",
    "winefs.data_journal",
    "winefs.cow",
    "fault.alloc",
    "lock.wait",
    "mmu.fault",
    "fs.degraded",
})

#: allowed literal prefixes for dynamically-built span names
#: (e.g. ``f"fault.{kind}"`` in repro.faults.plan)
SPAN_PREFIXES: FrozenSet[str] = frozenset({
    "fault.",
})


def all_names() -> FrozenSet[str]:
    """Union of metric and span names (for exposition tooling)."""
    return METRIC_NAMES | SPAN_NAMES
