"""Trace exporters: JSONL, Chrome ``trace_event`` (Perfetto), OpenMetrics.

Chrome's trace format wants microsecond ``ts``/``dur`` values; spans carry
simulated nanoseconds, so the exporter divides by 1000 and keeps the exact
ns values in ``args`` (``start_ns``/``end_ns``).  Each virtual CPU becomes
one ``tid`` so Perfetto renders the per-CPU timelines as separate tracks.

The OpenMetrics-style exposition (:func:`openmetrics_lines`) renders an
SLO telemetry frame as text families — latency sketches become cumulative
``_bucket``/``_count``/``_sum`` histogram series, the error ledger and
degraded timeline become counters and gauges.  Series are emitted in
sorted label order and values formatted by ``repr``, so the exposition is
byte-stable for a given frame: the CI ``slo-smoke`` step diffs the
``--jobs 1`` and ``--jobs 2`` artifacts byte for byte.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .metrics import MetricsRegistry
from .trace import NullTracer, SpanRecord


def chrome_trace_events(spans: Iterable[SpanRecord]) -> List[Dict]:
    """Complete ("X") events, one per span, sorted by start time."""
    events: List[Dict] = []
    for s in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
        args: Dict[str, object] = dict(s.attrs)
        args["start_ns"] = s.start_ns
        args["end_ns"] = s.end_ns
        events.append({
            "name": s.name,
            "cat": "sim",
            "ph": "X",
            "ts": s.start_ns / 1000.0,
            "dur": s.duration_ns / 1000.0,
            "pid": 0,
            "tid": s.cpu,
            "args": args,
        })
    return events


def chrome_trace(tracer: NullTracer,
                 registry: Optional[MetricsRegistry] = None) -> Dict:
    """The full JSON-object form Perfetto/chrome://tracing accepts."""
    out: Dict[str, object] = {
        "traceEvents": chrome_trace_events(tracer.spans()),
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated", "source": "repro"},
    }
    if registry is not None:
        out["otherData"]["metrics"] = registry.as_dict()  # type: ignore[index]
    return out


def span_jsonl_lines(spans: Iterable[SpanRecord]) -> List[str]:
    """One JSON object per span, in ring-buffer (completion) order."""
    lines = []
    for s in spans:
        lines.append(json.dumps({
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "name": s.name,
            "cpu": s.cpu,
            "start_ns": s.start_ns,
            "end_ns": s.end_ns,
            "depth": s.depth,
            "attrs": s.attrs,
        }, sort_keys=True))
    return lines


def write_chrome_trace(path: str, tracer: NullTracer,
                       registry: Optional[MetricsRegistry] = None) -> None:
    with open(path, "w") as f:
        json.dump(chrome_trace(tracer, registry), f)


def write_span_jsonl(path: str, tracer: NullTracer) -> None:
    with open(path, "w") as f:
        for line in span_jsonl_lines(tracer.spans()):
            f.write(line + "\n")


def write_metrics_json(path: str, registry: MetricsRegistry) -> None:
    """Dump a registry snapshot; ``-`` writes to stdout."""
    payload = json.dumps(registry.as_dict(), indent=2, sort_keys=True)
    if path == "-":
        print(payload)
    else:
        with open(path, "w") as f:
            f.write(payload + "\n")


# -- OpenMetrics-style exposition of SLO telemetry frames --------------------

def _om_value(value: object) -> str:
    """Byte-stable sample value: ints plain, floats via ``repr``."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _om_labels(labels: Sequence[Tuple[str, object]]) -> str:
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{{{inner}}}" if inner else ""


def openmetrics_lines(frame: Mapping[str, object]) -> List[str]:
    """Render one telemetry frame as OpenMetrics-style text lines.

    *frame* is a (possibly merged) payload from
    :mod:`repro.obs.telemetry`.  Families, in order: the per-(fs, op)
    latency histograms, operation/error counters, fault outcomes, the
    per-(fs, SLO-class) evaluation gauges, and the degraded-mode
    aggregates.  Ends with ``# EOF`` per the OpenMetrics framing.
    """
    from .slo import DEFAULT_SLOS
    from .telemetry import evaluate_frame, frame_of

    sketches, ledger, timeline = frame_of(frame)
    lines: List[str] = []

    lines.append("# TYPE vfs_op_latency_ns histogram")
    lines.append("# HELP vfs_op_latency_ns per-operation VFS latency "
                 "in simulated nanoseconds")
    for (fs, op), sketch in sketches.items():
        base = (("fs", fs), ("op", op))
        for bound, cum in sketch.cumulative_buckets():
            lines.append(
                f"vfs_op_latency_ns_bucket"
                f"{_om_labels(base + (('le', _om_value(bound)),))} {cum}")
        lines.append(
            f"vfs_op_latency_ns_bucket"
            f"{_om_labels(base + (('le', '+Inf'),))} {sketch.count}")
        lines.append(f"vfs_op_latency_ns_count{_om_labels(base)} "
                     f"{sketch.count}")
        lines.append(f"vfs_op_latency_ns_sum{_om_labels(base)} "
                     f"{_om_value(sketch.sum)}")

    lines.append("# TYPE slo_ops_total counter")
    for fs in ledger.fs_names():
        for op in ledger.op_names(fs):
            lines.append(f"slo_ops_total{_om_labels((('fs', fs), ('op', op)))}"
                         f" {ledger.ops(fs, op)}")

    lines.append("# TYPE slo_errors_total counter")
    errors = ledger.to_payload()["surfaced"]
    for key in sorted(errors):  # type: ignore[arg-type]
        fs, _, op = key.partition("\x1f")
        for errno_name, n in sorted(errors[key].items()):  # type: ignore[index]
            lines.append(
                f"slo_errors_total"
                f"{_om_labels((('errno', errno_name), ('fs', fs), ('op', op)))}"
                f" {n}")

    lines.append("# TYPE slo_fault_outcomes_total counter")
    faults = ledger.to_payload()["faults"]
    for fs in sorted(faults):  # type: ignore[arg-type]
        for kind in sorted(faults[fs]):  # type: ignore[index]
            for outcome, n in sorted(faults[fs][kind].items()):
                lines.append(
                    f"slo_fault_outcomes_total"
                    f"{_om_labels((('fs', fs), ('kind', kind), ('outcome', outcome)))}"
                    f" {n}")

    results = evaluate_frame(frame, slos=DEFAULT_SLOS)
    lines.append("# TYPE slo_latency_ns gauge")
    for r in results:
        base = (("fs", r.fs), ("slo", r.spec.name))
        for quantile, value in (("p50", r.p50_ns), ("p99", r.p99_ns),
                                ("p999", r.p999_ns)):
            lines.append(
                f"slo_latency_ns"
                f"{_om_labels(base + (('quantile', quantile),))} "
                f"{_om_value(value)}")
    lines.append("# TYPE slo_error_budget_burn gauge")
    for r in results:
        lines.append(f"slo_error_budget_burn"
                     f"{_om_labels((('fs', r.fs), ('slo', r.spec.name)))} "
                     f"{_om_value(r.budget_burn)}")
    lines.append("# TYPE slo_objective_ok gauge")
    for r in results:
        lines.append(f"slo_objective_ok"
                     f"{_om_labels((('fs', r.fs), ('slo', r.spec.name)))} "
                     f"{int(r.ok)}")

    lines.append("# TYPE slo_degraded_seconds gauge")
    lines.append("# HELP slo_degraded_seconds simulated seconds spent "
                 "degraded (read-only)")
    for fs in timeline.fs_names():
        lines.append(f"slo_degraded_seconds{_om_labels((('fs', fs),))} "
                     f"{_om_value(timeline.degraded_ns(fs) / 1e9)}")
    lines.append("# TYPE slo_degradations_total counter")
    for fs in timeline.fs_names():
        lines.append(f"slo_degradations_total{_om_labels((('fs', fs),))} "
                     f"{timeline.degradations(fs)}")
    lines.append("# TYPE slo_mttr_seconds gauge")
    for fs in timeline.fs_names():
        mttr = timeline.mttr_ns(fs)
        if mttr is not None:
            lines.append(f"slo_mttr_seconds{_om_labels((('fs', fs),))} "
                         f"{_om_value(mttr / 1e9)}")

    lines.append("# EOF")
    return lines


def openmetrics_exposition(frame: Mapping[str, object]) -> str:
    return "\n".join(openmetrics_lines(frame)) + "\n"


def write_openmetrics(path: str, frame: Mapping[str, object]) -> None:
    """Write a frame's OpenMetrics text; ``-`` writes to stdout."""
    text = openmetrics_exposition(frame)
    if path == "-":
        print(text, end="")
    else:
        with open(path, "w") as f:
            f.write(text)
