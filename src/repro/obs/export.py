"""Trace exporters: JSONL and Chrome ``trace_event`` (Perfetto) formats.

Chrome's trace format wants microsecond ``ts``/``dur`` values; spans carry
simulated nanoseconds, so the exporter divides by 1000 and keeps the exact
ns values in ``args`` (``start_ns``/``end_ns``).  Each virtual CPU becomes
one ``tid`` so Perfetto renders the per-CPU timelines as separate tracks.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .metrics import MetricsRegistry
from .trace import NullTracer, SpanRecord


def chrome_trace_events(spans: Iterable[SpanRecord]) -> List[Dict]:
    """Complete ("X") events, one per span, sorted by start time."""
    events: List[Dict] = []
    for s in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
        args: Dict[str, object] = dict(s.attrs)
        args["start_ns"] = s.start_ns
        args["end_ns"] = s.end_ns
        events.append({
            "name": s.name,
            "cat": "sim",
            "ph": "X",
            "ts": s.start_ns / 1000.0,
            "dur": s.duration_ns / 1000.0,
            "pid": 0,
            "tid": s.cpu,
            "args": args,
        })
    return events


def chrome_trace(tracer: NullTracer,
                 registry: Optional[MetricsRegistry] = None) -> Dict:
    """The full JSON-object form Perfetto/chrome://tracing accepts."""
    out: Dict[str, object] = {
        "traceEvents": chrome_trace_events(tracer.spans()),
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated", "source": "repro"},
    }
    if registry is not None:
        out["otherData"]["metrics"] = registry.as_dict()  # type: ignore[index]
    return out


def span_jsonl_lines(spans: Iterable[SpanRecord]) -> List[str]:
    """One JSON object per span, in ring-buffer (completion) order."""
    lines = []
    for s in spans:
        lines.append(json.dumps({
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "name": s.name,
            "cpu": s.cpu,
            "start_ns": s.start_ns,
            "end_ns": s.end_ns,
            "depth": s.depth,
            "attrs": s.attrs,
        }, sort_keys=True))
    return lines


def write_chrome_trace(path: str, tracer: NullTracer,
                       registry: Optional[MetricsRegistry] = None) -> None:
    with open(path, "w") as f:
        json.dump(chrome_trace(tracer, registry), f)


def write_span_jsonl(path: str, tracer: NullTracer) -> None:
    with open(path, "w") as f:
        for line in span_jsonl_lines(tracer.spans()):
            f.write(line + "\n")


def write_metrics_json(path: str, registry: MetricsRegistry) -> None:
    """Dump a registry snapshot; ``-`` writes to stdout."""
    payload = json.dumps(registry.as_dict(), indent=2, sort_keys=True)
    if path == "-":
        print(payload)
    else:
        with open(path, "w") as f:
            f.write(payload + "\n")
