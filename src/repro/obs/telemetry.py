"""The SLO telemetry frame: sketches + error ledger + degraded timeline.

One :class:`Telemetry` object is attached to one or more simulated file
systems (``FileSystem.attach_telemetry``); the VFS entry-point wrappers
feed it operation latencies and surfaced errors, the degradation hooks
feed the timeline, and a fault campaign folds the
:class:`~repro.faults.FaultPlan` ledger in at harvest time.

Telemetry is **default-off and bit-identical-off**: an un-attached file
system executes exactly the code it does on main (the wrappers are
installed per instance, never on the class), and an attached one records
from clock *readings* only — nothing here ever charges simulated time,
so every simulated result is identical with telemetry on or off.

The wire form (:meth:`Telemetry.as_payload`) is a plain-JSON "frame";
frames from fleet workers merge deterministically in the caller's
sorted-cell-key order (:func:`merge_frames`), which is what keeps a
``--jobs N`` campaign report byte-identical to serial.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ObservabilityError
from .sketch import SketchBank
from .slo import DEFAULT_SLOS, ErrorLedger, SLOResult, SLOSpec, evaluate
from .timeline import DegradedTimeline

__all__ = ["Telemetry", "merge_frames", "evaluate_frame", "frame_of"]

FRAME_SCHEMA = "repro.slo/1"


class Telemetry:
    """Mutable per-run telemetry; harvest with :meth:`as_payload`.

    ``tag`` labels the run (fleet cells use their cell key) so merged
    timelines keep per-mount attribution.
    """

    def __init__(self, tag: str = "") -> None:
        self.tag = tag
        self.sketches = SketchBank()
        self.ledger = ErrorLedger()
        self.timeline = DegradedTimeline(tag=tag)

    # -- recording (called from the VFS wrappers) ---------------------------

    def record_op(self, fs: str, op: str, latency_ns: float) -> None:
        self.sketches.observe(fs, op, latency_ns)
        self.ledger.note_op(fs, op)

    def record_error(self, fs: str, op: str, errno_name: str,
                     latency_ns: Optional[float] = None) -> None:
        """A call that surfaced an FSError.  Failed calls count toward
        ``ops`` (they consumed a request) but never enter the latency
        sketch — an EROFS rejection is fast, and letting it pull p99 down
        would reward degradation."""
        self.ledger.note_op(fs, op)
        self.ledger.note_surfaced(fs, op, errno_name)

    def absorb_fault_plan(self, fs: str, plan) -> None:
        """Fold *plan*'s (kind, outcome) counts into the ledger."""
        self.ledger.absorb_fault_counts(fs, plan.counts)

    def finalize(self, end_ns: float) -> None:
        self.timeline.finalize(end_ns)

    # -- harvest ------------------------------------------------------------

    def as_payload(self) -> Dict[str, object]:
        return {
            "schema": FRAME_SCHEMA,
            "tag": self.tag,
            "sketches": self.sketches.to_payload(),
            "errors": self.ledger.to_payload(),
            "timeline": self.timeline.to_payload(),
        }

    def evaluate(self, slos: Tuple[SLOSpec, ...] = DEFAULT_SLOS
                 ) -> List[SLOResult]:
        return evaluate(self.sketches, self.ledger, self.timeline,
                        slos=slos)


def frame_of(payload: Mapping[str, object]
             ) -> Tuple[SketchBank, ErrorLedger, DegradedTimeline]:
    """Rehydrate one frame payload into its three live parts."""
    if payload.get("schema") != FRAME_SCHEMA:
        raise ObservabilityError(
            f"unknown telemetry frame schema {payload.get('schema')!r}")
    return (SketchBank.from_payload(payload["sketches"]),
            ErrorLedger.from_payload(payload["errors"]),
            DegradedTimeline.from_payload(payload["timeline"]))


def merge_frames(frames: Sequence[Mapping[str, object]],
                 tag: str = "merged") -> Dict[str, object]:
    """Merge frame payloads in the given order into one frame payload.

    The caller passes frames in sorted-cell-key order (what the fleet
    returns); the merge itself is order-preserving sums and
    concatenations, so the output is byte-stable for a fixed input
    order no matter how many workers produced the frames.
    """
    sketches = SketchBank()
    ledger = ErrorLedger()
    timeline = DegradedTimeline(tag=tag)
    for payload in frames:
        bank, errors, cell_timeline = frame_of(payload)
        sketches.merge(bank)
        ledger.merge(errors)
        timeline.merge(cell_timeline)
    return {
        "schema": FRAME_SCHEMA,
        "tag": tag,
        "sketches": sketches.to_payload(),
        "errors": ledger.to_payload(),
        "timeline": timeline.to_payload(),
    }


def evaluate_frame(payload: Mapping[str, object],
                   slos: Tuple[SLOSpec, ...] = DEFAULT_SLOS
                   ) -> List[SLOResult]:
    """Evaluate SLOs over a (possibly merged) frame payload."""
    sketches, ledger, timeline = frame_of(payload)
    return evaluate(sketches, ledger, timeline, slos=slos)
