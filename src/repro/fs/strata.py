"""Strata baseline (Kwon et al., SOSP 2017) as characterized by the paper.

Strata is a cross-media file system whose PM tier works log-first: each
process appends data and metadata to a private on-PM log (fast, sequential,
immediately durable — so fsync is nearly free), and a digestion step later
copies committed data into the shared PM area.

What matters for the paper's comparisons:

* writes are cheap up front but pay "expensive data copies from its
  per-process logs to the shared PM region for making data visible to
  other processes" (Fig 6c) — we digest synchronously once the private log
  exceeds a threshold, charging the copy;
* the private logs occupy dedicated PM regions and digested data is
  allocated first-fit with no alignment awareness, so Strata fragments
  free space like other log-structured designs (§2.6);
* data + metadata consistency (it sits in the strict-mode comparison
  group, §3.3).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from ..clock import SimContext
from ..errors import NoSpaceError
from ..params import MIB
from ..pm.device import PMDevice
from ..structures.extents import Extent
from .common.base import BaseFS
from .common.freespace import FreePool
from .common.inode import Inode

#: private log capacity before a synchronous digest is forced
_DIGEST_THRESHOLD = 4 * MIB
_LOG_ENTRY_BYTES = 64


class StrataFS(BaseFS):
    name = "Strata"
    data_consistent = True
    fault_zero_fill = False

    def __init__(self, device: PMDevice, num_cpus: int = 4,
                 track_data: Optional[bool] = None) -> None:
        super().__init__(device, num_cpus, track_data=track_data)
        self._pool: Optional[FreePool] = None
        self._log_bytes: Dict[int, int] = {}   # per-CPU private log fill
        self.digests = 0
        self.digested_bytes = 0

    def _metadata_blocks(self) -> int:
        # superblock + per-process log regions (16MB each for 4 CPUs)
        return 2048 + self.num_cpus * 4096

    def _init_allocator(self) -> None:
        self._pool = FreePool(self.meta_blocks,
                              self.total_blocks - self.meta_blocks)

    def _alloc(self, nblocks: int, ctx: SimContext, *,
               goal: Optional[int] = None,
               want_aligned: bool = False) -> List[Extent]:
        assert self._pool is not None
        ctx.charge(70.0)
        out: List[Extent] = []
        remaining = nblocks
        while remaining > 0:
            ext = self._pool.alloc_first_fit(remaining)
            if ext is None:
                largest = self._pool.largest()
                if largest == 0:
                    self._free(out, ctx)
                    raise NoSpaceError("Strata: no free blocks")
                ext = self._pool.alloc_first_fit(min(largest, remaining))
                assert ext is not None
            out.append(ext)
            remaining -= ext.length
        return out

    def _free(self, extents: List[Extent], ctx: SimContext) -> None:
        assert self._pool is not None
        for ext in extents:
            self._pool.insert(ext)

    @contextmanager
    def _meta_txn(self, ctx: SimContext, entries: int,
                  ino: Optional[int] = None) -> Iterator[None]:
        # metadata goes to the private log: sequential 64B entries
        ns = self.machine.persist_ns(entries * _LOG_ENTRY_BYTES)
        ctx.charge(ns)
        ctx.counters.journal_ns += ns
        yield

    def _write_data(self, inode: Inode, offset: int, data: bytes,
                    ctx: SimContext) -> None:
        # 1. append to the private log (sequential, durable immediately):
        # log record header + in-DRAM extent-index update per write, then
        # the payload itself
        ctx.charge(300.0 + self.machine.persist_ns(64))
        ctx.charge(self.machine.persist_ns(len(data)))
        ctx.counters.pm_bytes_written += len(data)
        cpu = ctx.cpu % self.num_cpus
        self._log_bytes[cpu] = self._log_bytes.get(cpu, 0) + len(data)
        # 2. write-through to the shared area so reads/mmaps see it (the
        # digestion copy; charged when the log fills)
        if self.track_data:
            pos = 0
            while pos < len(data):
                block = (offset + pos) // self.block_size
                within = (offset + pos) % self.block_size
                take = min(self.block_size - within, len(data) - pos)
                phys = inode.extents.physical_block(block)
                addr = phys * self.block_size + within
                self.device.store(addr, data[pos:pos + take])
                self.device.clwb(addr, take)
                pos += take
            self.device.sfence()
        if self._log_bytes[cpu] >= _DIGEST_THRESHOLD:
            self._digest(cpu, ctx)

    def _digest(self, cpu: int, ctx: SimContext) -> None:
        """Copy the private log into the shared area (read + write)."""
        nbytes = self._log_bytes.get(cpu, 0)
        if not nbytes:
            return
        ns = self.machine.pm_read_ns(nbytes) + self.machine.persist_ns(nbytes)
        ctx.charge(ns)
        ctx.counters.copy_ns += ns
        ctx.counters.pm_bytes_read += nbytes
        ctx.counters.pm_bytes_written += nbytes
        self._log_bytes[cpu] = 0
        self.digests += 1
        self.digested_bytes += nbytes

    def _fsync_impl(self, inode: Inode, ctx: SimContext) -> None:
        return   # the private log is already durable

    def unmount(self, ctx: SimContext) -> None:
        for cpu in list(self._log_bytes):
            self._digest(cpu, ctx)
        super().unmount(ctx)

    def _free_pools(self):
        return [self._pool] if self._pool is not None else None

    def _free_extent_iter(self) -> Iterator[Extent]:
        assert self._pool is not None
        yield from self._pool.extents()
