"""Directory-entry indexes.

The paper distinguishes file systems by how they look up directory entries:
WineFS and NOVA keep DRAM red-black-tree indexes (§3.5: "WineFS uses
red-black trees for traversing directory entries"), while PMFS "does
sequential scanning of directory entries ... causing significant
slowdowns".  Both variants store the same mapping; they differ in the
lookup cost charged to the simulated clock, which is what limits PMFS on
metadata-heavy workloads like varmail (§5.5).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional

from ...clock import SimContext
from ...params import MachineParams
from ...structures.rbtree import RBTree

#: cost of probing one directory entry during a linear PM scan
_SCAN_ENTRY_NS = 60.0
#: cost of one RB-tree node visit in DRAM
_TREE_NODE_NS = 18.0
#: DRAM bytes per hashed directory entry (§5.7: "less than 64B per entry")
DENTRY_DRAM_BYTES = 64


class DirIndex(ABC):
    """Maps child name -> inode number for one directory."""

    def __init__(self) -> None:
        self._entries: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> List[str]:
        return sorted(self._entries)

    def items(self) -> Iterator:
        return iter(sorted(self._entries.items()))

    @abstractmethod
    def _charge_lookup(self, ctx: Optional[SimContext]) -> None: ...

    def lookup(self, name: str, ctx: Optional[SimContext] = None) -> Optional[int]:
        self._charge_lookup(ctx)
        return self._entries.get(name)

    def insert(self, name: str, ino: int, ctx: Optional[SimContext] = None) -> None:
        self._charge_lookup(ctx)
        self._entries[name] = ino

    def remove(self, name: str, ctx: Optional[SimContext] = None) -> int:
        self._charge_lookup(ctx)
        return self._entries.pop(name)

    @property
    def dram_bytes(self) -> int:
        """DRAM footprint of this index (§5.7 memory-usage accounting)."""
        return 0


class RBDirIndex(DirIndex):
    """DRAM red-black-tree index (WineFS, NOVA, ext4 htree stand-in).

    Lookup cost is O(log n) tree-node visits in DRAM.  We maintain a real
    RB-tree over hashed names to keep the height honest.
    """

    def __init__(self) -> None:
        super().__init__()
        self._tree = RBTree()
        # depth is a pure function of the tree size; cache it so lookups
        # skip the log2 while the directory's entry count is unchanged
        self._depth_for_size = -1
        self._depth = 1

    @staticmethod
    def _hash(name: str) -> int:
        # FNV-1a, 64-bit: deterministic across runs (unlike hash())
        h = 0xcbf29ce484222325
        for ch in name.encode():
            h = ((h ^ ch) * 0x100000001b3) & 0xFFFFFFFFFFFFFFFF
        return h

    def _charge_lookup(self, ctx: Optional[SimContext]) -> None:
        if ctx is None:
            return
        n = self._tree._size    # len() without the __len__ dispatch
        if n != self._depth_for_size:
            self._depth_for_size = n
            self._depth = max(1, int(math.log2(n + 1)) + 1)
        # inlined ctx.charge (depth * _TREE_NODE_NS >= 0, single add)
        ctx.clock._cpu_ns[ctx.cpu] += self._depth * _TREE_NODE_NS

    def lookup(self, name: str, ctx: Optional[SimContext] = None) -> Optional[int]:
        # _charge_lookup + dict probe flattened into one frame (path
        # resolution calls this once per component)
        if ctx is not None:
            n = self._tree._size
            if n != self._depth_for_size:
                self._depth_for_size = n
                self._depth = max(1, int(math.log2(n + 1)) + 1)
            ctx.clock._cpu_ns[ctx.cpu] += self._depth * _TREE_NODE_NS
        return self._entries.get(name)

    def insert(self, name: str, ino: int, ctx: Optional[SimContext] = None) -> None:
        super().insert(name, ino, ctx)
        self._tree.insert(self._hash(name), name)

    def remove(self, name: str, ctx: Optional[SimContext] = None) -> int:
        ino = super().remove(name, ctx)
        key = self._hash(name)
        if key in self._tree:
            self._tree.remove(key)
        return ino

    @property
    def dram_bytes(self) -> int:
        return len(self._entries) * DENTRY_DRAM_BYTES


class LinearDirIndex(DirIndex):
    """PMFS-style linear scan of on-PM directory entries.

    Every lookup walks, on average, half the entries; inserts walk all of
    them (to find free slots / detect duplicates).  This is the documented
    PMFS bottleneck on varmail-like workloads.
    """

    def _charge_lookup(self, ctx: Optional[SimContext]) -> None:
        if ctx is None:
            return
        n = max(1, len(self._entries))
        ctx.charge((n / 2.0) * _SCAN_ENTRY_NS)

    def insert(self, name: str, ino: int, ctx: Optional[SimContext] = None) -> None:
        if ctx is not None:
            ctx.charge(len(self._entries) * _SCAN_ENTRY_NS)
        self._entries[name] = ino

    @property
    def dram_bytes(self) -> int:
        return 0   # PMFS keeps no DRAM index
