"""BaseFS: the namespace and data-path skeleton shared by all seven
simulated file systems.

Subclasses specialize the hooks that the paper identifies as the decisive
design choices:

* ``_alloc`` / ``_free`` — the block allocator (alignment-aware vs
  contiguity-first vs log-structured);
* ``_meta_txn`` — metadata crash-consistency machinery (per-CPU undo
  journal, global JBD2 batch, per-inode log append, ...), including which
  lock it serializes on (this is what Fig 10's scalability measures);
* ``_write_data`` — data atomicity (in-place, journaled, CoW, log-append);
* ``_fsync_impl`` — what fsync costs (nothing for synchronous designs,
  a stop-the-world journal flush for JBD2);
* ``alloc_for_fault`` — what backing a page fault gets for on-demand
  (ftruncate-extended) mappings: WineFS hands out an aligned hugepage,
  everyone else a 4KB block (this drives the LMDB result, §5.4).

The base class owns: path resolution, directory indexes, open handles,
read path, mmap plumbing, statfs and fragmentation metrics.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from ...clock import SimContext
from ...errors import (
    ExistsError, FSError, InvalidArgumentError, IsADirectoryError_,
    NoSpaceError, NotADirectoryError_, NotEmptyError, NotFoundError,
    NotEmptyError, NotMountedError,
)
from ...mmu.cache import CacheModel
from ...mmu.mmap_region import MappedRegion, _next_region_id
from ...mmu.page_table import make_page_table
from ...mmu.tlb import TLB
from ...params import BASE_PAGE, BLOCK_SIZE, BLOCKS_PER_HUGEPAGE, HUGE_PAGE
from ...pm.device import PMDevice
from ...pm.zeros import Zeros, zero_bytes
from ...structures.extents import Extent, ExtentList
from ...vfs.interface import FileSystem, FSStats, OpenFile, StatResult
from ...vfs.path import basename_of, normalize_path, parent_of, split_path
from .dirindex import DirIndex, RBDirIndex
from .inode import Inode, InodeTable, INODE_BYTES

ROOT_INO = 1


class BaseFS(FileSystem):
    """Common machinery; see module docstring for the specialization hooks."""

    block_size = BLOCK_SIZE
    dir_index_cls: Callable[[], DirIndex] = RBDirIndex
    #: does the fault handler zero pages (ext4-DAX) or did allocation (NOVA)?
    fault_zero_fill = False
    #: move real bytes (tests) or cost-only (large benches)?
    track_data = True

    def __init__(self, device: PMDevice, num_cpus: int = 4,
                 track_data: Optional[bool] = None) -> None:
        super().__init__(device, num_cpus)
        if track_data is not None:
            self.track_data = track_data
        #: blocks reserved for superblock + metadata at the partition start
        self.meta_blocks = self._metadata_blocks()
        self.total_blocks = device.size // self.block_size
        if self.meta_blocks >= self.total_blocks:
            raise FSError("device too small for metadata")
        self._itable = InodeTable(first_ino=ROOT_INO,
                                  capacity=max(1024, self.total_blocks // 8))
        self._dirs: Dict[int, DirIndex] = {}
        self._free_blocks = 0    # maintained by subclasses via _account_*

    # ------------------------------------------------------------------ hooks

    def _metadata_blocks(self) -> int:
        """Blocks reserved at the start of the partition for FS metadata."""
        return 1024  # 4MB: superblock, inode table, journal; subclasses refine

    def _alloc(self, nblocks: int, ctx: SimContext, *,
               goal: Optional[int] = None,
               want_aligned: bool = False) -> List[Extent]:
        """Allocate *nblocks*; raises NoSpaceError when full."""
        raise NotImplementedError

    def _free(self, extents: List[Extent], ctx: SimContext) -> None:
        raise NotImplementedError

    @contextmanager
    def _meta_txn(self, ctx: SimContext, entries: int,
                  ino: Optional[int] = None) -> Iterator[None]:
        """Metadata transaction: charge journaling costs and locking."""
        raise NotImplementedError
        yield  # pragma: no cover

    def _write_data(self, inode: Inode, offset: int, data: bytes,
                    ctx: SimContext) -> None:
        """Move *data* into allocated blocks per the FS's atomicity policy."""
        raise NotImplementedError

    def _fsync_impl(self, inode: Inode, ctx: SimContext) -> None:
        raise NotImplementedError

    def alloc_for_fault(self, inode: Inode, logical_block: int,
                        ctx: SimContext) -> None:
        """Allocate backing for a faulting page of a sparse-extended file.

        The default allocates one 4KB block at a time (plus any gap up to
        the faulting block), which is why ftruncate-style applications like
        LMDB never see hugepages on the baselines.  WineFS overrides this.
        """
        needed = logical_block + 1 - inode.extents.total_blocks
        if needed <= 0:
            return
        for ext in self._alloc(needed, ctx):
            inode.extents.append(ext)
        self._persist_inode(inode, ctx)

    # --------------------------------------------------------------- lifecycle

    def mkfs(self, ctx: SimContext) -> None:
        self._itable = InodeTable(first_ino=ROOT_INO,
                                  capacity=max(1024, self.total_blocks // 8))
        self._dirs = {}
        root = self._itable.allocate(is_dir=True)
        assert root.ino == ROOT_INO
        self._dirs[ROOT_INO] = self.dir_index_cls()
        self._init_allocator()
        # superblock + inode table init writes
        ctx.charge(self.machine.persist_ns(self.meta_blocks * 64))
        self.mounted = True

    def _init_allocator(self) -> None:
        raise NotImplementedError

    def mount(self, ctx: SimContext) -> None:
        self._check_device_formatted()
        self.mounted = True

    def _check_device_formatted(self) -> None:
        if not self._dirs:
            raise NotMountedError(f"{self.name}: device not formatted")

    def unmount(self, ctx: SimContext) -> None:
        self._check_mounted()
        self.device.drain()
        self.mounted = False

    # --------------------------------------------------------------- resolution

    def _resolve(self, path: str, ctx: Optional[SimContext]) -> Inode:
        parts = split_path(path)
        inode = self._itable.get(ROOT_INO)
        assert inode is not None
        for part in parts:
            if not inode.is_dir:
                raise NotADirectoryError_(path)
            child = self._dirs[inode.ino].lookup(part, ctx)
            if child is None:
                raise NotFoundError(path)
            nxt = self._itable.get(child)
            if nxt is None:
                raise NotFoundError(path)
            inode = nxt
        return inode

    def _resolve_parent(self, path: str, ctx: Optional[SimContext]) -> Inode:
        parent = self._resolve(parent_of(path), ctx)
        if not parent.is_dir:
            raise NotADirectoryError_(parent_of(path))
        return parent

    def _alloc_inode(self, is_dir: bool, ctx: SimContext) -> Inode:
        return self._itable.allocate(is_dir=is_dir, owner_cpu=ctx.cpu)

    def _free_inode(self, inode: Inode, ctx=None) -> None:
        self._itable.free(inode.ino)

    def _persist_inode(self, inode: Inode, ctx: SimContext) -> None:
        ctx.charge(self.machine.persist_ns(INODE_BYTES))

    def _ino_lock(self, ino: int) -> str:
        """Lock name for an inode: keyed on the live object generation so
        recycled inode numbers do not alias across unrelated files."""
        inode = self._itable.get(ino)
        if inode is None:
            return f"ino:{ino}g0"
        # gen never changes on a live object, so the name is cacheable
        name = inode.lock_name
        if name is None:
            name = f"ino:{ino}g{inode.gen}"
            inode.lock_name = name
        return name

    # --------------------------------------------------------------- namespace

    def create(self, path: str, ctx: SimContext) -> OpenFile:
        self._check_mounted()
        self._check_writable()
        if ctx.trace.enabled:
            with ctx.trace.span(ctx, "vfs.create", fs=self.name, path=path):
                return self._create_impl(path, ctx)
        return self._create_impl(path, ctx)

    def _create_impl(self, path: str, ctx: SimContext) -> OpenFile:
        self._syscall(ctx)
        path = normalize_path(path)
        parent = self._resolve_parent(path, ctx)
        name = basename_of(path)
        pdir = self._dirs[parent.ino]
        lock = self._ino_lock(parent.ino)
        ctx.locks.acquire(lock, ctx.cpu)
        try:
            if name in pdir:
                raise ExistsError(path)
            with self._meta_txn(ctx, entries=4, ino=parent.ino):
                inode = self._alloc_inode(is_dir=False, ctx=ctx)
                inode.parent_ino, inode.name = parent.ino, name
                self._apply_dir_inheritance(parent, inode)
                pdir.insert(name, inode.ino, ctx)
                self._persist_inode(inode, ctx)
                self._persist_inode(parent, ctx)
        finally:
            ctx.locks.release(lock, ctx.cpu)
        return OpenFile(self, inode.ino, path)

    def _apply_dir_inheritance(self, parent: Inode, child: Inode) -> None:
        """Hook: WineFS directory-level alignment xattrs (§3.6)."""

    def open(self, path: str, ctx: SimContext) -> OpenFile:
        self._check_mounted()
        if ctx.trace.enabled:
            with ctx.trace.span(ctx, "vfs.open", fs=self.name, path=path):
                return self._open_impl(path, ctx)
        return self._open_impl(path, ctx)

    def _open_impl(self, path: str, ctx: SimContext) -> OpenFile:
        self._syscall(ctx)
        path = normalize_path(path)
        inode = self._resolve(path, ctx)
        if inode.is_dir:
            raise IsADirectoryError_(path)
        return OpenFile(self, inode.ino, path)

    def unlink(self, path: str, ctx: SimContext) -> None:
        self._check_mounted()
        self._check_writable()
        if ctx.trace.enabled:
            with ctx.trace.span(ctx, "vfs.unlink", fs=self.name, path=path):
                self._unlink_impl(path, ctx)
            return
        self._unlink_impl(path, ctx)

    def _unlink_impl(self, path: str, ctx: SimContext) -> None:
        self._syscall(ctx)
        path = normalize_path(path)
        parent = self._resolve_parent(path, ctx)
        name = basename_of(path)
        pdir = self._dirs[parent.ino]
        lock = self._ino_lock(parent.ino)
        ctx.locks.acquire(lock, ctx.cpu)
        try:
            ino = pdir.lookup(name, ctx)
            if ino is None:
                raise NotFoundError(path)
            inode = self._itable.get(ino)
            assert inode is not None
            if inode.is_dir:
                raise IsADirectoryError_(path)
            with self._meta_txn(ctx, entries=4, ino=parent.ino):
                pdir.remove(name, ctx)
                freed = list(inode.extents)
                if freed:
                    self._free(freed, ctx)
                self._free_inode(inode, ctx)
                self._persist_inode(parent, ctx)
        finally:
            ctx.locks.release(lock, ctx.cpu)

    def mkdir(self, path: str, ctx: SimContext) -> None:
        self._check_mounted()
        self._check_writable()
        with ctx.trace.span(ctx, "vfs.mkdir", fs=self.name, path=path):
            self._syscall(ctx)
            path = normalize_path(path)
            parent = self._resolve_parent(path, ctx)
            name = basename_of(path)
            pdir = self._dirs[parent.ino]
            ctx.locks.acquire(self._ino_lock(parent.ino), ctx.cpu)
            try:
                if name in pdir:
                    raise ExistsError(path)
                with self._meta_txn(ctx, entries=4, ino=parent.ino):
                    inode = self._alloc_inode(is_dir=True, ctx=ctx)
                    inode.parent_ino, inode.name = parent.ino, name
                    self._dirs[inode.ino] = self.dir_index_cls()
                    pdir.insert(name, inode.ino, ctx)
                    self._persist_inode(inode, ctx)
                    self._persist_inode(parent, ctx)
            finally:
                ctx.locks.release(self._ino_lock(parent.ino), ctx.cpu)

    def rmdir(self, path: str, ctx: SimContext) -> None:
        self._check_mounted()
        self._check_writable()
        with ctx.trace.span(ctx, "vfs.rmdir", fs=self.name, path=path):
            self._syscall(ctx)
            path = normalize_path(path)
            parent = self._resolve_parent(path, ctx)
            name = basename_of(path)
            pdir = self._dirs[parent.ino]
            ctx.locks.acquire(self._ino_lock(parent.ino), ctx.cpu)
            try:
                ino = pdir.lookup(name, ctx)
                if ino is None:
                    raise NotFoundError(path)
                inode = self._itable.get(ino)
                assert inode is not None
                if not inode.is_dir:
                    raise NotADirectoryError_(path)
                if len(self._dirs[ino]):
                    raise NotEmptyError(path)
                with self._meta_txn(ctx, entries=3, ino=parent.ino):
                    pdir.remove(name, ctx)
                    del self._dirs[ino]
                    self._free_inode(inode, ctx)
                    self._persist_inode(parent, ctx)
            finally:
                ctx.locks.release(self._ino_lock(parent.ino), ctx.cpu)

    def rename(self, old: str, new: str, ctx: SimContext) -> None:
        self._check_mounted()
        self._check_writable()
        with ctx.trace.span(ctx, "vfs.rename", fs=self.name, path=old):
            self._syscall(ctx)
            old, new = normalize_path(old), normalize_path(new)
            src_parent = self._resolve_parent(old, ctx)
            dst_parent = self._resolve_parent(new, ctx)
            src_name, dst_name = basename_of(old), basename_of(new)
            # deterministic lock order to avoid simulated deadlock accounting
            lock_inos = sorted({src_parent.ino, dst_parent.ino})
            for li in lock_inos:
                # repro: allow[lock-order-cycle] both acquisitions are in the
                # ino namespace but ordered by ascending inode number, so the
                # ino->ino self-edge can never close a real deadlock cycle
                ctx.locks.acquire(self._ino_lock(li), ctx.cpu)
            try:
                sdir = self._dirs[src_parent.ino]
                ddir = self._dirs[dst_parent.ino]
                ino = sdir.lookup(src_name, ctx)
                if ino is None:
                    raise NotFoundError(old)
                with self._meta_txn(ctx, entries=6, ino=src_parent.ino):
                    displaced = ddir.lookup(dst_name, ctx)
                    if displaced == ino:
                        # POSIX: old and new are the same file -> no-op
                        return
                    if displaced is not None:
                        victim = self._itable.get(displaced)
                        assert victim is not None
                        if victim.is_dir:
                            if len(self._dirs[displaced]):
                                raise NotEmptyError(new)
                            del self._dirs[displaced]
                        elif victim.extents.total_blocks:
                            self._free(list(victim.extents), ctx)
                        ddir.remove(dst_name, ctx)
                        self._free_inode(victim, ctx)
                    sdir.remove(src_name, ctx)
                    ddir.insert(dst_name, ino, ctx)
                    moved = self._itable.get(ino)
                    assert moved is not None
                    moved.parent_ino, moved.name = dst_parent.ino, dst_name
                    self._persist_inode(moved, ctx)
                    self._persist_inode(src_parent, ctx)
                    self._persist_inode(dst_parent, ctx)
            finally:
                for li in reversed(lock_inos):
                    ctx.locks.release(self._ino_lock(li), ctx.cpu)

    def readdir(self, path: str, ctx: SimContext) -> List[str]:
        self._check_mounted()
        self._syscall(ctx)
        inode = self._resolve(path, ctx)
        if not inode.is_dir:
            raise NotADirectoryError_(path)
        names = self._dirs[inode.ino].names()
        ctx.charge(len(names) * 20.0)   # getdents copy-out
        return names

    def getattr(self, path: str, ctx: Optional[SimContext] = None) -> StatResult:
        self._check_mounted()
        if ctx is not None:
            self._syscall(ctx)
        inode = self._resolve(path, ctx)
        return self._stat_of(inode)

    def getattr_ino(self, ino: int) -> StatResult:
        inode = self._itable.get(ino)
        if inode is None:
            raise NotFoundError(f"ino {ino}")
        return self._stat_of(inode)

    @staticmethod
    def _stat_of(inode: Inode) -> StatResult:
        return StatResult(ino=inode.ino, size=inode.size,
                          blocks=inode.extents.total_blocks,
                          is_dir=inode.is_dir, nlink=inode.nlink)

    # --------------------------------------------------------------- data path

    def _inode_for_data(self, ino: int) -> Inode:
        inode = self._itable.get(ino)
        if inode is None:
            raise NotFoundError(f"ino {ino}")
        if inode.is_dir:
            raise IsADirectoryError_(f"ino {ino}")
        return inode

    def _ensure_blocks(self, inode: Inode, end_byte: int, ctx: SimContext,
                       want_aligned: Optional[bool] = None) -> None:
        """Allocate blocks so the file covers [0, end_byte)."""
        needed_blocks = (end_byte + self.block_size - 1) // self.block_size
        short = needed_blocks - inode.extents.total_blocks
        if short <= 0:
            return
        goal = inode.extents[-1].end if len(inode.extents) else None
        if want_aligned is None:
            want_aligned = short >= BLOCKS_PER_HUGEPAGE
        for ext in self._alloc(short, ctx, goal=goal, want_aligned=want_aligned):
            inode.extents.append(ext)

    def read(self, ino: int, offset: int, size: int, ctx: SimContext) -> bytes:
        self._check_mounted()
        if ctx.trace.enabled:
            with ctx.trace.span(ctx, "vfs.read", fs=self.name, ino=ino,
                                size=size):
                return self._read_impl(ino, offset, size, ctx)
        return self._read_impl(ino, offset, size, ctx)

    def _read_impl(self, ino: int, offset: int, size: int,
                   ctx: SimContext) -> bytes:
        self._syscall(ctx)
        if offset < 0 or size < 0:
            raise InvalidArgumentError("negative offset/size")
        inode = self._inode_for_data(ino)
        if offset >= inode.size:
            return b""
        size = min(size, inode.size - offset)
        if size == 0:
            return b""
        ctx.charge(self.machine.pm_load_ns +
                   self.machine.pm_read_ns(size))
        ctx.counters.pm_bytes_read += size
        if not self.track_data:
            return zero_bytes(size)
        end = offset + size
        # the allocation boundary is block-aligned, so bytes before it
        # come from extents (batched per physical run) and bytes after
        # it are one zero-filled hole
        allocated_bytes = inode.extents.total_blocks * self.block_size
        read_end = min(end, max(offset, allocated_bytes))
        chunks: List[bytes] = []
        if offset < read_end:
            first_block = offset // self.block_size
            last_block = (read_end - 1) // self.block_size
            within = offset % self.block_size
            pos = offset
            for ext in inode.extents.slice_logical(
                    first_block, last_block - first_block + 1):
                take = min(ext.length * self.block_size - within,
                           read_end - pos)
                chunks.append(self.device.load(
                    ext.start * self.block_size + within, take))
                pos += take
                within = 0
        if end > read_end:
            chunks.append(zero_bytes(end - read_end))
        return b"".join(chunks)

    def write(self, ino: int, offset: int, data: bytes, ctx: SimContext) -> int:
        self._check_mounted()
        self._check_writable()
        if ctx.trace.enabled:
            with ctx.trace.span(ctx, "vfs.write", fs=self.name, ino=ino,
                                size=len(data)):
                return self._write_impl(ino, offset, data, ctx)
        return self._write_impl(ino, offset, data, ctx)

    def _write_impl(self, ino: int, offset: int, data: bytes,
                    ctx: SimContext) -> int:
        self._syscall(ctx)
        if offset < 0:
            raise InvalidArgumentError("negative offset")
        if not data:
            return 0
        length = len(data)
        inode = self._inode_for_data(ino)
        lock = self._ino_lock(ino)
        ctx.locks.acquire(lock, ctx.cpu)
        try:
            grows = offset + length > inode.size
            self._ensure_blocks(inode, offset + length, ctx)
            self._write_data(inode, offset, data, ctx)
            inode.written_hwm = max(inode.written_hwm, offset + length)
            if grows:
                with self._meta_txn(ctx, entries=2, ino=ino):
                    inode.size = offset + length
                    self._persist_inode(inode, ctx)
        finally:
            ctx.locks.release(lock, ctx.cpu)
        return length

    def write_zeros(self, ino: int, offset: int, length: int,
                    ctx: SimContext) -> int:
        """:meth:`write` of *length* zero bytes without materializing the
        payload (aging churn and zero-fill benches)."""
        if length <= 0:
            return 0
        if self.track_data:
            return self.write(ino, offset, zero_bytes(length), ctx)
        return self.write(ino, offset, Zeros(length), ctx)

    def truncate(self, ino: int, size: int, ctx: SimContext) -> None:
        self._check_mounted()
        self._check_writable()
        with ctx.trace.span(ctx, "vfs.truncate", fs=self.name, ino=ino,
                            size=size):
            self._syscall(ctx)
            if size < 0:
                raise InvalidArgumentError("negative size")
            inode = self._inode_for_data(ino)
            ctx.locks.acquire(self._ino_lock(ino), ctx.cpu)
            try:
                with self._meta_txn(ctx, entries=3, ino=ino):
                    if size < inode.size:
                        keep = (size + self.block_size - 1) // self.block_size
                        freed = inode.extents.truncate_blocks(keep)
                        if freed:
                            self._free(freed, ctx)
                    # growing truncate leaves a hole: no allocation (sparse),
                    # the LMDB pattern -- blocks appear on demand at fault time
                    inode.size = size
                    self._persist_inode(inode, ctx)
            finally:
                ctx.locks.release(self._ino_lock(ino), ctx.cpu)

    def fallocate(self, ino: int, offset: int, size: int, ctx: SimContext) -> None:
        self._check_mounted()
        self._check_writable()
        if ctx.trace.enabled:
            with ctx.trace.span(ctx, "vfs.fallocate", fs=self.name, ino=ino,
                                size=size):
                self._fallocate_impl(ino, offset, size, ctx)
            return
        self._fallocate_impl(ino, offset, size, ctx)

    def _fallocate_impl(self, ino: int, offset: int, size: int,
                        ctx: SimContext) -> None:
        self._syscall(ctx)
        if offset < 0 or size <= 0:
            raise InvalidArgumentError("bad fallocate range")
        inode = self._inode_for_data(ino)
        lock = self._ino_lock(ino)
        ctx.locks.acquire(lock, ctx.cpu)
        try:
            with self._meta_txn(ctx, entries=2, ino=ino):
                self._ensure_blocks(inode, offset + size, ctx)
                if self._zero_on_fallocate():
                    ctx.charge(self.machine.pm_write_ns(size))
                inode.size = max(inode.size, offset + size)
                self._persist_inode(inode, ctx)
        finally:
            ctx.locks.release(lock, ctx.cpu)

    def _zero_on_fallocate(self) -> bool:
        """NOVA zeroes at fallocate; ext4-DAX zeroes at fault (§5.4)."""
        return not self.fault_zero_fill

    def fsync(self, ino: int, ctx: SimContext) -> None:
        self._check_mounted()
        with ctx.trace.span(ctx, "vfs.fsync", fs=self.name, ino=ino):
            self._syscall(ctx)
            inode = self._inode_for_data(ino)
            self._fsync_impl(inode, ctx)

    # --------------------------------------------------------------- mmap

    def mmap(self, ino: int, ctx: SimContext, length: Optional[int] = None,
             tlb: Optional[TLB] = None,
             cache: Optional[CacheModel] = None) -> MappedRegion:
        self._check_mounted()
        with ctx.trace.span(ctx, "vfs.mmap", fs=self.name, ino=ino):
            self._syscall(ctx)
            inode = self._inode_for_data(ino)
            map_len = length if length is not None else inode.size
            if map_len <= 0:
                raise InvalidArgumentError("cannot mmap an empty range")
            region = _FSMappedRegion(
                fs=self, inode=inode, device=self.device, machine=self.machine,
                length=map_len, block_size=self.block_size, tlb=tlb,
                cache=cache, fault_zero_fill=self.fault_zero_fill,
                track_data=self.track_data)
            return region

    # --------------------------------------------------------------- metrics

    def file_extents(self, ino: int) -> ExtentList:
        inode = self._itable.get(ino)
        if inode is None:
            raise NotFoundError(f"ino {ino}")
        return inode.extents

    def _free_extent_iter(self) -> Iterator[Extent]:
        """All free extents (for fragmentation metrics); subclass-provided."""
        raise NotImplementedError

    def _free_pools(self):
        """The FreePool objects backing this FS (for O(1) statfs).

        Subclasses with FreePool-based allocators override; the default
        falls back to iterating free extents.
        """
        return None

    def utilization(self) -> float:
        """``statfs().utilization`` without building the stats record.

        Host-side only (no simulated charges either way); the aging loop
        polls this every step.  Same int sum and float divide as the
        statfs property, so decisions branching on it are unchanged.
        """
        pools = self._free_pools()
        if pools is None:
            return self.statfs().utilization
        free = 0
        for p in pools:
            free += p.free_blocks
        return 1.0 - free / (self.total_blocks - self.meta_blocks)

    def statfs(self) -> FSStats:
        pools = self._free_pools()
        if pools is not None:
            free = sum(p.free_blocks for p in pools)
            aligned_hugepages = sum(p.aligned_hugepages() for p in pools)
            aligned_blocks = aligned_hugepages * BLOCKS_PER_HUGEPAGE
            return FSStats(
                total_blocks=self.total_blocks - self.meta_blocks,
                free_blocks=free,
                block_size=self.block_size,
                files=len(self._itable),
                free_aligned_hugepages=aligned_hugepages,
                free_space_aligned_fraction=(aligned_blocks / free)
                if free else 1.0,
            )
        free = 0
        aligned_hugepages = 0
        aligned_blocks = 0
        for ext in self._free_extent_iter():
            free += ext.length
            runs = ext.hugepage_runs()
            aligned_hugepages += runs
            aligned_blocks += runs * BLOCKS_PER_HUGEPAGE
        return FSStats(
            total_blocks=self.total_blocks - self.meta_blocks,
            free_blocks=free,
            block_size=self.block_size,
            files=len(self._itable),
            free_aligned_hugepages=aligned_hugepages,
            free_space_aligned_fraction=(aligned_blocks / free) if free else 1.0,
        )


class _FSMappedRegion(MappedRegion):
    """MappedRegion wired back to its file system for on-demand allocation.

    Real DAX file systems allocate backing inside the fault handler when an
    application ftruncates a file larger than its allocation and touches
    the hole (paper §5.4, LMDB).  The FS decides the granularity: WineFS
    hands the fault an aligned hugepage, others a base block.
    """

    def __init__(self, fs: BaseFS, inode: Inode, **kwargs) -> None:
        self._fs = fs
        self._inode = inode
        self._fault_ctx: Optional[SimContext] = None
        # bypass the extents-cover-length check: sparse mappings are legal
        extents = inode.extents
        super_len = kwargs.pop("length")
        device = kwargs.pop("device")
        machine = kwargs.pop("machine")
        block_size = kwargs.pop("block_size")
        # initialize parent with a permissive length
        self.device = device
        self.machine = machine
        self.extents = extents
        self.length = super_len
        self.block_size = block_size
        self.page_table = make_page_table()
        tlb = kwargs.pop("tlb")
        cache = kwargs.pop("cache")
        self.tlb = tlb if tlb is not None else TLB(machine.tlb_4k_entries,
                                                   machine.tlb_2m_entries)
        self.cache = cache
        self.fault_zero_fill = kwargs.pop("fault_zero_fill")
        self.track_data = kwargs.pop("track_data")
        self.region_id = _next_region_id[0]
        _next_region_id[0] += 1
        self._blocks_per_page = 1
        # walk-engine state (MappedRegion.__init__ is bypassed above)
        self._init_walk_state()
        if super_len <= 0:
            raise InvalidArgumentError("mmap length must be positive")

    def _page_unwritten(self, virt_page: int) -> bool:
        return virt_page * BASE_PAGE >= self._inode.written_hwm

    def _first_unwritten_page(self) -> int:
        return (self._inode.written_hwm + BASE_PAGE - 1) // BASE_PAGE

    def _prefault_run_ready(self, first_page: int, last_page: int) -> bool:
        # no demand allocation: every block in the run must already exist
        return ((last_page + 1) * (BASE_PAGE // self.block_size)
                <= self.extents.total_blocks)

    def _phys_of_virt_page(self, virt_page: int) -> int:
        logical_block = virt_page * (BASE_PAGE // self.block_size)
        if logical_block >= self.extents.total_blocks:
            # demand allocation inside the fault handler
            ctx = self._fault_ctx
            self._fs.alloc_for_fault(self._inode, logical_block, ctx)
        return self.extents.physical_block(logical_block) * self.block_size

    def fault(self, virt_page: int, ctx: SimContext) -> bool:
        # WineFS's fault handler allocates an aligned extent *before*
        # deciding base-vs-huge, so demand allocation must happen first.
        self._fault_ctx = ctx
        logical_block = virt_page * (BASE_PAGE // self.block_size)
        if logical_block >= self.extents.total_blocks:
            self._fs.alloc_for_fault(self._inode, logical_block, ctx)
            if self._inode.size < self.length:
                # mmap writes past EOF extend the file (shared mapping);
                # the mmap() caller already holds the inode lock for the
                # mapping's lifetime, and taking it again here would add
                # LockManager wait accounting to every fault
                # repro: allow[lock-discipline] caller holds the inode lock
                self._inode.size = min(
                    self.length, self.extents.total_blocks * self.block_size)
        return super().fault(virt_page, ctx)
