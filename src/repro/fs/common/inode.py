"""Inodes and inode tables.

Inodes live conceptually on PM (each FS reserves inode-table regions and
charges persist costs for inode updates); the Python object is the DRAM
representation every real PM file system also keeps.  The ``extents`` block
map is the part of the inode the hugepage results depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...errors import FSError, SimulationError
from ...structures.extents import ExtentList

#: serialized inode footprint on PM, charged on inode persists
INODE_BYTES = 128

class _GenerationCounter:
    """Monotonic generation source for live inode objects.

    A plain mutable holder (rather than ``itertools.count``) so snapshot
    restore can fast-forward it past the highest generation present in a
    restored image, keeping lock names unique across restore + fresh
    allocations.
    """

    def __init__(self, start: int = 1) -> None:
        self.next = start

    def take(self) -> int:
        gen = self.next
        self.next += 1
        return gen

    def advance_past(self, gen: int) -> None:
        if gen >= self.next:
            self.next = gen + 1


#: global generation counter for live inode objects
_GENERATION = _GenerationCounter(1)


@dataclass
class Inode:
    ino: int
    is_dir: bool = False
    size: int = 0
    nlink: int = 1
    extents: ExtentList = field(default_factory=ExtentList)
    xattrs: Dict[str, bytes] = field(default_factory=dict)
    #: which logical CPU's pool/journal owns this inode (WineFS, NOVA)
    owner_cpu: int = 0
    #: set when the FS gave this file hugepage-aligned extents (WineFS xattr)
    aligned_hint: bool = False
    #: namespace back-pointers (WineFS embeds these in the inode record so
    #: recovery can rebuild the tree from an inode-table scan)
    parent_ino: int = 0
    name: str = ""
    #: bytes [0, written_hwm) have been written through the FS; beyond it
    #: lie unwritten (fallocated/sparse) blocks that DAX faults must zero
    written_hwm: int = 0
    #: unique per inode *object*: distinguishes recycled inode numbers so
    #: VFS locks key on the live in-memory inode, as the kernel's do
    gen: int = 0
    #: lazily built VFS lock name (gen is fixed per object, so it never
    #: goes stale)
    lock_name: Optional[str] = None

    @property
    def blocks(self) -> int:
        return self.extents.total_blocks


class InodeTable:
    """A pool of inode numbers with a free list.

    WineFS and NOVA shard this per CPU; ext4/xfs/PMFS keep one table.  The
    table hands out dense inode numbers from its range and recycles freed
    ones (recycling is what lets aged file systems reuse inode-table slots
    in place — WineFS's "controlled fragmentation", §3.4).
    """

    def __init__(self, first_ino: int, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("inode table needs capacity >= 1")
        self.first_ino = first_ino
        self.capacity = capacity
        self._next = first_ino
        self._free: List[int] = []
        self._live: Dict[int, Inode] = {}

    def allocate(self, is_dir: bool = False, owner_cpu: int = 0) -> Inode:
        if self._free:
            ino = self._free.pop()
        elif self._next < self.first_ino + self.capacity:
            ino = self._next
            self._next += 1
        else:
            raise FSError("inode table exhausted")
        inode = Inode(ino=ino, is_dir=is_dir, owner_cpu=owner_cpu,
                      gen=_GENERATION.take())
        self._live[ino] = inode
        return inode

    def free(self, ino: int) -> None:
        if ino not in self._live:
            raise FSError(f"double free of inode {ino}")
        del self._live[ino]
        self._free.append(ino)

    def get(self, ino: int) -> Optional[Inode]:
        return self._live.get(ino)

    def __contains__(self, ino: int) -> bool:
        return ino in self._live

    def __len__(self) -> int:
        return len(self._live)

    def live_inodes(self) -> List[Inode]:
        return list(self._live.values())

    @property
    def free_count(self) -> int:
        unallocated = self.first_ino + self.capacity - self._next
        return unallocated + len(self._free)

    def adopt(self, inode: Inode) -> None:
        """Install a reconstructed inode (crash recovery / remount)."""
        if inode.ino in self._live:
            raise FSError(f"inode {inode.ino} already live")
        if not (self.first_ino <= inode.ino < self.first_ino + self.capacity):
            raise FSError(f"inode {inode.ino} outside table range")
        self._live[inode.ino] = inode
        if inode.ino >= self._next:
            # mark the skipped range free
            self._free.extend(range(self._next, inode.ino))
            self._next = inode.ino + 1
        elif inode.ino in self._free:
            self._free.remove(inode.ino)
