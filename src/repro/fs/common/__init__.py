"""Infrastructure shared by all simulated file systems."""

from .inode import Inode, InodeTable
from .dirindex import DirIndex, RBDirIndex, LinearDirIndex
from .base import BaseFS

__all__ = ["Inode", "InodeTable", "DirIndex", "RBDirIndex",
           "LinearDirIndex", "BaseFS"]
