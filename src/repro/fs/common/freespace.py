"""Free-space pools.

A :class:`FreePool` tracks the free extents of one region of the partition
(the kernel structure WineFS keeps in an rbtree, §3.6), merging eagerly on
free.  Auxiliary size/run indexes keep allocation O(log n) under aging
churn:

* a run index over extents that contain whole aligned 2MB ranges (for
  aligned allocation and the Fig 3 fragmentation metric);
* size indexes over all extents and over pure holes (extents containing
  no aligned run), for best-fit carving.

All allocators in this repro are built from FreePools; they differ only in
*policy* (what to carve, where), which is the paper's point.

Two interchangeable state engines implement the same policy code:

* :class:`FreePool` — the array-backed engine: one
  :class:`~repro.structures.runstore.RunStore` of sorted start/length
  columns with in-place split/merge (the default);
* :class:`ReferenceFreePool` — the per-object engine over four
  :class:`~repro.structures.sortedmap.SortedMap`\\ s, kept verbatim as
  the reference the equivalence suite compares against.

``FreePool(start, length)`` transparently builds the reference engine
when :func:`repro.engine.reference_state` is set, so the seven FS models
and the allocator never know which one they hold.  Both engines make
identical allocation decisions — the derived indexes are canonical
functions of the extent set — which is what keeps ``sim_ns``
bit-identical between them.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, Optional, Tuple

from ... import engine as _engine
from ...errors import SimulationError
from ...params import BLOCKS_PER_HUGEPAGE
from ...structures.extents import Extent, align_down, align_up
from ...structures.runstore import (RunStore, START_BITS as _START_BITS,
                                    START_MASK as _START_MASK, runs_in)
from ...structures.sortedmap import SortedMap


def _size_key(length: int, start: int) -> int:
    return (length << _START_BITS) | start


def _runs_in(start: int, length: int) -> int:
    """Whole aligned hugepage runs inside a free run."""
    return runs_in(start, length)


class FreePool:
    """Free extents of one block range, merged eagerly (array engine)."""

    def __new__(cls, *args, **kwargs):
        # engine dispatch happens only on real construction (the snapshot
        # codec rebuilds instances via cls.__new__(cls) with no arguments
        # and must get exactly the class the snapshot names)
        if (args or kwargs) and cls is FreePool and _engine.reference_state():
            return super().__new__(ReferenceFreePool)
        return super().__new__(cls)

    def __init__(self, start: int, length: int) -> None:
        if length < 0:
            raise SimulationError("negative pool length")
        if start + length > _START_MASK:
            raise SimulationError("pool exceeds size-index address range")
        self.range_start = start
        self.range_end = start + length
        self._rs = RunStore()
        if length:
            self._rs.add(start, length)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rs)

    def extents(self) -> Iterator[Extent]:
        for start, length in self._rs.items():
            yield Extent(start, length)

    @property
    def free_blocks(self) -> int:
        return self._rs.free_blocks

    def aligned_hugepages(self) -> int:
        """Whole aligned 2MB runs currently free (Fig 3 metric)."""
        return self._rs.total_runs

    def largest(self) -> int:
        return self._rs.largest()

    def contains_block(self, block: int) -> bool:
        rs = self._rs
        i = rs.floor_index(block)
        return i >= 0 and block < rs.starts[i] + rs.lens[i]

    # -- mutation -----------------------------------------------------------------

    def insert(self, extent: Extent) -> None:
        """Return an extent to the pool, merging with neighbours.

        Merges are in-place column writes: absorbing the freed extent
        into its predecessor is one :meth:`RunStore.reshape`, never a
        delete/re-insert pair per index.
        """
        if extent.start < self.range_start or extent.end > self.range_end:
            raise SimulationError(f"{extent} outside pool "
                                  f"[{self.range_start}, {self.range_end})")
        rs = self._rs
        starts = rs.starts
        start, length = extent.start, extent.length
        i = bisect_right(starts, start) - 1
        merge_prev = False
        if i >= 0:
            pstart = starts[i]
            plen = rs.lens[i]
            if pstart + plen > start:
                raise SimulationError(f"double free: {extent} overlaps "
                                      f"({pstart}, +{plen})")
            merge_prev = pstart + plen == start
        end = start + length
        j = bisect_left(starts, end)
        merge_next = False
        if j < len(starts):
            nstart = starts[j]
            if end > nstart:
                raise SimulationError(f"double free: {extent} overlaps "
                                      f"({nstart}, +{rs.lens[j]})")
            merge_next = end == nstart
        if merge_prev:
            if merge_next:
                nlen = rs.lens[j]
                rs.remove_at(j)
                rs.reshape(i, starts[i], rs.lens[i] + length + nlen)
            else:
                rs.reshape(i, starts[i], rs.lens[i] + length)
        elif merge_next:
            rs.reshape(j, start, length + rs.lens[j])
        else:
            rs.add(start, length)

    def _carve_at(self, i: int, take_start: int, take_len: int) -> Extent:
        """Remove [take_start, +take_len) from the free extent at column
        index *i* — in-place front/tail trims, one split for the middle."""
        rs = self._rs
        start = rs.starts[i]
        head = take_start - start
        tail = (start + rs.lens[i]) - (take_start + take_len)
        if head > 0:
            rs.reshape(i, start, head)
            if tail > 0:
                rs.add(take_start + take_len, tail)
        elif tail > 0:
            rs.reshape(i, take_start + take_len, tail)
        else:
            rs.remove_at(i)
        return Extent(take_start, take_len)

    def alloc_first_fit(self, nblocks: int,
                        goal: Optional[int] = None) -> Optional[Extent]:
        """Carve *nblocks*; try to extend at *goal* first (the
        contiguity-first policy of ext4/xfs), else best-fit by size.

        Best-fit takes from the extent's *start*, so after churn the start
        is typically unaligned — reproducing the paper's observation that
        contiguity-first allocators use misaligned extents even when
        aligned ones are available (§2.5).
        """
        if nblocks <= 0:
            raise SimulationError("allocation must be positive")
        rs = self._rs
        starts = rs.starts
        lens = rs.lens
        if goal is not None:
            i = bisect_right(starts, goal) - 1
            if i >= 0:
                start = starts[i]
                if start <= goal < start + lens[i] and \
                        (start + lens[i]) - goal >= nblocks:
                    return self._carve_at(i, goal, nblocks)
        # address-ordered first fit: small allocations carve the *front*
        # of the lowest free run — this is precisely what chops up and
        # misaligns large free runs as contiguity-first file systems age.
        # The scan is bounded; past the bound we fall back to the size
        # index (best fit), which real allocators also do via size trees.
        for i in range(min(len(starts), 64)):
            if lens[i] >= nblocks:
                return self._carve_at(i, starts[i], nblocks)
        i = rs.smallest_fitting(nblocks)
        if i is None:
            return None
        return self._carve_at(i, starts[i], nblocks)

    def alloc_next_fit(self, nblocks: int) -> Optional[Extent]:
        """Next-fit: carve from the first fitting extent at or after a
        rotating cursor, wrapping around.

        This is NOVA's per-CPU allocation behaviour (allocation resumes
        where the last one left off), and it is the classic fragmentation
        driver: small allocations (log pages, CoW blocks) march across
        the whole pool, chopping and misaligning every large free run —
        "the log-structured design of NOVA fragments free space" (§6).
        """
        if nblocks <= 0:
            raise SimulationError("allocation must be positive")
        rs = self._rs
        starts = rs.starts
        lens = rs.lens
        cursor = getattr(self, "_cursor", self.range_start)
        for wrapped in (False, True):
            probe_from = self.range_start if wrapped else cursor
            i = bisect_left(starts, probe_from)
            probes = 0
            while i < len(starts) and probes < 64:
                if lens[i] >= nblocks:
                    got = self._carve_at(i, starts[i], nblocks)
                    self._cursor = got.end
                    return got
                i += 1
                probes += 1
        # bounded probing failed: best-fit fallback
        i = rs.smallest_fitting(nblocks)
        if i is None:
            return None
        got = self._carve_at(i, starts[i], nblocks)
        self._cursor = got.end
        return got

    def alloc_first_fit_aligned_pref(self, nblocks: int,
                                     goal: Optional[int] = None
                                     ) -> Optional[Extent]:
        """First-fit, but carve from the next hugepage boundary when the
        chosen run is large enough to afford it.

        This is mballoc's behaviour for normalized large requests: ext4
        aligns power-of-2 chunks to their size boundary when the free run
        allows, which is why a *clean* ext4-DAX produces hugepage-mappable
        files (Fig 1a) — and why an aged one, carving from whatever run
        first fits, usually does not (§2.5: ext4 "ends up using only 3k"
        of the available aligned extents).
        """
        if goal is not None:
            got = self.alloc_first_fit(nblocks, goal=goal)
            if got is not None:
                return got
        rs = self._rs
        starts = rs.starts
        lens = rs.lens
        for i in range(min(len(starts), 64)):
            start = starts[i]
            length = lens[i]
            astart = align_up(start)
            if astart + nblocks <= start + length and \
                    astart - start < BLOCKS_PER_HUGEPAGE:
                return self._carve_at(i, astart, nblocks)
            if length >= nblocks:
                return self._carve_at(i, start, nblocks)
        return self.alloc_first_fit(nblocks)

    def alloc_aligned_hugepage(self) -> Optional[Extent]:
        """Carve one whole aligned 2MB extent, if any exists."""
        rs = self._rs
        if not rs.run_starts:
            return None
        start = rs.run_starts[0]
        i = rs.index_of(start)
        astart = align_up(start)
        return self._carve_at(i, astart, BLOCKS_PER_HUGEPAGE)

    def alloc_avoiding_aligned(self, nblocks: int) -> Optional[Extent]:
        """Carve *nblocks* while spending unaligned slack first.

        WineFS's hole-filling policy: small requests consume the unaligned
        holes so whole aligned hugepages survive (§3.4).  If no run-free
        extent can satisfy the request, unaligned slack at the edges of a
        run-bearing extent is used; only as a last resort is an aligned
        extent broken up (§3.4: "If required, a single aligned extent is
        broken up to satisfy small allocation requests").
        """
        if nblocks <= 0:
            raise SimulationError("allocation must be positive")
        rs = self._rs
        # pass 1: smallest pure hole that fits
        i = rs.smallest_fitting(nblocks, holes_only=True)
        if i is not None:
            return self._carve_at(i, rs.starts[i], nblocks)
        # pass 2: unaligned slack at the edges of run-bearing extents
        lens = rs.lens
        for start in rs.run_starts:
            i = rs.index_of(start)
            length = lens[i]
            astart = align_up(start)
            head = astart - start
            if head >= nblocks:
                return self._carve_at(i, start, nblocks)
            aend = align_down(start + length)
            tail = (start + length) - aend
            if tail >= nblocks:
                return self._carve_at(i, start + length - nblocks, nblocks)
        # pass 3: break an aligned extent
        i = rs.smallest_fitting(nblocks)
        if i is None:
            return None
        return self._carve_at(i, rs.starts[i], nblocks)

    def alloc_exact(self, start: int, nblocks: int) -> Optional[Extent]:
        """Carve exactly [start, +nblocks) if it is entirely free."""
        rs = self._rs
        i = rs.floor_index(start)
        if i < 0:
            return None
        if start + nblocks <= rs.starts[i] + rs.lens[i]:
            return self._carve_at(i, start, nblocks)
        return None

    def check_invariants(self) -> None:
        """Verify column/index consistency (used by property tests)."""
        self._rs.check_invariants()
        for start, length in self._rs.items():
            assert self.range_start <= start
            assert start + length <= self.range_end


class ReferenceFreePool(FreePool):
    """The per-object engine: four ordered maps, kept verbatim.

    This is the original implementation the array engine replaced; the
    equivalence and property-differential suites run whole workloads on
    both and require bit-identical clocks and counters.
    """

    def __init__(self, start: int, length: int) -> None:
        if length < 0:
            raise SimulationError("negative pool length")
        if start + length > _START_MASK:
            raise SimulationError("pool exceeds size-index address range")
        self.range_start = start
        self.range_end = start + length
        # ordered maps (kernel WineFS uses rbtrees; nothing here observes
        # the structure's shape, so the array-backed map's identical
        # ordered semantics at lower constant cost are a free swap)
        self._tree = SortedMap()          # start block -> length
        self._with_runs = SortedMap()     # start block -> run count (>= 1)
        self._by_size = SortedMap()       # (length, start) key -> None
        self._holes_by_size = SortedMap() # same, only runs == 0 extents
        self._total_runs = 0
        self._free_blocks = 0
        if length:
            self._add_run(start, length)

    # -- index maintenance ------------------------------------------------------

    def _add_run(self, start: int, length: int) -> None:
        self._tree.insert(start, length)
        self._by_size.insert(_size_key(length, start), None)
        runs = _runs_in(start, length)
        if runs:
            self._with_runs.insert(start, runs)
            self._total_runs += runs
        else:
            self._holes_by_size.insert(_size_key(length, start), None)
        self._free_blocks += length

    def _del_run(self, start: int, length: int) -> None:
        self._tree.remove(start)
        self._by_size.remove(_size_key(length, start))
        runs = self._with_runs.get(start)
        if runs is not None:
            self._with_runs.remove(start)
            self._total_runs -= runs
        else:
            self._holes_by_size.remove(_size_key(length, start))
        self._free_blocks -= length

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tree)

    def extents(self) -> Iterator[Extent]:
        for start, length in self._tree.items():
            yield Extent(start, length)

    @property
    def free_blocks(self) -> int:
        return self._free_blocks

    def aligned_hugepages(self) -> int:
        """Whole aligned 2MB runs currently free (Fig 3 metric)."""
        return self._total_runs

    def largest(self) -> int:
        if not self._by_size:
            return 0
        key, _ = self._by_size.max_item()
        return key >> _START_BITS

    def contains_block(self, block: int) -> bool:
        item = self._tree.floor_item(block)
        if item is None:
            return False
        start, length = item
        return start <= block < start + length

    # -- mutation -----------------------------------------------------------------

    def insert(self, extent: Extent) -> None:
        """Return an extent to the pool, merging with neighbours."""
        if extent.start < self.range_start or extent.end > self.range_end:
            raise SimulationError(f"{extent} outside pool "
                                  f"[{self.range_start}, {self.range_end})")
        start, length = extent.start, extent.length
        prev = self._tree.floor_item(start)
        if prev is not None:
            pstart, plen = prev
            if pstart + plen > start:
                raise SimulationError(f"double free: {extent} overlaps "
                                      f"({pstart}, +{plen})")
            if pstart + plen == start:
                self._del_run(pstart, plen)
                start, length = pstart, plen + length
        nxt = self._tree.ceiling_item(start + length)
        if nxt is not None:
            nstart, nlen = nxt
            if start + length > nstart:
                raise SimulationError(f"double free: {extent} overlaps "
                                      f"({nstart}, +{nlen})")
            if start + length == nstart:
                self._del_run(nstart, nlen)
                length += nlen
        self._add_run(start, length)

    def _carve(self, start: int, length: int, take_start: int,
               take_len: int) -> Extent:
        """Remove [take_start, +take_len) from the free run (start, +length)."""
        self._del_run(start, length)
        if take_start > start:
            self._add_run(start, take_start - start)
        tail = (start + length) - (take_start + take_len)
        if tail > 0:
            self._add_run(take_start + take_len, tail)
        return Extent(take_start, take_len)

    def _smallest_fitting(self, index: SortedMap, nblocks: int
                          ) -> Optional[Tuple[int, int]]:
        """(start, length) of the smallest indexed extent >= nblocks."""
        item = index.ceiling_item(_size_key(nblocks, 0))
        if item is None:
            return None
        key, _ = item
        return key & _START_MASK, key >> _START_BITS

    def alloc_first_fit(self, nblocks: int,
                        goal: Optional[int] = None) -> Optional[Extent]:
        if nblocks <= 0:
            raise SimulationError("allocation must be positive")
        if goal is not None:
            item = self._tree.floor_item(goal)
            if item is not None:
                start, length = item
                if start <= goal < start + length and \
                        (start + length) - goal >= nblocks:
                    return self._carve(start, length, goal, nblocks)
        probes = 0
        for start, length in self._tree.items():
            if length >= nblocks:
                return self._carve(start, length, start, nblocks)
            probes += 1
            if probes >= 64:
                break
        hit = self._smallest_fitting(self._by_size, nblocks)
        if hit is None:
            return None
        start, length = hit
        return self._carve(start, length, start, nblocks)

    def alloc_next_fit(self, nblocks: int) -> Optional[Extent]:
        if nblocks <= 0:
            raise SimulationError("allocation must be positive")
        cursor = getattr(self, "_cursor", self.range_start)
        for wrapped in (False, True):
            probe_from = self.range_start if wrapped else cursor
            item = self._tree.ceiling_item(probe_from)
            probes = 0
            while item is not None and probes < 64:
                start, length = item
                if length >= nblocks:
                    got = self._carve(start, length, start, nblocks)
                    self._cursor = got.end
                    return got
                item = self._tree.ceiling_item(start + length)
                probes += 1
        # bounded probing failed: best-fit fallback
        hit = self._smallest_fitting(self._by_size, nblocks)
        if hit is None:
            return None
        start, length = hit
        got = self._carve(start, length, start, nblocks)
        self._cursor = got.end
        return got

    def alloc_first_fit_aligned_pref(self, nblocks: int,
                                     goal: Optional[int] = None
                                     ) -> Optional[Extent]:
        if goal is not None:
            got = self.alloc_first_fit(nblocks, goal=goal)
            if got is not None:
                return got
        probes = 0
        for start, length in self._tree.items():
            astart = align_up(start)
            if astart + nblocks <= start + length and \
                    astart - start < BLOCKS_PER_HUGEPAGE:
                return self._carve(start, length, astart, nblocks)
            if length >= nblocks:
                return self._carve(start, length, start, nblocks)
            probes += 1
            if probes >= 64:
                break
        return self.alloc_first_fit(nblocks)

    def alloc_aligned_hugepage(self) -> Optional[Extent]:
        if not self._with_runs:
            return None
        start, _runs = self._with_runs.min_item()
        length = self._tree[start]
        astart = align_up(start)
        return self._carve(start, length, astart, BLOCKS_PER_HUGEPAGE)

    def alloc_avoiding_aligned(self, nblocks: int) -> Optional[Extent]:
        if nblocks <= 0:
            raise SimulationError("allocation must be positive")
        # pass 1: smallest pure hole that fits
        hit = self._smallest_fitting(self._holes_by_size, nblocks)
        if hit is not None:
            start, length = hit
            return self._carve(start, length, start, nblocks)
        # pass 2: unaligned slack at the edges of run-bearing extents
        for start, _runs in self._with_runs.items():
            length = self._tree[start]
            astart = align_up(start)
            head = astart - start
            if head >= nblocks:
                return self._carve(start, length, start, nblocks)
            aend = align_down(start + length)
            tail = (start + length) - aend
            if tail >= nblocks:
                return self._carve(start, length,
                                   start + length - nblocks, nblocks)
        # pass 3: break an aligned extent
        hit = self._smallest_fitting(self._by_size, nblocks)
        if hit is None:
            return None
        start, length = hit
        return self._carve(start, length, start, nblocks)

    def alloc_exact(self, start: int, nblocks: int) -> Optional[Extent]:
        item = self._tree.floor_item(start)
        if item is None:
            return None
        fstart, flen = item
        if fstart <= start and start + nblocks <= fstart + flen:
            return self._carve(fstart, flen, start, nblocks)
        return None

    def check_invariants(self) -> None:
        """Verify tree/index consistency (used by property tests)."""
        self._tree.check_invariants()
        self._by_size.check_invariants()
        total = 0
        runs = 0
        prev_end = None
        for start, length in self._tree.items():
            assert length > 0
            if prev_end is not None:
                assert start > prev_end, "adjacent extents not merged"
            prev_end = start + length
            total += length
            r = _runs_in(start, length)
            runs += r
            assert _size_key(length, start) in self._by_size, \
                "size index missing entry"
            if r:
                assert self._with_runs.get(start) == r, "run index drift"
                assert _size_key(length, start) not in self._holes_by_size
            else:
                assert start not in self._with_runs
                assert _size_key(length, start) in self._holes_by_size, \
                    "hole index missing entry"
        assert total == self.free_blocks, "free block accounting drift"
        assert runs == self._total_runs, "aligned-run index drift"
        assert len(self._by_size) == len(self._tree)
