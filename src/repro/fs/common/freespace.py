"""Free-space pools.

A :class:`FreePool` tracks the free extents of one region of the partition
in a red-black tree keyed by start block (the kernel structure WineFS
reuses, §3.6), merging eagerly on free.  Two auxiliary indexes keep
allocation O(log n) under aging churn:

* a run index over extents that contain whole aligned 2MB ranges (for
  aligned allocation and the Fig 3 fragmentation metric);
* size indexes over all extents and over pure holes (extents containing
  no aligned run), for best-fit carving.

All allocators in this repro are built from FreePools; they differ only in
*policy* (what to carve, where), which is the paper's point.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ...errors import NoSpaceError, SimulationError
from ...params import BLOCKS_PER_HUGEPAGE
from ...structures.extents import Extent, align_down, align_up
from ...structures.sortedmap import SortedMap

#: size-index keys pack (length, start) into one int; start < 2^40 covers
#: partitions up to 4 exabytes of 4KB blocks
_START_BITS = 40
_START_MASK = (1 << _START_BITS) - 1


def _size_key(length: int, start: int) -> int:
    return (length << _START_BITS) | start


def _runs_in(start: int, length: int) -> int:
    """Whole aligned hugepage runs inside a free run."""
    first = align_up(start)
    last = align_down(start + length)
    return max(0, (last - first) // BLOCKS_PER_HUGEPAGE)


class FreePool:
    """Free extents of one block range, merged eagerly."""

    def __init__(self, start: int, length: int) -> None:
        if length < 0:
            raise SimulationError("negative pool length")
        if start + length > _START_MASK:
            raise SimulationError("pool exceeds size-index address range")
        self.range_start = start
        self.range_end = start + length
        # ordered maps (kernel WineFS uses rbtrees; nothing here observes
        # the structure's shape, so the array-backed map's identical
        # ordered semantics at lower constant cost are a free swap)
        self._tree = SortedMap()          # start block -> length
        self._with_runs = SortedMap()     # start block -> run count (>= 1)
        self._by_size = SortedMap()       # (length, start) key -> None
        self._holes_by_size = SortedMap() # same, only runs == 0 extents
        self._total_runs = 0
        self.free_blocks = 0
        if length:
            self._add_run(start, length)

    # -- index maintenance ------------------------------------------------------

    def _add_run(self, start: int, length: int) -> None:
        self._tree.insert(start, length)
        self._by_size.insert(_size_key(length, start), None)
        runs = _runs_in(start, length)
        if runs:
            self._with_runs.insert(start, runs)
            self._total_runs += runs
        else:
            self._holes_by_size.insert(_size_key(length, start), None)
        self.free_blocks += length

    def _del_run(self, start: int, length: int) -> None:
        self._tree.remove(start)
        self._by_size.remove(_size_key(length, start))
        runs = self._with_runs.get(start)
        if runs is not None:
            self._with_runs.remove(start)
            self._total_runs -= runs
        else:
            self._holes_by_size.remove(_size_key(length, start))
        self.free_blocks -= length

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tree)

    def extents(self) -> Iterator[Extent]:
        for start, length in self._tree.items():
            yield Extent(start, length)

    def aligned_hugepages(self) -> int:
        """Whole aligned 2MB runs currently free (Fig 3 metric)."""
        return self._total_runs

    def largest(self) -> int:
        if not self._by_size:
            return 0
        key, _ = self._by_size.max_item()
        return key >> _START_BITS

    def contains_block(self, block: int) -> bool:
        item = self._tree.floor_item(block)
        if item is None:
            return False
        start, length = item
        return start <= block < start + length

    # -- mutation -----------------------------------------------------------------

    def insert(self, extent: Extent) -> None:
        """Return an extent to the pool, merging with neighbours."""
        if extent.start < self.range_start or extent.end > self.range_end:
            raise SimulationError(f"{extent} outside pool "
                                  f"[{self.range_start}, {self.range_end})")
        start, length = extent.start, extent.length
        prev = self._tree.floor_item(start)
        if prev is not None:
            pstart, plen = prev
            if pstart + plen > start:
                raise SimulationError(f"double free: {extent} overlaps "
                                      f"({pstart}, +{plen})")
            if pstart + plen == start:
                self._del_run(pstart, plen)
                start, length = pstart, plen + length
        nxt = self._tree.ceiling_item(start + length)
        if nxt is not None:
            nstart, nlen = nxt
            if start + length > nstart:
                raise SimulationError(f"double free: {extent} overlaps "
                                      f"({nstart}, +{nlen})")
            if start + length == nstart:
                self._del_run(nstart, nlen)
                length += nlen
        self._add_run(start, length)

    def _carve(self, start: int, length: int, take_start: int,
               take_len: int) -> Extent:
        """Remove [take_start, +take_len) from the free run (start, +length)."""
        self._del_run(start, length)
        if take_start > start:
            self._add_run(start, take_start - start)
        tail = (start + length) - (take_start + take_len)
        if tail > 0:
            self._add_run(take_start + take_len, tail)
        return Extent(take_start, take_len)

    def _smallest_fitting(self, index: SortedMap, nblocks: int
                          ) -> Optional[Tuple[int, int]]:
        """(start, length) of the smallest indexed extent >= nblocks."""
        item = index.ceiling_item(_size_key(nblocks, 0))
        if item is None:
            return None
        key, _ = item
        return key & _START_MASK, key >> _START_BITS

    def alloc_first_fit(self, nblocks: int,
                        goal: Optional[int] = None) -> Optional[Extent]:
        """Carve *nblocks*; try to extend at *goal* first (the
        contiguity-first policy of ext4/xfs), else best-fit by size.

        Best-fit takes from the extent's *start*, so after churn the start
        is typically unaligned — reproducing the paper's observation that
        contiguity-first allocators use misaligned extents even when
        aligned ones are available (§2.5).
        """
        if nblocks <= 0:
            raise SimulationError("allocation must be positive")
        if goal is not None:
            item = self._tree.floor_item(goal)
            if item is not None:
                start, length = item
                if start <= goal < start + length and \
                        (start + length) - goal >= nblocks:
                    return self._carve(start, length, goal, nblocks)
        # address-ordered first fit: small allocations carve the *front*
        # of the lowest free run — this is precisely what chops up and
        # misaligns large free runs as contiguity-first file systems age.
        # The scan is bounded; past the bound we fall back to the size
        # index (best fit), which real allocators also do via size trees.
        probes = 0
        for start, length in self._tree.items():
            if length >= nblocks:
                return self._carve(start, length, start, nblocks)
            probes += 1
            if probes >= 64:
                break
        hit = self._smallest_fitting(self._by_size, nblocks)
        if hit is None:
            return None
        start, length = hit
        return self._carve(start, length, start, nblocks)

    def alloc_next_fit(self, nblocks: int) -> Optional[Extent]:
        """Next-fit: carve from the first fitting extent at or after a
        rotating cursor, wrapping around.

        This is NOVA's per-CPU allocation behaviour (allocation resumes
        where the last one left off), and it is the classic fragmentation
        driver: small allocations (log pages, CoW blocks) march across
        the whole pool, chopping and misaligning every large free run —
        "the log-structured design of NOVA fragments free space" (§6).
        """
        if nblocks <= 0:
            raise SimulationError("allocation must be positive")
        cursor = getattr(self, "_cursor", self.range_start)
        for wrapped in (False, True):
            probe_from = self.range_start if wrapped else cursor
            item = self._tree.ceiling_item(probe_from)
            probes = 0
            while item is not None and probes < 64:
                start, length = item
                if length >= nblocks:
                    got = self._carve(start, length, start, nblocks)
                    self._cursor = got.end
                    return got
                item = self._tree.ceiling_item(start + length)
                probes += 1
        # bounded probing failed: best-fit fallback
        hit = self._smallest_fitting(self._by_size, nblocks)
        if hit is None:
            return None
        start, length = hit
        got = self._carve(start, length, start, nblocks)
        self._cursor = got.end
        return got

    def alloc_first_fit_aligned_pref(self, nblocks: int,
                                     goal: Optional[int] = None
                                     ) -> Optional[Extent]:
        """First-fit, but carve from the next hugepage boundary when the
        chosen run is large enough to afford it.

        This is mballoc's behaviour for normalized large requests: ext4
        aligns power-of-2 chunks to their size boundary when the free run
        allows, which is why a *clean* ext4-DAX produces hugepage-mappable
        files (Fig 1a) — and why an aged one, carving from whatever run
        first fits, usually does not (§2.5: ext4 "ends up using only 3k"
        of the available aligned extents).
        """
        if goal is not None:
            got = self.alloc_first_fit(nblocks, goal=goal)
            if got is not None:
                return got
        probes = 0
        for start, length in self._tree.items():
            astart = align_up(start)
            if astart + nblocks <= start + length and \
                    astart - start < BLOCKS_PER_HUGEPAGE:
                return self._carve(start, length, astart, nblocks)
            if length >= nblocks:
                return self._carve(start, length, start, nblocks)
            probes += 1
            if probes >= 64:
                break
        return self.alloc_first_fit(nblocks)

    def alloc_aligned_hugepage(self) -> Optional[Extent]:
        """Carve one whole aligned 2MB extent, if any exists."""
        if not self._with_runs:
            return None
        start, _runs = self._with_runs.min_item()
        length = self._tree[start]
        astart = align_up(start)
        return self._carve(start, length, astart, BLOCKS_PER_HUGEPAGE)

    def alloc_avoiding_aligned(self, nblocks: int) -> Optional[Extent]:
        """Carve *nblocks* while spending unaligned slack first.

        WineFS's hole-filling policy: small requests consume the unaligned
        holes so whole aligned hugepages survive (§3.4).  If no run-free
        extent can satisfy the request, unaligned slack at the edges of a
        run-bearing extent is used; only as a last resort is an aligned
        extent broken up (§3.4: "If required, a single aligned extent is
        broken up to satisfy small allocation requests").
        """
        if nblocks <= 0:
            raise SimulationError("allocation must be positive")
        # pass 1: smallest pure hole that fits
        hit = self._smallest_fitting(self._holes_by_size, nblocks)
        if hit is not None:
            start, length = hit
            return self._carve(start, length, start, nblocks)
        # pass 2: unaligned slack at the edges of run-bearing extents
        for start, _runs in self._with_runs.items():
            length = self._tree[start]
            astart = align_up(start)
            head = astart - start
            if head >= nblocks:
                return self._carve(start, length, start, nblocks)
            aend = align_down(start + length)
            tail = (start + length) - aend
            if tail >= nblocks:
                return self._carve(start, length,
                                   start + length - nblocks, nblocks)
        # pass 3: break an aligned extent
        hit = self._smallest_fitting(self._by_size, nblocks)
        if hit is None:
            return None
        start, length = hit
        return self._carve(start, length, start, nblocks)

    def alloc_exact(self, start: int, nblocks: int) -> Optional[Extent]:
        """Carve exactly [start, +nblocks) if it is entirely free."""
        item = self._tree.floor_item(start)
        if item is None:
            return None
        fstart, flen = item
        if fstart <= start and start + nblocks <= fstart + flen:
            return self._carve(fstart, flen, start, nblocks)
        return None

    def check_invariants(self) -> None:
        """Verify tree/index consistency (used by property tests)."""
        self._tree.check_invariants()
        self._by_size.check_invariants()
        total = 0
        runs = 0
        prev_end = None
        for start, length in self._tree.items():
            assert length > 0
            if prev_end is not None:
                assert start > prev_end, "adjacent extents not merged"
            prev_end = start + length
            total += length
            r = _runs_in(start, length)
            runs += r
            assert _size_key(length, start) in self._by_size, \
                "size index missing entry"
            if r:
                assert self._with_runs.get(start) == r, "run index drift"
                assert _size_key(length, start) not in self._holes_by_size
            else:
                assert start not in self._with_runs
                assert _size_key(length, start) in self._holes_by_size, \
                    "hole index missing entry"
        assert total == self.free_blocks, "free block accounting drift"
        assert runs == self._total_runs, "aligned-run index drift"
        assert len(self._by_size) == len(self._tree)
