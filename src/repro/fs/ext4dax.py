"""ext4-DAX baseline.

Reproduces the two design properties the paper attributes to ext4-DAX:

* **mballoc-style allocator** that optimizes for contiguity with the file's
  last extent (goal allocation), not hugepage alignment (§2.6).  On a clean
  file system large allocations happen to start aligned (the data area
  begins at an aligned boundary and first-fit walks forward), which is why
  ext4-DAX performs well un-aged (Fig 1a); churn misaligns the holes and
  the alignment is lost (Fig 3).
* **JBD2 journal**: metadata updates join a running in-DRAM transaction;
  ``fsync`` forces a stop-the-world commit under a global lock, the
  scalability bottleneck of Fig 10 and the costly-append effect of Fig 6.

ext4-DAX zeroes freshly allocated pages inside the page-fault handler
(``fault_zero_fill``), which the paper measures via PmemKV (§5.4).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from ..clock import SimContext
from ..errors import NoSpaceError
from ..params import BLOCK_SIZE
from ..pm.device import PMDevice
from ..structures.extents import Extent
from .common.base import BaseFS
from .common.freespace import FreePool
from .common.inode import Inode

#: cost of adding one handle to the running JBD2 transaction (DRAM)
_JBD2_HANDLE_NS = 180.0
#: bytes journaled per metadata handle at commit time
_JBD2_BYTES_PER_HANDLE = 256


class Ext4DAX(BaseFS):
    name = "ext4-DAX"
    data_consistent = False
    fault_zero_fill = True

    def __init__(self, device: PMDevice, num_cpus: int = 4,
                 track_data: Optional[bool] = None) -> None:
        super().__init__(device, num_cpus, track_data=track_data)
        self._pool: Optional[FreePool] = None
        self._pending_handles = 0
        self.jbd2_commits = 0

    def _metadata_blocks(self) -> int:
        # superblock, group descriptors, bitmaps, inode tables, JBD2 area;
        # rounded so the data area starts hugepage-aligned (as mkfs.ext4
        # does with flex_bg on a 2MB-aligned partition)
        from ..structures.extents import align_up
        return align_up(4096)

    def _init_allocator(self) -> None:
        self._pool = FreePool(self.meta_blocks,
                              self.total_blocks - self.meta_blocks)

    # -- allocation: contiguity-first goal allocation ---------------------------------

    def _alloc(self, nblocks: int, ctx: SimContext, *,
               goal: Optional[int] = None,
               want_aligned: bool = False) -> List[Extent]:
        assert self._pool is not None
        ctx.charge(80.0)   # mballoc search
        out: List[Extent] = []
        remaining = nblocks
        cur_goal = goal
        from ..params import BLOCKS_PER_HUGEPAGE
        while remaining > 0:
            if remaining >= BLOCKS_PER_HUGEPAGE:
                # mballoc normalizes large requests and aligns them to
                # their size boundary when the chosen run allows
                ext = self._pool.alloc_first_fit_aligned_pref(
                    remaining, goal=cur_goal)
            else:
                ext = self._pool.alloc_first_fit(remaining, goal=cur_goal)
            if ext is None:
                # fragmented: take the largest run available
                largest = self._pool.largest()
                if largest == 0:
                    self._free(out, ctx)
                    raise NoSpaceError("ext4: no free blocks")
                ext = self._pool.alloc_first_fit(min(largest, remaining))
                assert ext is not None
            out.append(ext)
            remaining -= ext.length
            cur_goal = ext.end
        return out

    def _free(self, extents: List[Extent], ctx: SimContext) -> None:
        assert self._pool is not None
        for ext in extents:
            self._pool.insert(ext)

    # -- JBD2 ---------------------------------------------------------------------------

    @contextmanager
    def _meta_txn(self, ctx: SimContext, entries: int,
                  ino: Optional[int] = None) -> Iterator[None]:
        # joining the running transaction serializes briefly
        ctx.locks.atomic("jbd2-handle", ctx.cpu, _JBD2_HANDLE_NS)
        self._pending_handles += entries
        yield

    def _commit_jbd2(self, ctx: SimContext) -> None:
        """Stop-the-world journal flush: the commit path is one serial
        resource, so concurrent fsyncs queue behind each other — the
        Fig 10 scalability ceiling of ext4-DAX."""
        if self._pending_handles:
            nbytes = self._pending_handles * _JBD2_BYTES_PER_HANDLE \
                + BLOCK_SIZE   # descriptor + commit blocks
            ns = self.machine.jbd2_commit_ns + self.machine.persist_ns(nbytes)
            ctx.locks.atomic("jbd2-commit", ctx.cpu, ns)
            ctx.counters.journal_ns += ns
            self._pending_handles = 0
            self.jbd2_commits += 1
        else:
            ctx.locks.atomic("jbd2-commit", ctx.cpu,
                             self.machine.jbd2_commit_ns / 4)

    # -- data path: in-place DAX writes ---------------------------------------------------

    def _write_data(self, inode: Inode, offset: int, data: bytes,
                    ctx: SimContext) -> None:
        ns = self.machine.persist_ns(len(data))
        ctx.charge(ns)
        ctx.counters.pm_bytes_written += len(data)
        if self.track_data:
            self._store_blocks(inode, offset, data)

    def _store_blocks(self, inode: Inode, offset: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            block = (offset + pos) // self.block_size
            within = (offset + pos) % self.block_size
            take = min(self.block_size - within, len(data) - pos)
            phys = inode.extents.physical_block(block)
            addr = phys * self.block_size + within
            self.device.store(addr, data[pos:pos + take])
            self.device.clwb(addr, take)
            pos += take
        self.device.sfence()

    def _fsync_impl(self, inode: Inode, ctx: SimContext) -> None:
        self._commit_jbd2(ctx)

    def unmount(self, ctx: SimContext) -> None:
        self._commit_jbd2(ctx)
        super().unmount(ctx)

    # -- metrics --------------------------------------------------------------------------

    def _free_pools(self):
        return [self._pool] if self._pool is not None else None

    def _free_extent_iter(self) -> Iterator[Extent]:
        assert self._pool is not None
        yield from self._pool.extents()
