"""xfs-DAX baseline.

Per the paper's footnote 1, xfs-DAX "cannot get hugepages even when clean"
because its allocator "completely disregards alignment even for large
extents".  We model an allocation-group design whose data area begins just
past unaligned AG headers and whose by-size/by-start B+tree allocator
optimizes purely for contiguity — so even a fresh large file starts at an
unaligned block.

Like ext4, xfs batches metadata into an in-core log that ``fsync`` forces
out under a global lock (Fig 10: "ext4-DAX and xfs-DAX have low
scalability as they use a stop-the-world approach on fsync()").
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from ..clock import SimContext
from ..errors import NoSpaceError
from ..params import BLOCK_SIZE
from ..pm.device import PMDevice
from ..structures.extents import Extent
from .common.base import BaseFS
from .common.freespace import FreePool
from .common.inode import Inode

_LOG_ITEM_NS = 160.0
_LOG_BYTES_PER_ITEM = 256


class XfsDAX(BaseFS):
    name = "xfs-DAX"
    data_consistent = False
    fault_zero_fill = True

    def __init__(self, device: PMDevice, num_cpus: int = 4,
                 track_data: Optional[bool] = None) -> None:
        super().__init__(device, num_cpus, track_data=track_data)
        self._pools: List[FreePool] = []
        self._pending_items = 0
        self.log_forces = 0

    def _metadata_blocks(self) -> int:
        # AG headers land at an odd offset: the data area starts unaligned,
        # and since the allocator never corrects for alignment, no extent
        # it hands out is ever hugepage-mappable (footnote 1)
        return 4097

    def _init_allocator(self) -> None:
        # four allocation groups, carved sequentially
        data_blocks = self.total_blocks - self.meta_blocks
        groups = 4
        per_ag = data_blocks // groups
        self._pools = []
        for ag in range(groups):
            start = self.meta_blocks + ag * per_ag
            length = per_ag if ag < groups - 1 else \
                data_blocks - (groups - 1) * per_ag
            self._pools.append(FreePool(start, length))

    def _alloc(self, nblocks: int, ctx: SimContext, *,
               goal: Optional[int] = None,
               want_aligned: bool = False) -> List[Extent]:
        ctx.charge(90.0)   # btree lookups in the by-size tree
        out: List[Extent] = []
        remaining = nblocks
        cur_goal = goal
        pools = self._pools_for_goal(cur_goal)
        while remaining > 0:
            ext = None
            for pool in pools:
                ext = pool.alloc_first_fit(remaining, goal=cur_goal)
                if ext is not None:
                    break
            if ext is None:
                largest = max((p.largest() for p in self._pools), default=0)
                if largest == 0:
                    self._free(out, ctx)
                    raise NoSpaceError("xfs: no free blocks")
                for pool in self._pools:
                    if pool.largest() >= largest:
                        ext = pool.alloc_first_fit(min(largest, remaining))
                        break
                assert ext is not None
            out.append(ext)
            remaining -= ext.length
            cur_goal = ext.end
        return out

    def _pools_for_goal(self, goal: Optional[int]) -> List[FreePool]:
        if goal is None:
            return self._pools
        for i, pool in enumerate(self._pools):
            if pool.range_start <= goal < pool.range_end:
                return [pool] + [p for j, p in enumerate(self._pools)
                                 if j != i]
        return self._pools

    def _free(self, extents: List[Extent], ctx: SimContext) -> None:
        for ext in extents:
            for pool in self._pools:
                if pool.range_start <= ext.start < pool.range_end:
                    end = min(ext.end, pool.range_end)
                    pool.insert(Extent(ext.start, end - ext.start))
                    if ext.end > end:
                        self._free([Extent(end, ext.end - end)], ctx)
                    break

    @contextmanager
    def _meta_txn(self, ctx: SimContext, entries: int,
                  ino: Optional[int] = None) -> Iterator[None]:
        ctx.locks.atomic("xfs-log-item", ctx.cpu, _LOG_ITEM_NS)
        self._pending_items += entries
        yield

    def _force_log(self, ctx: SimContext) -> None:
        if self._pending_items:
            nbytes = self._pending_items * _LOG_BYTES_PER_ITEM + BLOCK_SIZE
            ns = self.machine.jbd2_commit_ns + self.machine.persist_ns(nbytes)
            ctx.locks.atomic("xfs-log", ctx.cpu, ns)
            ctx.counters.journal_ns += ns
            self._pending_items = 0
            self.log_forces += 1
        else:
            ctx.locks.atomic("xfs-log", ctx.cpu,
                             self.machine.jbd2_commit_ns / 4)

    def _write_data(self, inode: Inode, offset: int, data: bytes,
                    ctx: SimContext) -> None:
        ctx.charge(self.machine.persist_ns(len(data)))
        ctx.counters.pm_bytes_written += len(data)
        if self.track_data:
            pos = 0
            while pos < len(data):
                block = (offset + pos) // self.block_size
                within = (offset + pos) % self.block_size
                take = min(self.block_size - within, len(data) - pos)
                phys = inode.extents.physical_block(block)
                addr = phys * self.block_size + within
                self.device.store(addr, data[pos:pos + take])
                self.device.clwb(addr, take)
                pos += take
            self.device.sfence()

    def _fsync_impl(self, inode: Inode, ctx: SimContext) -> None:
        self._force_log(ctx)

    def unmount(self, ctx: SimContext) -> None:
        self._force_log(ctx)
        super().unmount(ctx)

    def _free_pools(self):
        return self._pools or None

    def _free_extent_iter(self) -> Iterator[Extent]:
        for pool in self._pools:
            yield from pool.extents()
