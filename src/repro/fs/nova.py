"""NOVA baseline (Xu & Swanson, FAST 2016) as characterized by the paper.

The properties the paper's comparisons depend on:

* **per-inode logs**: every inode owns a chain of 4KB log pages allocated
  from the data free lists.  This gives NOVA its excellent scalability
  (Fig 10) but peppers the free space with small metadata allocations —
  the free-space fragmentation of Fig 3 ("a per-file log contributes to
  file-system fragmentation").
* **log-structured metadata**: each operation appends a 64B log entry;
  overwrites additionally invalidate the older entry and update DRAM
  indexes (the Fig 6 / PostgreSQL overwrite penalty, §5.5).
* **copy-on-write data at 4KB granularity** (strict mode): every
  overwrite, and every append that lands inside a partially-filled block,
  copies the block to a fresh one (the WiredTiger write-amplification
  effect, §5.5).
* the allocator tries to hand out aligned extents only when the request is
  an exact multiple of 2MB (§6, Related Work); everything else is
  first-fit from per-CPU pools.
* **fallocate zeroes data pages eagerly**, so its page faults are cheaper
  than ext4-DAX's (§5.4, PmemKV analysis): ``fault_zero_fill = False``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from ..clock import SimContext
from ..errors import NoSpaceError
from ..params import BLOCKS_PER_HUGEPAGE
from ..pm.device import PMDevice
from ..structures.extents import Extent
from .common.base import BaseFS
from .common.freespace import FreePool
from .common.inode import Inode

_LOG_ENTRY_BYTES = 64
#: log entries per 4KB log page
_ENTRIES_PER_LOG_PAGE = 4096 // _LOG_ENTRY_BYTES
#: DRAM radix-tree update after each overwrite (§5.5)
_INDEX_UPDATE_NS = 250.0


class NovaFS(BaseFS):
    """``mode`` is "strict" (data+metadata CoW consistency, the default
    NOVA) or "relaxed" (metadata consistency only, NOVA-relaxed in §5.1)."""

    fault_zero_fill = False

    def __init__(self, device: PMDevice, num_cpus: int = 4,
                 mode: str = "strict",
                 track_data: Optional[bool] = None) -> None:
        super().__init__(device, num_cpus, track_data=track_data)
        self.mode = mode
        self.name = "NOVA" if mode == "strict" else "NOVA-relaxed"
        self.data_consistent = (mode == "strict")
        self._pools: List[FreePool] = []
        self._log_pages: dict = {}          # ino -> List[Extent]
        self._log_entries_used: dict = {}   # ino -> entries in last page
        self._pre_write_blocks: dict = {}   # ino -> blocks before extension
        self.log_pages_allocated = 0

    def _metadata_blocks(self) -> int:
        from ..structures.extents import align_up
        return align_up(2048)   # superblock + inode tables + recovery area

    def _init_allocator(self) -> None:
        data_blocks = self.total_blocks - self.meta_blocks
        per_cpu = data_blocks // self.num_cpus
        self._pools = []
        for cpu in range(self.num_cpus):
            start = self.meta_blocks + cpu * per_cpu
            length = per_cpu if cpu < self.num_cpus - 1 else \
                data_blocks - (self.num_cpus - 1) * per_cpu
            self._pools.append(FreePool(start, length))
        self._log_pages = {}
        self._log_entries_used = {}

    # -- allocation -----------------------------------------------------------------

    def _alloc(self, nblocks: int, ctx: SimContext, *,
               goal: Optional[int] = None,
               want_aligned: bool = False) -> List[Extent]:
        ctx.charge(70.0)
        home = ctx.cpu % self.num_cpus
        out: List[Extent] = []
        remaining = nblocks
        # NOVA only aims for alignment on exact 2MB-multiple requests
        exact_multiple = nblocks % BLOCKS_PER_HUGEPAGE == 0
        while remaining > 0:
            ext = None
            if exact_multiple and remaining >= BLOCKS_PER_HUGEPAGE:
                for pool in self._pool_order(home):
                    ext = pool.alloc_aligned_hugepage()
                    if ext is not None:
                        break
            if ext is None:
                # NOVA allocates per-CPU with a rotating cursor (next-fit)
                for pool in self._pool_order(home):
                    ext = pool.alloc_next_fit(remaining)
                    if ext is not None:
                        break
            if ext is None:
                largest = max((p.largest() for p in self._pools), default=0)
                if largest == 0:
                    self._free(out, ctx)
                    raise NoSpaceError("NOVA: no free blocks")
                for pool in self._pool_order(home):
                    if pool.largest() >= largest:
                        ext = pool.alloc_first_fit(largest)
                        break
                assert ext is not None
            out.append(ext)
            remaining -= ext.length
        return out

    def _pool_order(self, home: int) -> List[FreePool]:
        return [self._pools[home]] + [p for i, p in enumerate(self._pools)
                                      if i != home]

    def _free(self, extents: List[Extent], ctx: SimContext) -> None:
        for ext in extents:
            self._free_one(ext)

    def _free_one(self, extent: Extent) -> None:
        # return to the pool owning the address range
        for pool in self._pools:
            if pool.range_start <= extent.start < pool.range_end:
                end = min(extent.end, pool.range_end)
                pool.insert(Extent(extent.start, end - extent.start))
                if extent.end > end:
                    self._free_one(Extent(end, extent.end - end))
                return
        raise NoSpaceError(f"free of unknown block range {extent}")

    # -- per-inode log ------------------------------------------------------------------

    def _append_log_entry(self, ino: int, ctx: SimContext) -> None:
        used = self._log_entries_used.get(ino, _ENTRIES_PER_LOG_PAGE)
        if used >= _ENTRIES_PER_LOG_PAGE:
            # allocate a fresh 4KB log page from the data pools — this is
            # the fragmentation mechanism of Fig 3
            page = self._alloc(1, ctx)
            self._log_pages.setdefault(ino, []).extend(page)
            self._log_entries_used[ino] = 0
            self.log_pages_allocated += 1
        self._log_entries_used[ino] = self._log_entries_used.get(ino, 0) + 1
        ns = self.machine.persist_ns(_LOG_ENTRY_BYTES)
        ctx.charge(ns)
        ctx.counters.journal_ns += ns
        ctx.counters.pm_bytes_written += _LOG_ENTRY_BYTES

    def _invalidate_log_entry(self, ino: int, ctx: SimContext) -> None:
        # find the stale entry via the DRAM radix tree, then flip its
        # valid bit and flush ("NOVA has to ... invalidate older entries,
        # and update its DRAM indexes", §5.5)
        ctx.charge(150.0)
        ns = self.machine.persist_ns(8)
        ctx.charge(ns)
        ctx.counters.journal_ns += ns
        ctx.counters.pm_bytes_written += 8

    @contextmanager
    def _meta_txn(self, ctx: SimContext, entries: int,
                  ino: Optional[int] = None) -> Iterator[None]:
        log_ino = ino if ino is not None else 0
        for _ in range(max(1, entries // 2)):
            self._append_log_entry(log_ino, ctx)
        yield

    def _alloc_inode(self, is_dir: bool, ctx: SimContext) -> Inode:
        inode = super()._alloc_inode(is_dir, ctx)
        # every new inode gets its first log page immediately
        self._append_log_entry(inode.ino, ctx)
        return inode

    def _free_inode(self, inode: Inode, ctx=None) -> None:
        pages = self._log_pages.pop(inode.ino, [])
        for page in pages:
            self._free_one(page)
        self._log_entries_used.pop(inode.ino, None)
        super()._free_inode(inode, ctx)

    # -- data path ----------------------------------------------------------------------

    def _write_data(self, inode: Inode, offset: int, data: bytes,
                    ctx: SimContext) -> None:
        if self.mode == "relaxed":
            self._write_in_place(inode, offset, data, ctx)
            self._append_log_entry(inode.ino, ctx)
            return
        # strict: copy-on-write at 4KB granularity.  Any byte range that
        # shares a block with pre-existing data relocates that whole block.
        first = offset // self.block_size
        last = (offset + len(data) - 1) // self.block_size
        old_alloc_blocks = self._pre_write_blocks.get(inode.ino,
                                                      inode.extents.total_blocks)
        cow_first = first
        cow_last = min(last, old_alloc_blocks - 1)
        if cow_last >= cow_first:
            nblocks = cow_last - cow_first + 1
            new_extents = self._alloc(nblocks, ctx)
            head_pad = offset - cow_first * self.block_size
            cow_end_byte = min((cow_last + 1) * self.block_size,
                               offset + len(data))
            tail_pad = (cow_last + 1) * self.block_size - cow_end_byte
            copy_bytes = nblocks * self.block_size
            # partial-block copies: NOVA "copies the data in the partial
            # block to the new block and then appends new data" (§5.5)
            ctx.charge(self.machine.pm_read_ns(head_pad + tail_pad) +
                       self.machine.persist_ns(copy_bytes))
            ctx.counters.pm_bytes_written += copy_bytes
            if self.track_data:
                old = bytearray(self._read_blocks(inode, cow_first, nblocks))
                seg = data[:cow_end_byte - offset]
                old[head_pad:head_pad + len(seg)] = seg
                pos = 0
                for ext in new_extents:
                    take = ext.length * self.block_size
                    addr = ext.start * self.block_size
                    self.device.store(addr, bytes(old[pos:pos + take]))
                    self.device.clwb(addr, take)
                    pos += take
                self.device.sfence()
            old_extents = inode.extents.replace_logical(cow_first, new_extents)
            self._append_log_entry(inode.ino, ctx)
            self._invalidate_log_entry(inode.ino, ctx)
            ctx.charge(_INDEX_UPDATE_NS)
            self._free(old_extents, ctx)
            written = cow_end_byte - offset
        else:
            written = 0
        tail = data[written:]
        if tail:
            self._write_in_place(inode, offset + written, tail, ctx)
            self._append_log_entry(inode.ino, ctx)

    def _write_in_place(self, inode: Inode, offset: int, data: bytes,
                        ctx: SimContext) -> None:
        ctx.charge(self.machine.persist_ns(len(data)))
        ctx.counters.pm_bytes_written += len(data)
        if self.track_data:
            pos = 0
            while pos < len(data):
                block = (offset + pos) // self.block_size
                within = (offset + pos) % self.block_size
                take = min(self.block_size - within, len(data) - pos)
                phys = inode.extents.physical_block(block)
                addr = phys * self.block_size + within
                self.device.store(addr, data[pos:pos + take])
                self.device.clwb(addr, take)
                pos += take
            self.device.sfence()

    def _read_blocks(self, inode: Inode, first_block: int,
                     nblocks: int) -> bytes:
        chunks = []
        for ext in inode.extents.slice_logical(first_block, nblocks):
            chunks.append(self.device.load(ext.start * self.block_size,
                                           ext.length * self.block_size))
        return b"".join(chunks)

    def write(self, ino: int, offset: int, data: bytes, ctx: SimContext) -> int:
        self._check_mounted()
        self._check_writable()
        # remember the allocation size before BaseFS extends it, so the CoW
        # path can tell pre-existing blocks from freshly allocated ones
        inode = self._inode_for_data(ino)
        self._pre_write_blocks[ino] = inode.extents.total_blocks
        try:
            return super().write(ino, offset, data, ctx)
        finally:
            self._pre_write_blocks.pop(ino, None)

    def _fsync_impl(self, inode: Inode, ctx: SimContext) -> None:
        return   # all NOVA operations are synchronous

    def _free_pools(self):
        return self._pools or None

    def _free_extent_iter(self) -> Iterator[Extent]:
        for pool in self._pools:
            yield from pool.extents()
