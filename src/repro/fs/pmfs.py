"""PMFS baseline (Dulloor et al., EuroSys 2014) as characterized by the paper.

Decisive properties:

* **single fine-grained undo journal**: metadata transactions persist 64B
  entries under one brief global lock.  The hold time is one entry
  persist, so PMFS still scales reasonably on Fig 10's workload (§5.6:
  "PMFS scales well due to its fine-grained journaling"), unlike JBD2's
  stop-the-world commits.
* **no DRAM indexes**: directory lookups scan entries linearly on PM,
  the metadata-heavy-workload bottleneck of §5.5 (varmail).
* **no alignment awareness at all**: the allocator carves first-fit from a
  data area that starts just past an (unaligned) metadata region, so PMFS
  "does not get hugepages even in a clean file system setup" (§5.4 LMDB,
  footnote 1).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from ..clock import SimContext
from ..errors import NoSpaceError
from ..pm.device import PMDevice
from ..structures.extents import Extent
from .common.base import BaseFS
from .common.dirindex import LinearDirIndex
from .common.freespace import FreePool
from .common.inode import Inode

_JOURNAL_ENTRY_BYTES = 64


class PMFS(BaseFS):
    name = "PMFS"
    data_consistent = False
    fault_zero_fill = False
    dir_index_cls = LinearDirIndex

    def __init__(self, device: PMDevice, num_cpus: int = 4,
                 track_data: Optional[bool] = None) -> None:
        super().__init__(device, num_cpus, track_data=track_data)
        self._pool: Optional[FreePool] = None

    def _metadata_blocks(self) -> int:
        # deliberately NOT rounded to a hugepage boundary: PMFS's data area
        # starts misaligned, so no allocation is ever hugepage-aligned
        return 2049

    def _init_allocator(self) -> None:
        self._pool = FreePool(self.meta_blocks,
                              self.total_blocks - self.meta_blocks)

    def _alloc(self, nblocks: int, ctx: SimContext, *,
               goal: Optional[int] = None,
               want_aligned: bool = False) -> List[Extent]:
        assert self._pool is not None
        ctx.charge(60.0)
        out: List[Extent] = []
        remaining = nblocks
        while remaining > 0:
            ext = self._pool.alloc_first_fit(remaining)
            if ext is None:
                largest = self._pool.largest()
                if largest == 0:
                    self._free(out, ctx)
                    raise NoSpaceError("PMFS: no free blocks")
                ext = self._pool.alloc_first_fit(min(largest, remaining))
                assert ext is not None
            out.append(ext)
            remaining -= ext.length
        return out

    def _free(self, extents: List[Extent], ctx: SimContext) -> None:
        assert self._pool is not None
        for ext in extents:
            self._pool.insert(ext)

    @contextmanager
    def _meta_txn(self, ctx: SimContext, entries: int,
                  ino: Optional[int] = None) -> Iterator[None]:
        # one global journal, but only the tail *reservation* serializes
        # (an atomic fetch-add); the entry persists happen outside the
        # critical section — fine-grained journaling is why PMFS still
        # scales on Fig 10's workload (§5.6)
        ctx.locks.atomic("pmfs-journal", ctx.cpu, 30.0)  # tail fetch-add
        ns = self.machine.persist_ns(entries * _JOURNAL_ENTRY_BYTES)
        ctx.charge(ns)
        ctx.counters.journal_ns += ns
        try:
            yield
        finally:
            ctx.charge(self.machine.persist_ns(_JOURNAL_ENTRY_BYTES))

    def _write_data(self, inode: Inode, offset: int, data: bytes,
                    ctx: SimContext) -> None:
        ctx.charge(self.machine.persist_ns(len(data)))
        ctx.counters.pm_bytes_written += len(data)
        if self.track_data:
            pos = 0
            while pos < len(data):
                block = (offset + pos) // self.block_size
                within = (offset + pos) % self.block_size
                take = min(self.block_size - within, len(data) - pos)
                phys = inode.extents.physical_block(block)
                addr = phys * self.block_size + within
                self.device.store(addr, data[pos:pos + take])
                self.device.clwb(addr, take)
                pos += take
            self.device.sfence()

    def _fsync_impl(self, inode: Inode, ctx: SimContext) -> None:
        return   # PMFS metadata is synchronous; data is already flushed

    def _free_pools(self):
        return [self._pool] if self._pool is not None else None

    def _free_extent_iter(self) -> Iterator[Extent]:
        assert self._pool is not None
        yield from self._pool.extents()
