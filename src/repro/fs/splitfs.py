"""SplitFS baseline (Kadekodi et al., SOSP 2019) as characterized by the paper.

SplitFS splits the file system between a user-space library and ext4-DAX
underneath: data operations (especially appends) are served in user space
against memory-mapped staging files, and ``relink`` moves staged blocks
into the target file with an ext4 journal transaction at fsync time.

What matters for the paper's comparisons:

* appends skip the kernel (no syscall crossing) — SplitFS beats ext4-DAX
  on append-heavy workloads (Fig 6b, varmail);
* creates/deletes/fsyncs pass through to ext4-DAX and inherit the JBD2
  stop-the-world commit — SplitFS "inherits low scalability ... as it
  relies on ext4-DAX's JBD2 journal" (Fig 10, §5.5);
* the allocator is ext4's, so aged fragmentation behaviour (and hugepage
  loss) follows ext4-DAX (Table 2).
"""

from __future__ import annotations

from typing import Optional

from ..clock import SimContext
from ..pm.device import PMDevice
from .common.inode import Inode
from .ext4dax import Ext4DAX

#: user-space bookkeeping per staged append (no kernel crossing)
_STAGE_NS = 120.0


class SplitFS(Ext4DAX):
    name = "SplitFS"
    data_consistent = False

    def __init__(self, device: PMDevice, num_cpus: int = 4,
                 track_data: Optional[bool] = None) -> None:
        super().__init__(device, num_cpus, track_data=track_data)
        self._staged_bytes: dict = {}   # ino -> bytes awaiting relink
        self.relinks = 0

    def write(self, ino: int, offset: int, data: bytes, ctx: SimContext) -> int:
        self._check_mounted()
        self._check_writable()
        inode = self._inode_for_data(ino)
        if offset == inode.size and data:
            # append path: served from the user-space staging file; the
            # write lands on PM immediately but the syscall is avoided
            ctx.charge(_STAGE_NS)
            ctx.locks.acquire(self._ino_lock(ino), ctx.cpu)
            try:
                self._ensure_blocks(inode, offset + len(data), ctx)
                self._write_data(inode, offset, data, ctx)
                self._staged_bytes[ino] = self._staged_bytes.get(ino, 0) \
                    + len(data)
                inode.size = offset + len(data)
            finally:
                ctx.locks.release(self._ino_lock(ino), ctx.cpu)
            return len(data)
        return super().write(ino, offset, data, ctx)

    def _fsync_impl(self, inode: Inode, ctx: SimContext) -> None:
        staged = self._staged_bytes.pop(inode.ino, 0)
        if staged:
            # relink: an ext4 journal transaction swings the staged blocks
            # into the file — metadata only, no data copy
            with self._meta_txn(ctx, entries=4, ino=inode.ino):
                self._persist_inode(inode, ctx)
            self.relinks += 1
        self._commit_jbd2(ctx)
