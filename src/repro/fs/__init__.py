"""Baseline PM file systems the paper compares WineFS against.

Each baseline is re-implemented at the allocator/journal/log level so the
design property the paper credits or blames is real, not hard-coded:

* :mod:`repro.fs.ext4dax` — mballoc-style contiguity-first allocator,
  JBD2-like batched redo journal with stop-the-world commit on fsync.
* :mod:`repro.fs.nova` — log-structured: per-inode metadata logs allocated
  from free space (fragmenting it), CoW data at 4KB granularity.
* :mod:`repro.fs.pmfs` — single fine-grained undo journal, linear directory
  scans (no DRAM indexes).
* :mod:`repro.fs.xfsdax` — contiguity-focused allocator that disregards
  hugepage alignment entirely (paper footnote 1).
* :mod:`repro.fs.splitfs` — user-space append staging over ext4-DAX.
* :mod:`repro.fs.strata` — per-process log with digestion to a shared area.
"""

from .ext4dax import Ext4DAX
from .nova import NovaFS
from .pmfs import PMFS
from .xfsdax import XfsDAX
from .splitfs import SplitFS
from .strata import StrataFS

__all__ = ["Ext4DAX", "NovaFS", "PMFS", "XfsDAX", "SplitFS", "StrataFS"]
