"""Core data structures shared by the simulated file systems.

* :mod:`repro.structures.rbtree` — a red-black tree mirroring the Linux
  kernel's ``rb_tree`` that WineFS reuses for its unaligned-extent pool and
  directory indexes (paper §3.6).
* :mod:`repro.structures.extents` — extent arithmetic (split/merge/alignment).
* :mod:`repro.structures.stats` — percentile/CDF helpers for the latency
  figures.
"""

from .rbtree import RBTree
from .extents import Extent, ExtentList, align_down, align_up, is_aligned_extent
from .stats import LatencyRecorder, Summary, percentile

__all__ = [
    "RBTree",
    "Extent",
    "ExtentList",
    "align_down",
    "align_up",
    "is_aligned_extent",
    "LatencyRecorder",
    "Summary",
    "percentile",
]
