"""A sorted int-keyed map over parallel arrays.

Drop-in replacement for the :class:`~repro.structures.rbtree.RBTree` API
subset the free-space pools use.  The pools hold at most a few thousand
runs, and at that size C-implemented ``bisect``/``list`` operations (one
binary search plus one memmove) are several times faster than Python-level
tree rebalancing, while exposing identical ordered-map semantics: unique
keys, ascending iteration, floor/ceiling queries, replace-on-insert.

The RB-tree stays the honest structure for the directory indexes, whose
*lookup depth* is charged to the simulated clock; nothing observes a free
pool's internal shape, only its ordered contents.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator, List, Optional, Tuple


class SortedMap:
    """Ordered int-keyed map: O(log n) search, O(n) memmove mutation."""

    __slots__ = ("_keys", "_values")

    def __init__(self) -> None:
        self._keys: List[int] = []
        self._values: List[Any] = []

    # -- basic queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __contains__(self, key: int) -> bool:
        keys = self._keys
        i = bisect_left(keys, key)
        return i < len(keys) and keys[i] == key

    def get(self, key: int, default: Any = None) -> Any:
        keys = self._keys
        i = bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            return self._values[i]
        return default

    def __getitem__(self, key: int) -> Any:
        keys = self._keys
        i = bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            return self._values[i]
        raise KeyError(key)

    def min_item(self) -> Tuple[int, Any]:
        if not self._keys:
            raise KeyError("empty tree")
        return self._keys[0], self._values[0]

    def max_item(self) -> Tuple[int, Any]:
        if not self._keys:
            raise KeyError("empty tree")
        return self._keys[-1], self._values[-1]

    def floor_item(self, key: int) -> Optional[Tuple[int, Any]]:
        """Largest (k, v) with k <= key, or None."""
        i = bisect_right(self._keys, key) - 1
        if i < 0:
            return None
        return self._keys[i], self._values[i]

    def ceiling_item(self, key: int) -> Optional[Tuple[int, Any]]:
        """Smallest (k, v) with k >= key, or None."""
        keys = self._keys
        i = bisect_left(keys, key)
        if i >= len(keys):
            return None
        return keys[i], self._values[i]

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Ascending-key iteration."""
        return zip(self._keys, self._values)

    def keys(self) -> Iterator[int]:
        return iter(self._keys)

    def values(self) -> Iterator[Any]:
        return iter(self._values)

    # -- mutation --------------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert; an existing key has its value replaced."""
        keys = self._keys
        i = bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            self._values[i] = value
        else:
            keys.insert(i, key)
            self._values.insert(i, value)

    def __setitem__(self, key: int, value: Any) -> None:
        self.insert(key, value)

    def remove(self, key: int) -> Any:
        keys = self._keys
        i = bisect_left(keys, key)
        if i >= len(keys) or keys[i] != key:
            raise KeyError(key)
        del keys[i]
        value = self._values[i]
        del self._values[i]
        return value

    def __delitem__(self, key: int) -> None:
        self.remove(key)

    def pop_min(self) -> Tuple[int, Any]:
        if not self._keys:
            raise KeyError("empty tree")
        return self._keys.pop(0), self._values.pop(0)

    def clear(self) -> None:
        self._keys.clear()
        self._values.clear()

    # -- invariant check (used by property tests) --------------------------------

    def check_invariants(self) -> None:
        keys = self._keys
        assert len(keys) == len(self._values), "parallel arrays diverged"
        for i in range(1, len(keys)):
            assert keys[i - 1] < keys[i], "keys not strictly ascending"
