"""Array-backed free-run store: the SoA kernel behind :class:`FreePool`.

The per-object engine keeps a free pool's state in four ordered maps
(start tree, run index, two size indexes), so every carve or merge pays
del+insert against each of them — eight parallel lists of boxed pairs.
This store keeps one copy of the truth as flat parallel columns, sorted
by extent start::

    starts[i], lens[i], runs[i]     # extent i, ascending starts

plus three *derived* sorted-int indexes for the allocation policies:

    by_size     packed (length << 40 | start) keys, all extents
    holes       same packing, only extents with no aligned run
    run_starts  starts of extents containing >= 1 aligned 2MB run

Split and merge are binary-search + in-place column writes: carving the
front of a run is ``starts[i] += take; lens[i] -= take`` plus a pair of
size-key swaps — no tree node churn, no memmove of the columns.  The
derived indexes are canonical functions of the extent set, so any query
against them returns exactly what the per-object engine's maps return:
that is what keeps allocation *decisions* (and therefore ``sim_ns``)
bit-identical between engines.

Aggregates (``free_blocks``, ``total_runs``) are maintained
incrementally; ``statfs()`` reads them without walking anything.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterator, List, Optional, Tuple

from ..params import BLOCKS_PER_HUGEPAGE
from .extents import align_down, align_up

#: size-index keys pack (length, start) into one int; start < 2^40 covers
#: partitions up to 4 exabytes of 4KB blocks
START_BITS = 40
START_MASK = (1 << START_BITS) - 1


_B = BLOCKS_PER_HUGEPAGE


def runs_in(start: int, length: int) -> int:
    """Whole aligned hugepage runs inside a free run."""
    first = align_up(start)
    last = align_down(start + length)
    return max(0, (last - first) // BLOCKS_PER_HUGEPAGE)


def _runs_in_inline(start: int, length: int) -> int:
    # runs_in with align_up/align_down folded in (identical arithmetic);
    # the mutation kernels call this once per add/reshape
    end = start + length
    r = (end - end % _B - (start + _B - 1) // _B * _B) // _B
    return r if r > 0 else 0


class RunStore:
    """Sorted start/length/runs columns with binary-search split/merge."""

    __slots__ = ("starts", "lens", "runs", "by_size", "holes", "run_starts",
                 "total_runs", "free_blocks")

    def __init__(self) -> None:
        self.starts: List[int] = []
        self.lens: List[int] = []
        self.runs: List[int] = []
        self.by_size: List[int] = []
        self.holes: List[int] = []
        self.run_starts: List[int] = []
        self.total_runs = 0
        self.free_blocks = 0

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.starts)

    def items(self) -> Iterator[Tuple[int, int]]:
        """(start, length) in ascending start order."""
        return zip(self.starts, self.lens)

    def floor_index(self, block: int) -> int:
        """Index of the last extent with start <= *block*, or -1."""
        return bisect_right(self.starts, block) - 1

    def index_of(self, start: int) -> int:
        """Index of the extent that begins exactly at *start*."""
        i = bisect_left(self.starts, start)
        assert i < len(self.starts) and self.starts[i] == start, \
            f"no extent starts at {start}"
        return i

    def largest(self) -> int:
        return self.by_size[-1] >> START_BITS if self.by_size else 0

    def smallest_fitting(self, nblocks: int, *,
                         holes_only: bool = False) -> Optional[int]:
        """Index of the best-fit extent >= *nblocks* by (length, start)
        order — over pure holes only, or over all extents."""
        index = self.holes if holes_only else self.by_size
        j = bisect_left(index, nblocks << START_BITS)
        if j == len(index):
            return None
        return self.index_of(index[j] & START_MASK)

    # -- mutation kernels --------------------------------------------------------

    def add(self, start: int, length: int) -> int:
        """Insert a new extent; returns its column index."""
        i = bisect_left(self.starts, start)
        self.starts.insert(i, start)
        self.lens.insert(i, length)
        r = _runs_in_inline(start, length)
        self.runs.insert(i, r)
        key = (length << START_BITS) | start
        insort(self.by_size, key)
        if r:
            insort(self.run_starts, start)
            self.total_runs += r
        else:
            insort(self.holes, key)
        self.free_blocks += length
        return i

    def remove_at(self, i: int) -> None:
        start = self.starts.pop(i)
        length = self.lens.pop(i)
        r = self.runs.pop(i)
        key = (length << START_BITS) | start
        self._del_sorted(self.by_size, key)
        if r:
            self._del_sorted(self.run_starts, start)
            self.total_runs -= r
        else:
            self._del_sorted(self.holes, key)
        self.free_blocks -= length

    def reshape(self, i: int, new_start: int, new_len: int) -> None:
        """Replace extent *i* with (new_start, new_len) in place.

        The caller guarantees the new bounds keep the column sorted
        (every split/merge stays inside the gap between the neighbours),
        so only the derived indexes pay binary-search maintenance.
        """
        old_start = self.starts[i]
        old_len = self.lens[i]
        old_runs = self.runs[i]
        new_runs = _runs_in_inline(new_start, new_len)
        old_key = (old_len << START_BITS) | old_start
        new_key = (new_len << START_BITS) | new_start
        self._del_sorted(self.by_size, old_key)
        insort(self.by_size, new_key)
        if old_runs:
            if new_runs:
                if old_start != new_start:
                    self._del_sorted(self.run_starts, old_start)
                    insort(self.run_starts, new_start)
            else:
                self._del_sorted(self.run_starts, old_start)
                insort(self.holes, new_key)
        elif new_runs:
            self._del_sorted(self.holes, old_key)
            insort(self.run_starts, new_start)
        else:
            self._del_sorted(self.holes, old_key)
            insort(self.holes, new_key)
        self.starts[i] = new_start
        self.lens[i] = new_len
        self.runs[i] = new_runs
        self.total_runs += new_runs - old_runs
        self.free_blocks += new_len - old_len

    @staticmethod
    def _del_sorted(keys: List[int], key: int) -> None:
        i = bisect_left(keys, key)
        assert i < len(keys) and keys[i] == key, f"index key {key} missing"
        del keys[i]

    # -- invariants (property tests) ---------------------------------------------

    def check_invariants(self) -> None:
        n = len(self.starts)
        assert len(self.lens) == n and len(self.runs) == n, \
            "parallel columns diverged"
        total = 0
        truns = 0
        keys = []
        holes = []
        rstarts = []
        prev_end = None
        for i in range(n):
            start, length, r = self.starts[i], self.lens[i], self.runs[i]
            assert length > 0
            if prev_end is not None:
                assert start > prev_end, "extents overlap or not sorted"
            prev_end = start + length
            assert r == runs_in(start, length), "run column drift"
            total += length
            truns += r
            key = (length << START_BITS) | start
            keys.append(key)
            if r:
                rstarts.append(start)
            else:
                holes.append(key)
        assert sorted(keys) == self.by_size, "size index drift"
        assert sorted(holes) == self.holes, "hole index drift"
        assert rstarts == self.run_starts, "run-start index drift"
        assert total == self.free_blocks, "free block accounting drift"
        assert truns == self.total_runs, "aligned-run accounting drift"
