"""A red-black tree keyed by integers.

WineFS reuses the Linux kernel's red-black tree to track free unaligned
extents per logical CPU, keyed by block offset (paper §3.6), and uses
RB-trees for directory-entry indexes and inode free lists in DRAM (§3.5).
This module provides the equivalent structure with ordered iteration,
floor/ceiling queries, and first-fit search support.

The tree maps ``int`` keys to arbitrary values.  Keys are unique; inserting
an existing key replaces its value.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "left", "right", "parent", "color")

    def __init__(self, key: int, value: Any, parent: Optional["_Node"]) -> None:
        self.key = key
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.parent = parent
        self.color = RED


class RBTree:
    """Ordered int-keyed map with O(log n) insert/delete/search."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0

    # -- basic queries -------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: int) -> bool:
        return self._find(key) is not None

    def get(self, key: int, default: Any = None) -> Any:
        node = self._find(key)
        return node.value if node is not None else default

    def __getitem__(self, key: int) -> Any:
        node = self._find(key)
        if node is None:
            raise KeyError(key)
        return node.value

    def min_item(self) -> Tuple[int, Any]:
        if self._root is None:
            raise KeyError("empty tree")
        node = self._min_node(self._root)
        return node.key, node.value

    def max_item(self) -> Tuple[int, Any]:
        if self._root is None:
            raise KeyError("empty tree")
        node = self._root
        while node.right is not None:
            node = node.right
        return node.key, node.value

    def floor_item(self, key: int) -> Optional[Tuple[int, Any]]:
        """Largest (k, v) with k <= key, or None."""
        node, best = self._root, None
        while node is not None:
            if node.key == key:
                return node.key, node.value
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        return (best.key, best.value) if best else None

    def ceiling_item(self, key: int) -> Optional[Tuple[int, Any]]:
        """Smallest (k, v) with k >= key, or None."""
        node, best = self._root, None
        while node is not None:
            if node.key == key:
                return node.key, node.value
            if node.key > key:
                best = node
                node = node.left
            else:
                node = node.right
        return (best.key, best.value) if best else None

    def items(self) -> Iterator[Tuple[int, Any]]:
        """In-order iteration (ascending key)."""
        stack, node = [], self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[int]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[Any]:
        for _, v in self.items():
            yield v

    # -- mutation --------------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        parent, node = None, self._root
        while node is not None:
            parent = node
            if key == node.key:
                node.value = value
                return
            node = node.left if key < node.key else node.right
        new = _Node(key, value, parent)
        if parent is None:
            self._root = new
        elif key < parent.key:
            parent.left = new
        else:
            parent.right = new
        self._size += 1
        self._fix_insert(new)

    def __setitem__(self, key: int, value: Any) -> None:
        self.insert(key, value)

    def remove(self, key: int) -> Any:
        node = self._find(key)
        if node is None:
            raise KeyError(key)
        value = node.value
        self._delete(node)
        self._size -= 1
        return value

    def __delitem__(self, key: int) -> None:
        self.remove(key)

    def pop_min(self) -> Tuple[int, Any]:
        k, v = self.min_item()
        self.remove(k)
        return k, v

    def clear(self) -> None:
        self._root = None
        self._size = 0

    # -- internals ---------------------------------------------------------------

    def _find(self, key: int) -> Optional[_Node]:
        node = self._root
        while node is not None:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    @staticmethod
    def _min_node(node: _Node) -> _Node:
        while node.left is not None:
            node = node.left
        return node

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        assert y is not None
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        assert y is not None
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _fix_insert(self, z: _Node) -> None:
        while z.parent is not None and z.parent.color == RED:
            gp = z.parent.parent
            assert gp is not None
            if z.parent is gp.left:
                uncle = gp.right
                if uncle is not None and uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK      # type: ignore[union-attr]
                    gp.color = RED
                    self._rotate_right(gp)
            else:
                uncle = gp.left
                if uncle is not None and uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK      # type: ignore[union-attr]
                    gp.color = RED
                    self._rotate_left(gp)
        assert self._root is not None
        self._root.color = BLACK

    def _transplant(self, u: _Node, v: Optional[_Node]) -> None:
        if u.parent is None:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        if v is not None:
            v.parent = u.parent

    def _delete(self, z: _Node) -> None:
        y = z
        y_color = y.color
        if z.left is None:
            x, x_parent = z.right, z.parent
            self._transplant(z, z.right)
        elif z.right is None:
            x, x_parent = z.left, z.parent
            self._transplant(z, z.left)
        else:
            y = self._min_node(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x_parent = y
            else:
                x_parent = y.parent
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_color == BLACK:
            self._fix_delete(x, x_parent)

    def _fix_delete(self, x: Optional[_Node], parent: Optional[_Node]) -> None:
        while x is not self._root and (x is None or x.color == BLACK):
            if parent is None:
                break
            if x is parent.left:
                w = parent.right
                if w is not None and w.color == RED:
                    w.color = BLACK
                    parent.color = RED
                    self._rotate_left(parent)
                    w = parent.right
                if w is None:
                    x, parent = parent, parent.parent
                    continue
                w_left_black = w.left is None or w.left.color == BLACK
                w_right_black = w.right is None or w.right.color == BLACK
                if w_left_black and w_right_black:
                    w.color = RED
                    x, parent = parent, parent.parent
                else:
                    if w_right_black:
                        if w.left is not None:
                            w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = parent.right
                    assert w is not None
                    w.color = parent.color
                    parent.color = BLACK
                    if w.right is not None:
                        w.right.color = BLACK
                    self._rotate_left(parent)
                    x = self._root
                    parent = None
            else:
                w = parent.left
                if w is not None and w.color == RED:
                    w.color = BLACK
                    parent.color = RED
                    self._rotate_right(parent)
                    w = parent.left
                if w is None:
                    x, parent = parent, parent.parent
                    continue
                w_left_black = w.left is None or w.left.color == BLACK
                w_right_black = w.right is None or w.right.color == BLACK
                if w_left_black and w_right_black:
                    w.color = RED
                    x, parent = parent, parent.parent
                else:
                    if w_left_black:
                        if w.right is not None:
                            w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = parent.left
                    assert w is not None
                    w.color = parent.color
                    parent.color = BLACK
                    if w.left is not None:
                        w.left.color = BLACK
                    self._rotate_right(parent)
                    x = self._root
                    parent = None
        if x is not None:
            x.color = BLACK

    # -- invariant check (used by property tests) --------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if red-black invariants are violated."""
        if self._root is None:
            return
        assert self._root.color == BLACK, "root must be black"

        def walk(node: Optional[_Node], lo: float, hi: float) -> int:
            if node is None:
                return 1
            assert lo < node.key < hi, "BST order violated"
            if node.color == RED:
                for child in (node.left, node.right):
                    assert child is None or child.color == BLACK, \
                        "red node has red child"
            lb = walk(node.left, lo, node.key)
            rb = walk(node.right, node.key, hi)
            assert lb == rb, "black-height mismatch"
            return lb + (1 if node.color == BLACK else 0)

        walk(self._root, float("-inf"), float("inf"))
