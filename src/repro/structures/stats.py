"""Statistics helpers for latency figures and throughput tables.

The paper reports medians, 90th percentiles and full CDFs (Figs 4, 8).
These helpers keep raw samples (the figure experiments produce at most a
few hundred thousand) and compute the summaries the harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


def percentile(samples: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile; pct in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    return percentile_sorted(sorted(samples), pct)


def percentile_sorted(data: Sequence[float], pct: float) -> float:
    """:func:`percentile` over already-sorted *data* (no re-sort)."""
    if not data:
        raise ValueError("no samples")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} out of range")
    if len(data) == 1:
        return data[0]
    rank = pct / 100.0 * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1 - frac) + data[hi] * frac


@dataclass
class Summary:
    count: int
    mean: float
    median: float
    p90: float
    p99: float
    minimum: float
    maximum: float
    #: tail percentile the SLO reports grade against; defaulted so older
    #: positional constructions keep working
    p999: float = 0.0

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.1f} p50={self.median:.1f} "
                f"p90={self.p90:.1f} p99={self.p99:.1f} "
                f"p999={self.p999:.1f} "
                f"min={self.minimum:.1f} max={self.maximum:.1f}")

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Summary":
        """Build a summary with exactly one sort over the samples.

        ``percentile`` re-sorts on every call (O(n log n) each); this is
        the path every summary producer should use.
        """
        data = sorted(samples)
        if not data:
            raise ValueError("no samples")
        return cls(
            count=len(data),
            mean=sum(data) / len(data),
            median=percentile_sorted(data, 50),
            p90=percentile_sorted(data, 90),
            p99=percentile_sorted(data, 99),
            minimum=data[0],
            maximum=data[-1],
            p999=percentile_sorted(data, 99.9),
        )


class LatencyRecorder:
    """Collects latency samples (ns) and produces summaries and CDFs."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, ns: float) -> None:
        if ns < 0:
            raise ValueError("negative latency")
        self._samples.append(ns)

    def extend(self, samples: Iterable[float]) -> None:
        for s in samples:
            self.record(s)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def summary(self) -> Summary:
        return Summary.from_samples(self._samples)

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) pairs suitable for plotting."""
        if not self._samples:
            raise ValueError("no samples recorded")
        data = sorted(self._samples)
        n = len(data)
        out: List[Tuple[float, float]] = []
        for i in range(points + 1):
            frac = i / points
            idx = min(n - 1, int(frac * (n - 1)))
            out.append((data[idx], frac))
        return out


def throughput_mb_s(nbytes: int, elapsed_ns: float) -> float:
    """Bandwidth in MB/s from bytes moved and simulated nanoseconds."""
    if elapsed_ns <= 0:
        raise ValueError("elapsed time must be positive")
    return nbytes / (elapsed_ns / 1e9) / 1e6


def ops_per_sec(ops: int, elapsed_ns: float) -> float:
    if elapsed_ns <= 0:
        raise ValueError("elapsed time must be positive")
    return ops / (elapsed_ns / 1e9)


def normalize(values: Dict[str, float], baseline: str) -> Dict[str, float]:
    """Express each value relative to *baseline* (as the paper's figures do)."""
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} not in values")
    base = values[baseline]
    if base == 0:
        raise ValueError("baseline value is zero")
    return {k: v / base for k, v in values.items()}
