"""Extent arithmetic.

An extent is a run of contiguous 4KB blocks, identified by its starting
block number and length in blocks.  Alignment throughout the library means
*hugepage alignment*: an extent can back a 2MB mapping only if it starts on
a 512-block boundary and covers at least 512 blocks (paper §2.2: "the
underlying file must be placed on 2MB aligned physical blocks and must not
be fragmented").
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from ..params import BLOCKS_PER_HUGEPAGE


def align_down(block: int, alignment: int = BLOCKS_PER_HUGEPAGE) -> int:
    return block - (block % alignment)


def align_up(block: int, alignment: int = BLOCKS_PER_HUGEPAGE) -> int:
    return (block + alignment - 1) // alignment * alignment


@dataclass(frozen=True, order=True)
class Extent:
    """A contiguous run of blocks: [start, start + length)."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.length <= 0:
            raise ValueError(f"invalid extent ({self.start}, {self.length})")

    @property
    def end(self) -> int:
        """One past the last block."""
        return self.start + self.length

    @property
    def is_hugepage_aligned(self) -> bool:
        """True if this extent starts on a hugepage boundary and spans one."""
        return (self.start % BLOCKS_PER_HUGEPAGE == 0
                and self.length >= BLOCKS_PER_HUGEPAGE)

    def hugepage_runs(self) -> int:
        """How many whole aligned hugepages fit inside this extent."""
        first = align_up(self.start)
        last = align_down(self.end)
        return max(0, (last - first) // BLOCKS_PER_HUGEPAGE)

    def contains(self, block: int) -> bool:
        return self.start <= block < self.end

    def overlaps(self, other: "Extent") -> bool:
        return self.start < other.end and other.start < self.end

    def adjacent_to(self, other: "Extent") -> bool:
        return self.end == other.start or other.end == self.start

    def split_at(self, block: int) -> Tuple["Extent", "Extent"]:
        """Split into [start, block) and [block, end)."""
        if not self.start < block < self.end:
            raise ValueError(f"split point {block} outside {self}")
        return (Extent(self.start, block - self.start),
                Extent(block, self.end - block))

    def take(self, nblocks: int, from_end: bool = False) -> Tuple["Extent", "Extent | None"]:
        """Carve *nblocks* off this extent; returns (taken, remainder)."""
        if not 0 < nblocks <= self.length:
            raise ValueError(f"cannot take {nblocks} from {self}")
        if nblocks == self.length:
            return self, None
        if from_end:
            return (Extent(self.end - nblocks, nblocks),
                    Extent(self.start, self.length - nblocks))
        return (Extent(self.start, nblocks),
                Extent(self.start + nblocks, self.length - nblocks))

    def merge(self, other: "Extent") -> "Extent":
        if not self.adjacent_to(other):
            raise ValueError(f"{self} and {other} are not adjacent")
        start = min(self.start, other.start)
        return Extent(start, self.length + other.length)

    def blocks(self) -> Iterator[int]:
        return iter(range(self.start, self.end))

    def __repr__(self) -> str:
        return f"Extent({self.start}, +{self.length})"


class ExtentList:
    """An ordered, non-overlapping list of extents (a file's block map).

    Supports append, truncate, lookup by logical block, and fragmentation
    metrics.  Logical order is list order: extent *i* holds the file's
    logical blocks after the extents before it.
    """

    def __init__(self, extents: Iterable[Extent] = ()) -> None:
        self._extents: List[Extent] = []
        #: lazy index: _starts[i] is the logical block where extent i
        #: begins; _total is the block count.  Both are built together on
        #: demand and dropped together by _invalidate().
        self._starts: Optional[List[int]] = None
        self._total: Optional[int] = None
        #: lazy immutable snapshot; identity answers "unchanged since?"
        self._tuple: Optional[Tuple[Extent, ...]] = None
        for ext in extents:
            self.append(ext)

    def __len__(self) -> int:
        return len(self._extents)

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)

    def __getitem__(self, i: int) -> Extent:
        return self._extents[i]

    def _invalidate(self) -> None:
        self._starts = None
        self._total = None
        self._tuple = None

    def as_tuple(self) -> Tuple[Extent, ...]:
        """Immutable snapshot of the extents; cached until the list
        changes, so unchanged lists return the *same* object."""
        t = self._tuple
        if t is None:
            t = self._tuple = tuple(self._extents)
        return t

    def _index(self) -> List[int]:
        starts: List[int] = []
        acc = 0
        for e in self._extents:
            starts.append(acc)
            acc += e.length
        self._starts = starts
        self._total = acc
        return starts

    @property
    def total_blocks(self) -> int:
        if self._total is None:
            self._index()
        return self._total

    def append(self, extent: Extent) -> None:
        """Add an extent at the logical end, coalescing if contiguous."""
        if self._extents and self._extents[-1].end == extent.start:
            last = self._extents[-1]
            self._extents[-1] = Extent(last.start, last.length + extent.length)
            # same extent count, same logical starts: index stays valid
        else:
            if self._starts is not None:
                self._starts.append(self._total)
            self._extents.append(extent)
        if self._total is not None:
            self._total += extent.length
        self._tuple = None

    def physical_block(self, logical_block: int) -> int:
        """Map a logical file block to its physical block number."""
        starts = self._starts
        if starts is None:
            starts = self._index()
        i = bisect_right(starts, logical_block) - 1
        if i >= 0:
            ext = self._extents[i]
            within = logical_block - starts[i]
            if within < ext.length:
                return ext.start + within
        raise IndexError(f"logical block {logical_block} beyond file "
                         f"({self.total_blocks} blocks)")

    def slice_logical(self, logical_start: int, nblocks: int) -> List[Extent]:
        """Physical extents covering logical [logical_start, +nblocks)."""
        if nblocks <= 0:
            if nblocks == 0:
                return []
            raise IndexError("slice beyond end of file")
        starts = self._starts
        if starts is None:
            starts = self._index()
        i = bisect_right(starts, logical_start) - 1
        out: List[Extent] = []
        remaining = nblocks
        pos = logical_start
        if i >= 0:
            extents = self._extents
            nex = len(extents)
            while remaining > 0 and i < nex:
                ext = extents[i]
                within = pos - starts[i]
                if within >= ext.length:
                    break
                take = min(ext.length - within, remaining)
                out.append(Extent(ext.start + within, take))
                remaining -= take
                pos += take
                i += 1
        if remaining:
            raise IndexError("slice beyond end of file")
        return out

    def truncate_blocks(self, keep_blocks: int) -> List[Extent]:
        """Shrink to *keep_blocks*; returns the freed physical extents."""
        if keep_blocks >= self.total_blocks:
            return []
        freed: List[Extent] = []
        kept: List[Extent] = []
        remaining = keep_blocks
        for ext in self._extents:
            if remaining >= ext.length:
                kept.append(ext)
                remaining -= ext.length
            elif remaining > 0:
                head, tail = ext.take(remaining)
                kept.append(head)
                if tail is not None:
                    freed.append(tail)
                remaining = 0
            else:
                freed.append(ext)
        self._extents = kept
        self._invalidate()
        return freed

    def replace_logical(self, logical_start: int, new_extents: List[Extent]) -> List[Extent]:
        """Replace the physical blocks backing a logical range (CoW commit).

        Returns the old physical extents that were displaced.  The
        replacement must cover exactly ``sum(e.length for e in new_extents)``
        logical blocks starting at *logical_start*, all within the file.
        """
        nblocks = sum(e.length for e in new_extents)
        old = self.slice_logical(logical_start, nblocks)
        rebuilt = ExtentList()
        pos = 0
        for ext in self._extents:
            ext_lstart, ext_lend = pos, pos + ext.length
            pos = ext_lend
            repl_start, repl_end = logical_start, logical_start + nblocks
            if ext_lend <= repl_start or ext_lstart >= repl_end:
                rebuilt.append(ext)
                continue
            if ext_lstart < repl_start:
                rebuilt.append(Extent(ext.start, repl_start - ext_lstart))
            if ext_lstart <= repl_start < ext_lend or \
               (repl_start <= ext_lstart < repl_end):
                # insert replacements once, at the point the range begins
                if ext_lstart <= repl_start:
                    for ne in new_extents:
                        rebuilt.append(ne)
            if ext_lend > repl_end:
                offset_in_ext = repl_end - ext_lstart
                rebuilt.append(Extent(ext.start + offset_in_ext,
                                      ext_lend - repl_end))
        self._extents = rebuilt._extents
        self._invalidate()
        return old

    # -- fragmentation metrics ---------------------------------------------------

    def mappable_hugepages(self) -> int:
        """How many 2MB mappings this file layout supports.

        A hugepage mapping needs logical and physical alignment to coincide:
        logical offset L (in blocks) must be hugepage-aligned AND map to a
        physically hugepage-aligned block, with 512 contiguous blocks.
        """
        count = 0
        logical = 0
        for ext in self._extents:
            # logical block of each aligned physical hugepage inside ext
            first_phys = align_up(ext.start)
            while first_phys + BLOCKS_PER_HUGEPAGE <= ext.end:
                logical_here = logical + (first_phys - ext.start)
                if logical_here % BLOCKS_PER_HUGEPAGE == 0:
                    count += 1
                first_phys += BLOCKS_PER_HUGEPAGE
            logical += ext.length
        return count

    def fragmentation_score(self) -> float:
        """0.0 = perfectly hugepage-mappable, 1.0 = nothing mappable."""
        total = self.total_blocks
        if total < BLOCKS_PER_HUGEPAGE:
            return 0.0
        possible = total // BLOCKS_PER_HUGEPAGE
        return 1.0 - self.mappable_hugepages() / possible


def is_aligned_extent(start: int, length: int) -> bool:
    """True if (start, length) denotes a whole aligned hugepage run."""
    return start % BLOCKS_PER_HUGEPAGE == 0 and length >= BLOCKS_PER_HUGEPAGE
