"""Pickle-free object-graph codec for simulation snapshots.

Serializes the complete state of an aged file system — device sparse
pages, page tables, allocator pools, journal, inode table, clocks,
metrics — as a tagged binary stream that can be restored bit-identically:
floats round-trip as their exact IEEE-754 bytes, dict insertion order is
preserved, and shared references (e.g. the registry Counter handles that
EventCounters properties write through) come back as shared references.

Unlike pickle, nothing in the stream can execute code on load: only
classes explicitly whitelisted from ``repro``'s own modules may appear,
and instances are rebuilt with ``cls.__new__`` + attribute fills, never
``__reduce__``.  Any object the codec does not understand (callables,
RNGs, open handles, foreign classes) raises :class:`SnapshotUnsupported`
at *encode* time, so callers fall back to recomputing instead of caching
a lie.

Identity rules (what makes restore bit-identical, not just equal):

- Mutable objects (instances, list/dict/set/bytearray) are memoized
  pre-order by ``id()``, so cycles (``RewriteQueue._fs`` → fs) and shared
  handles decode to the same object graph shape.
- Tuples are memoized post-order (they must be built from their elements)
  with an in-progress guard: a cycle routed through a tuple is
  unsupported rather than an infinite loop.
- Dicts decode in encode order, so iteration-order-dependent float
  accumulation replays identically.  Sets are encoded in sorted order to
  keep the stream deterministic.

Format v2 (the default) adds a *columnar fast path* on top of the v1
tagged stream.  Homogeneous containers are encoded in bulk instead of
tag-by-tag:

- lists/tuples whose elements are all plain ints in int64 range become
  one struct-packed ``<q`` vector (``_T_INTLIST`` / ``_T_INTTUPLE``);
- flat ``int -> int`` dicts (page tables, run columns) become one packed
  key/value vector (``_T_INTDICT``), decode order preserved;
- scattered ints (instance attributes, mixed containers) become a
  zigzag varint (``_T_VINT``) instead of the length-prefixed v1 form —
  they are the single most common node in an aged image;
- strings are interned: the first occurrence registers into a stream
  string table (``_T_ISTR``), repeats are a varint back-reference
  (``_T_SREF``) — path, name, and lock-key strings repeat heavily;
- instances share *shapes*: the attribute-name tuple of each class state
  is registered once (``_T_OBJECT2``), so the ~5 repeated names per
  instance collapse to a single shape id.

Every v2 bulk form is an opportunistic rewrite of a v1 form with the
exact same memoization position (bulk elements are scalars, which are
never memoized), so shared-ref numbering is identical and anything that
does not qualify falls back to the v1 tagged path — fail-closed, same
``SnapshotUnsupported`` semantics.  ``decode`` understands both formats;
``encode(root, version=1)`` still produces a pure v1 stream.
"""

from __future__ import annotations

import inspect
import struct
import sys
from array import array
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..errors import SimulationError

__all__ = ["SnapshotUnsupported", "SnapshotDecodeError", "CODEC_VERSIONS",
           "encode", "decode"]


class SnapshotUnsupported(SimulationError):
    """The object graph contains state the codec refuses to serialize."""


class SnapshotDecodeError(SimulationError):
    """The stream is corrupt, truncated, or names unknown classes."""


# -- tag bytes ---------------------------------------------------------------

_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"
_T_FLOAT = b"d"
_T_STR = b"s"
_T_BYTES = b"b"
_T_BYTEARRAY = b"y"
_T_ARRAY = b"a"
_T_LIST = b"l"
_T_TUPLE = b"t"
_T_DICT = b"D"
_T_ODICT = b"O"
_T_SET = b"S"
_T_FROZENSET = b"Z"
_T_REF = b"r"
_T_OBJECT = b"o"
_T_SINGLETON = b"G"

# -- v2 columnar tags (see module docstring) --
_T_INTLIST = b"L"
_T_INTTUPLE = b"U"
_T_INTDICT = b"M"
_T_ISTR = b"I"
_T_SREF = b"R"
_T_OBJECT2 = b"P"
_T_VINT = b"v"

# integer tag values for the decoder: comparing small ints beats slicing
# a one-byte ``bytes`` per node on the decode hot path
(_B_NONE, _B_TRUE, _B_FALSE, _B_INT, _B_FLOAT, _B_STR, _B_BYTES,
 _B_BYTEARRAY, _B_ARRAY, _B_LIST, _B_TUPLE, _B_DICT, _B_ODICT, _B_SET,
 _B_FROZENSET, _B_REF, _B_OBJECT, _B_SINGLETON, _B_INTLIST, _B_INTTUPLE,
 _B_INTDICT, _B_ISTR, _B_SREF, _B_OBJECT2, _B_VINT) = (
    tag[0] for tag in (
        _T_NONE, _T_TRUE, _T_FALSE, _T_INT, _T_FLOAT, _T_STR, _T_BYTES,
        _T_BYTEARRAY, _T_ARRAY, _T_LIST, _T_TUPLE, _T_DICT, _T_ODICT,
        _T_SET, _T_FROZENSET, _T_REF, _T_OBJECT, _T_SINGLETON, _T_INTLIST,
        _T_INTTUPLE, _T_INTDICT, _T_ISTR, _T_SREF, _T_OBJECT2, _T_VINT))

#: stream format versions :func:`encode` accepts
CODEC_VERSIONS = (1, 2)

#: zigzag varints qualify for ints in (-2^62, 2^62): the encoded value
#: stays within the decoder's 70-bit varint guard with room to spare
_VINT_BOUND = 1 << 62

_F64 = struct.Struct("<d")

# graphs nest through dataclass attributes and RB-tree children; depth is
# bounded (tree height ~2 log n) but comfortably exceeds the default limit
_RECURSION_LIMIT = 50_000


def _write_uvarint(out: List[bytes], value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise SnapshotDecodeError("truncated snapshot stream")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def uvarint(self) -> int:
        shift = 0
        value = 0
        data, pos = self.data, self.pos
        while True:
            if pos >= len(data):
                raise SnapshotDecodeError("truncated varint")
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self.pos = pos
                return value
            shift += 7
            if shift > 70:
                raise SnapshotDecodeError("varint too long")


# -- class whitelist ---------------------------------------------------------

#: modules whose classes may appear in a snapshot.  Everything the aged
#: (fs, ctx) graph can reach must be defined in one of these; transient
#: helper classes defined here but never reached are harmless.
_MODULE_WHITELIST = (
    "repro.clock",
    "repro.params",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.pm.device",
    "repro.pm.numa",
    "repro.pm.zeros",
    "repro.mmu.page_table",
    "repro.mmu.tlb",
    "repro.mmu.cache",
    "repro.mmu.mmap_region",
    "repro.core.filesystem",
    "repro.core.layout",
    "repro.core.allocator",
    "repro.core.journal",
    "repro.core.rewrite",
    "repro.core.numa_policy",
    "repro.structures.extents",
    "repro.structures.runstore",
    "repro.structures.sortedmap",
    "repro.structures.rbtree",
    "repro.structures.stats",
    "repro.fs.common.base",
    "repro.fs.common.inode",
    "repro.fs.common.freespace",
    "repro.fs.common.dirindex",
    "repro.fs.ext4dax",
    "repro.fs.nova",
    "repro.fs.pmfs",
    "repro.fs.splitfs",
    "repro.fs.strata",
    "repro.fs.xfsdax",
    "repro.vfs.interface",
    "repro.aging.profiles",
)

_whitelist: Optional[Dict[str, type]] = None


def _class_whitelist() -> Dict[str, type]:
    global _whitelist
    if _whitelist is None:
        import importlib

        table: Dict[str, type] = {}
        for modname in _MODULE_WHITELIST:
            module = importlib.import_module(modname)
            for _, cls in inspect.getmembers(module, inspect.isclass):
                if cls.__module__ == modname:
                    table[f"{modname}:{cls.__qualname__}"] = cls
        _whitelist = table
    return _whitelist


def _class_tag(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _slot_names(cls: type) -> List[str]:
    names: List[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name not in ("__dict__", "__weakref__"):
                names.append(name)
    return names


def _default_get_state(obj: Any) -> List[Tuple[str, Any]]:
    state: List[Tuple[str, Any]] = []
    for name in _slot_names(type(obj)):
        try:
            state.append((name, getattr(obj, name)))
        except AttributeError:
            pass  # unset slot
    if hasattr(obj, "__dict__"):
        state.extend(obj.__dict__.items())
    return state


# -- per-class state filters -------------------------------------------------

def _metrics_registry_state(registry: Any) -> List[Tuple[str, Any]]:
    """Drop callback-backed gauges; they close over live objects.

    The harness re-creates them after restore (``device.bind_metrics``),
    so the decoded registry must not contain stale series for them —
    ``_series_per_name`` is recomputed over the kept set so the re-created
    gauges land exactly where a fresh run puts them.
    """
    from ..obs.metrics import Gauge

    kept = {key: metric for key, metric in registry._metrics.items()
            if not (isinstance(metric, Gauge) and metric._fn is not None)}
    per_name: Dict[str, int] = {}
    for name, _labels in kept:
        per_name[name] = per_name.get(name, 0) + 1
    return [("_metrics", kept), ("_series_per_name", per_name),
            ("max_series_per_name", registry.max_series_per_name)]


def _gauge_state(gauge: Any) -> List[Tuple[str, Any]]:
    if gauge._fn is not None:
        raise SnapshotUnsupported(
            f"callback-backed gauge {gauge.series} reached the codec")
    return _default_get_state(gauge)


def _state_filters() -> Dict[type, Callable[[Any], List[Tuple[str, Any]]]]:
    from ..obs.metrics import Gauge, MetricsRegistry

    return {MetricsRegistry: _metrics_registry_state, Gauge: _gauge_state}


def _singletons() -> List[Any]:
    """Module-level singletons restored by identity, never by value."""
    from ..obs.trace import NULL_TRACER

    return [NULL_TRACER]


# -- encoder -----------------------------------------------------------------

class _Encoder:
    def __init__(self, version: int = 2) -> None:
        self.out: List[bytes] = []
        self.memo: Dict[int, int] = {}
        self.memo_next = 0
        self.in_progress: set = set()
        self.class_ids: Dict[type, int] = {}
        self.whitelist = _class_whitelist()
        self.filters = _state_filters()
        self.singleton_ids = {id(obj): i for i, obj in enumerate(_singletons())}
        self.version = version
        self.strings: Dict[str, int] = {}
        self.shapes: Dict[Tuple[str, ...], int] = {}

    def _encode_str(self, value: str) -> None:
        """v2 string: intern-table back-reference or register-and-emit."""
        out = self.out
        sref = self.strings.get(value)
        if sref is not None:
            out.append(_T_SREF)
            _write_uvarint(out, sref)
            return
        self.strings[value] = len(self.strings)
        raw = value.encode("utf-8")
        out.append(_T_ISTR)
        _write_uvarint(out, len(raw))
        out.append(raw)

    @staticmethod
    def _pack_ints(values: Any) -> Optional[bytes]:
        """``<q``-packed machine bytes, or None if any element does not
        qualify (non-int, bool, or outside int64)."""
        try:
            if not all(type(v) is int for v in values):
                return None
            return array("q", values).tobytes()
        except OverflowError:
            return None

    def _memoize(self, obj: Any) -> None:
        self.memo[id(obj)] = self.memo_next
        self.memo_next += 1

    def encode(self, obj: Any) -> None:
        out = self.out
        if obj is None:
            out.append(_T_NONE)
            return
        if obj is True:
            out.append(_T_TRUE)
            return
        if obj is False:
            out.append(_T_FALSE)
            return
        kind = type(obj)
        if kind is int:
            if self.version >= 2 and -_VINT_BOUND < obj < _VINT_BOUND:
                out.append(_T_VINT)
                # zigzag: obj >> 62 is -1 for negatives, 0 otherwise
                _write_uvarint(out, (obj << 1) ^ (obj >> 62))
                return
            out.append(_T_INT)
            raw = obj.to_bytes((obj.bit_length() + 8) // 8 or 1,
                               "little", signed=True)
            _write_uvarint(out, len(raw))
            out.append(raw)
            return
        if kind is float:
            out.append(_T_FLOAT)
            out.append(_F64.pack(obj))
            return
        if kind is str:
            if self.version >= 2:
                self._encode_str(obj)
                return
            raw = obj.encode("utf-8")
            out.append(_T_STR)
            _write_uvarint(out, len(raw))
            out.append(raw)
            return
        if kind is bytes:
            out.append(_T_BYTES)
            _write_uvarint(out, len(obj))
            out.append(obj)
            return
        ref = self.memo.get(id(obj))
        if ref is not None:
            out.append(_T_REF)
            _write_uvarint(out, ref)
            return
        singleton = self.singleton_ids.get(id(obj))
        if singleton is not None:
            out.append(_T_SINGLETON)
            _write_uvarint(out, singleton)
            return
        if kind is tuple:
            if self.version >= 2 and obj:
                raw = self._pack_ints(obj)
                if raw is not None:
                    out.append(_T_INTTUPLE)
                    _write_uvarint(out, len(obj))
                    out.append(raw)
                    self._memoize(obj)  # same post-order slot as _T_TUPLE
                    return
            if id(obj) in self.in_progress:
                raise SnapshotUnsupported("reference cycle through a tuple")
            self.in_progress.add(id(obj))
            out.append(_T_TUPLE)
            _write_uvarint(out, len(obj))
            for item in obj:
                self.encode(item)
            self.in_progress.discard(id(obj))
            self._memoize(obj)  # post-order: decoder memoizes after build
            return
        self._memoize(obj)  # pre-order: decoder registers a placeholder
        if kind is bytearray:
            out.append(_T_BYTEARRAY)
            _write_uvarint(out, len(obj))
            out.append(bytes(obj))
            return
        if kind is array:
            # typecode + machine bytes: exact for the int codes, and for
            # 'd'/'f' the IEEE-754 bytes round-trip bit-identically
            out.append(_T_ARRAY)
            code = obj.typecode.encode("ascii")
            _write_uvarint(out, len(code))
            out.append(code)
            raw = obj.tobytes()
            _write_uvarint(out, len(raw))
            out.append(raw)
            return
        if kind is list:
            if self.version >= 2 and obj:
                raw = self._pack_ints(obj)
                if raw is not None:
                    out.append(_T_INTLIST)
                    _write_uvarint(out, len(obj))
                    out.append(raw)
                    return
            out.append(_T_LIST)
            _write_uvarint(out, len(obj))
            for item in obj:
                self.encode(item)
            return
        if kind is dict or kind is OrderedDict:
            if self.version >= 2 and obj and kind is dict:
                first_k, first_v = next(iter(obj.items()))
                if type(first_k) is int and type(first_v) is int:
                    flat: List[int] = []
                    for key, value in obj.items():
                        flat.append(key)
                        flat.append(value)
                    raw = self._pack_ints(flat)
                    if raw is not None:
                        out.append(_T_INTDICT)
                        _write_uvarint(out, len(obj))
                        out.append(raw)
                        return
            out.append(_T_DICT if kind is dict else _T_ODICT)
            _write_uvarint(out, len(obj))
            for key, value in obj.items():
                self.encode(key)
                self.encode(value)
            return
        if kind is set or kind is frozenset:
            out.append(_T_SET if kind is set else _T_FROZENSET)
            _write_uvarint(out, len(obj))
            try:
                items = sorted(obj)
            except TypeError:
                items = sorted(obj, key=repr)
            for item in items:
                self.encode(item)
            return
        self._encode_instance(obj, kind)

    def _encode_instance(self, obj: Any, kind: type) -> None:
        tag = _class_tag(kind)
        if self.whitelist.get(tag) is not kind:
            raise SnapshotUnsupported(
                f"object of type {tag} is not snapshot-whitelisted")
        out = self.out
        out.append(_T_OBJECT2 if self.version >= 2 else _T_OBJECT)
        class_id = self.class_ids.get(kind)
        if class_id is None:
            class_id = len(self.class_ids)
            self.class_ids[kind] = class_id
            _write_uvarint(out, class_id)
            raw = tag.encode("utf-8")
            _write_uvarint(out, len(raw))
            out.append(raw)
        else:
            _write_uvarint(out, class_id)
        get_state = self.filters.get(kind, _default_get_state)
        state = get_state(obj)
        if self.version >= 2:
            # shape = the attribute-name tuple, registered once per
            # distinct sequence; instances of a class almost always share
            # one shape, so per-instance name bytes collapse to one varint
            shape = tuple(name for name, _ in state)
            shape_id = self.shapes.get(shape)
            if shape_id is None:
                shape_id = len(self.shapes)
                self.shapes[shape] = shape_id
                _write_uvarint(out, shape_id)
                _write_uvarint(out, len(shape))
                for name in shape:
                    self._encode_str(name)
            else:
                _write_uvarint(out, shape_id)
            for _name, value in state:
                self.encode(value)
            return
        _write_uvarint(out, len(state))
        for name, value in state:
            raw = name.encode("utf-8")
            _write_uvarint(out, len(raw))
            out.append(raw)
            self.encode(value)


# -- decoder -----------------------------------------------------------------

class _Decoder:
    def __init__(self, data: bytes) -> None:
        self.reader = _Reader(data)
        self.memo: List[Any] = []
        self.classes: List[type] = []
        self.whitelist = _class_whitelist()
        self.singletons = _singletons()
        self.strings: List[str] = []
        self.shapes: List[Tuple[str, ...]] = []

    def _unpack_ints(self, count: int) -> List[int]:
        arr = array("q")
        arr.frombytes(self.reader.take(count * 8))
        return arr.tolist()

    def decode(self) -> Any:
        # dispatch is ordered by measured tag frequency in aged-image
        # streams: scattered ints, refs, instances, then everything else
        r = self.reader
        pos = r.pos
        data = r.data
        if pos >= len(data):
            raise SnapshotDecodeError("truncated snapshot stream")
        tag = data[pos]
        r.pos = pos + 1
        if tag == _B_VINT:
            zigzag = r.uvarint()
            return (zigzag >> 1) ^ -(zigzag & 1)
        if tag == _B_REF:
            index = r.uvarint()
            if index >= len(self.memo):
                raise SnapshotDecodeError(f"dangling memo ref {index}")
            return self.memo[index]
        if tag == _B_OBJECT2:
            return self._decode_instance_v2()
        if tag == _B_SREF:
            index = r.uvarint()
            if index >= len(self.strings):
                raise SnapshotDecodeError(f"dangling string ref {index}")
            return self.strings[index]
        if tag == _B_LIST:
            count = r.uvarint()
            obj: List[Any] = []
            self.memo.append(obj)
            for _ in range(count):
                obj.append(self.decode())
            return obj
        if tag == _B_NONE:
            return None
        if tag == _B_TRUE:
            return True
        if tag == _B_FALSE:
            return False
        if tag == _B_ISTR:
            value = r.take(r.uvarint()).decode("utf-8")
            self.strings.append(value)
            return value
        if tag == _B_BYTEARRAY:
            obj = bytearray(r.take(r.uvarint()))
            self.memo.append(obj)
            return obj
        if tag == _B_DICT or tag == _B_ODICT:
            count = r.uvarint()
            mapping: Dict[Any, Any] = {} if tag == _B_DICT else OrderedDict()
            self.memo.append(mapping)
            for _ in range(count):
                key = self.decode()
                mapping[key] = self.decode()
            return mapping
        if tag == _B_TUPLE:
            count = r.uvarint()
            obj = tuple(self.decode() for _ in range(count))
            self.memo.append(obj)
            return obj
        if tag == _B_INTTUPLE:
            obj = tuple(self._unpack_ints(r.uvarint()))
            self.memo.append(obj)  # same post-order slot as _T_TUPLE
            return obj
        if tag == _B_INTLIST:
            obj = self._unpack_ints(r.uvarint())
            self.memo.append(obj)  # elements are scalars: same slot as _T_LIST
            return obj
        if tag == _B_INTDICT:
            count = r.uvarint()
            flat = iter(self._unpack_ints(count * 2))
            mapping = dict(zip(flat, flat))
            if len(mapping) != count:
                raise SnapshotDecodeError("duplicate keys in packed dict")
            self.memo.append(mapping)
            return mapping
        if tag == _B_INT:
            raw = r.take(r.uvarint())
            return int.from_bytes(raw, "little", signed=True)
        if tag == _B_FLOAT:
            return _F64.unpack(r.take(8))[0]
        if tag == _B_STR:
            return r.take(r.uvarint()).decode("utf-8")
        if tag == _B_BYTES:
            return r.take(r.uvarint())
        if tag == _B_SINGLETON:
            index = r.uvarint()
            if index >= len(self.singletons):
                raise SnapshotDecodeError(f"unknown singleton {index}")
            return self.singletons[index]
        if tag == _B_ARRAY:
            code = r.take(r.uvarint()).decode("ascii")
            try:
                arr = array(code)
            except ValueError as exc:
                raise SnapshotDecodeError(
                    f"bad array typecode {code!r}") from exc
            arr.frombytes(r.take(r.uvarint()))
            self.memo.append(arr)
            return arr
        if tag == _B_SET:
            count = r.uvarint()
            items: set = set()
            self.memo.append(items)
            for _ in range(count):
                items.add(self.decode())
            return items
        if tag == _B_FROZENSET:
            count = r.uvarint()
            placeholder = len(self.memo)
            self.memo.append(None)
            frozen = frozenset(self.decode() for _ in range(count))
            self.memo[placeholder] = frozen
            return frozen
        if tag == _B_OBJECT:
            return self._decode_instance()
        raise SnapshotDecodeError(f"unknown tag {bytes((tag,))!r}")

    def _decode_class(self) -> type:
        r = self.reader
        class_id = r.uvarint()
        if class_id == len(self.classes):
            name = r.take(r.uvarint()).decode("utf-8")
            cls = self.whitelist.get(name)
            if cls is None:
                raise SnapshotDecodeError(
                    f"snapshot names unknown class {name!r}")
            self.classes.append(cls)
            return cls
        if class_id < len(self.classes):
            return self.classes[class_id]
        raise SnapshotDecodeError(f"bad class id {class_id}")

    def _decode_instance(self) -> Any:
        r = self.reader
        cls = self._decode_class()
        obj = cls.__new__(cls)
        self.memo.append(obj)
        setter = object.__setattr__  # works for __slots__ and frozen classes
        for _ in range(r.uvarint()):
            name = r.take(r.uvarint()).decode("utf-8")
            setter(obj, name, self.decode())
        return obj

    def _decode_instance_v2(self) -> Any:
        r = self.reader
        cls = self._decode_class()
        obj = cls.__new__(cls)
        self.memo.append(obj)
        shape_id = r.uvarint()
        if shape_id == len(self.shapes):
            names = []
            for _ in range(r.uvarint()):
                name = self.decode()
                if type(name) is not str:
                    raise SnapshotDecodeError("shape name is not a string")
                names.append(name)
            shape: Tuple[str, ...] = tuple(names)
            self.shapes.append(shape)
        elif shape_id < len(self.shapes):
            shape = self.shapes[shape_id]
        else:
            raise SnapshotDecodeError(f"bad shape id {shape_id}")
        setter = object.__setattr__
        decode = self.decode
        for name in shape:
            setter(obj, name, decode())
        return obj


def encode(root: Any, *, version: int = 2) -> bytes:
    """Serialize *root* (typically an ``{"fs": ..., "ctx": ...}`` dict).

    *version* selects the stream format: 2 (default) uses the columnar
    fast path, 1 produces the pure tagged stream.  Both decode with
    :func:`decode` to the same object graph.
    """
    if version not in CODEC_VERSIONS:
        raise ValueError(f"unknown codec version {version!r}")
    limit = sys.getrecursionlimit()
    if limit < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    try:
        enc = _Encoder(version)
        enc.encode(root)
        return b"".join(enc.out)
    finally:
        if limit < _RECURSION_LIMIT:
            sys.setrecursionlimit(limit)


def decode(data: bytes) -> Any:
    """Rebuild the object graph serialized by :func:`encode`."""
    limit = sys.getrecursionlimit()
    if limit < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    try:
        dec = _Decoder(data)
        root = dec.decode()
        if dec.reader.pos != len(dec.reader.data):
            raise SnapshotDecodeError("trailing bytes after snapshot root")
        return root
    finally:
        if limit < _RECURSION_LIMIT:
            sys.setrecursionlimit(limit)
