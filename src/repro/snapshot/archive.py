"""Winery-style sharded pack archive for aged-image snapshots.

The flat store (:mod:`repro.snapshot.store`) keeps one ``<key>.snap``
file per image — fine for a developer cache, wasteful for a fleet-built
corpus where hundreds of grid cells share identical payloads (every
un-ageable PMFS cell, every duplicate parameter point).  This module
implements the Software Heritage *Winery* object-storage shape on top of
the same record framing:

hot write shard
    Each writer appends CRC-framed object records to its own
    ``shard-<token>.write`` file.  Appends never rewrite existing bytes,
    so a crashed writer leaves at worst an unindexed tail record.

sealed pack
    When a shard crosses ``seal_bytes`` it is renamed (atomically, same
    directory) to ``packs/pack-NNNNNN.pack`` and chmod'ed read-only.
    Packs are immutable: readers can hold offsets into them forever.

index
    One ``index.json`` maps every object key to ``(relpath, offset,
    length)`` — shard or pack, the record layout is identical.  The
    index is published by write-to-temp + ``os.replace`` under an
    ``fcntl`` file lock, so readers always see a complete JSON document
    and concurrent writers serialize their merges.  A ``contents``
    section maps payload digests to the first key that wrote them:
    later keys with identical payload bytes become *aliases* (index
    entries sharing the first record's location) and write nothing.

scrub
    Walks every shard and pack record-by-record, re-verifying each
    record's CRC.  A file with structural damage or a failed CRC is
    moved to ``quarantine/`` and its index entries are dropped, so the
    next restore of an affected key falls back to re-aging — the same
    fail-closed contract as the flat store's ``load_ex``.

All integrity failures on the read path degrade to the store's statuses
(``miss`` / ``corrupt`` / ``stale`` / ``decode_error``); nothing in a
damaged archive can stop a run, only slow it down to cold-aging speed.
"""

from __future__ import annotations

import fcntl
import hashlib
import json
import os
import stat
import struct
import tempfile
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from . import codec, store

__all__ = ["Archive", "ARCHIVE_VERSION", "DEFAULT_SEAL_BYTES",
           "archive_root", "INDEX_SCHEMA"]

#: bumped when the pack/record layout changes; packs carry it in their
#: header so foreign files are quarantined, never misparsed
ARCHIVE_VERSION = 1

#: seal threshold: compact enough that a corpus build produces several
#: packs (exercising the seal path), large enough that pack count stays
#: far below the object count
DEFAULT_SEAL_BYTES = 64 * 1024 * 1024

INDEX_SCHEMA = "repro.snapshot-archive/1"

_PACK_MAGIC = b"REPROPAK"
_PACK_HEAD = struct.Struct("<H")          # archive version
_REC_MAGIC = b"ROBJ"
# record header: magic | store version | key_len | meta_len | payload_len
_REC_HEAD = struct.Struct("<4sHHIQ")
_REC_CRC = struct.Struct("<I")


def archive_root() -> Optional[str]:
    """Archive directory from ``$REPRO_SNAPSHOT_ARCHIVE``, or ``None``.

    When unset, callers use the flat per-file store; when set, the
    store's ``save``/``load_ex`` route here instead.
    """
    return os.environ.get("REPRO_SNAPSHOT_ARCHIVE") or None


def _frame_record(key: str, meta_blob: bytes, payload: bytes) -> bytes:
    raw_key = key.encode("utf-8")
    crc = zlib.crc32(raw_key + meta_blob + payload) & 0xFFFFFFFF
    head = _REC_HEAD.pack(_REC_MAGIC, store.FORMAT_VERSION, len(raw_key),
                          len(meta_blob), len(payload))
    return head + raw_key + meta_blob + payload + _REC_CRC.pack(crc)


def _parse_record(blob: bytes, offset: int
                  ) -> Optional[Tuple[str, int, bytes, bytes, int]]:
    """``(key, version, meta, payload, end_offset)`` or None if invalid.

    CRC-checks the record; any structural problem (bad magic, lengths
    past EOF, CRC mismatch) returns None so callers treat the enclosing
    file as damaged from this point on.
    """
    head_end = offset + _REC_HEAD.size
    if head_end > len(blob):
        return None
    magic, version, key_len, meta_len, payload_len = _REC_HEAD.unpack_from(
        blob, offset)
    if magic != _REC_MAGIC:
        return None
    body_end = head_end + key_len + meta_len + payload_len
    end = body_end + _REC_CRC.size
    if end > len(blob):
        return None
    raw_key = blob[head_end:head_end + key_len]
    meta_blob = blob[head_end + key_len:head_end + key_len + meta_len]
    payload = blob[head_end + key_len + meta_len:body_end]
    (crc,) = _REC_CRC.unpack_from(blob, body_end)
    if zlib.crc32(raw_key + meta_blob + payload) & 0xFFFFFFFF != crc:
        return None
    try:
        key = raw_key.decode("utf-8")
    except UnicodeDecodeError:
        return None
    return key, version, meta_blob, payload, end


def _pack_header() -> bytes:
    return _PACK_MAGIC + _PACK_HEAD.pack(ARCHIVE_VERSION)


_HEADER_LEN = len(_PACK_MAGIC) + _PACK_HEAD.size


def _valid_header(blob: bytes) -> bool:
    if len(blob) < _HEADER_LEN or not blob.startswith(_PACK_MAGIC):
        return False
    (version,) = _PACK_HEAD.unpack_from(blob, len(_PACK_MAGIC))
    return version == ARCHIVE_VERSION


class _IndexLock:
    """``flock`` on ``<root>/.lock`` serializing index publication."""

    def __init__(self, root: str) -> None:
        self._path = os.path.join(root, ".lock")
        self._fd: Optional[int] = None

    def __enter__(self) -> "_IndexLock":
        self._fd = os.open(self._path, os.O_CREAT | os.O_RDWR, 0o644)
        fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._fd is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None


class Archive:
    """One sharded pack archive rooted at a directory.

    Thread-unsafe per instance, multi-process safe per directory: every
    index mutation happens under the directory's file lock, every data
    write is an append to this writer's own shard, and the index is
    published atomically.  Instances are cheap — the index is re-read
    from disk on every lookup so concurrent writers are always visible.
    """

    def __init__(self, root: str, *, seal_bytes: int = DEFAULT_SEAL_BYTES,
                 shard_token: Optional[str] = None) -> None:
        self.root = root
        self.seal_bytes = seal_bytes
        # one shard per writer process keeps appends single-writer; a
        # deterministic token (the corpus builder passes "build") makes
        # shard and pack contents reproducible byte-for-byte
        token = shard_token if shard_token is not None else f"pid{os.getpid()}"
        self.shard_name = f"shard-{token}.write"
        os.makedirs(os.path.join(root, "packs"), exist_ok=True)

    # -- paths and index I/O --------------------------------------------------

    def _path(self, relpath: str) -> str:
        return os.path.join(self.root, relpath)

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "index.json")

    def _read_index(self) -> Dict[str, Any]:
        try:
            with open(self.index_path, "rb") as handle:
                doc = json.load(handle)
        except (FileNotFoundError, ValueError, OSError):
            return {"schema": INDEX_SCHEMA, "objects": {}, "contents": {}}
        if not isinstance(doc, dict) or doc.get("schema") != INDEX_SCHEMA:
            return {"schema": INDEX_SCHEMA, "objects": {}, "contents": {}}
        doc.setdefault("objects", {})
        doc.setdefault("contents", {})
        return doc

    def _publish_index(self, doc: Dict[str, Any]) -> None:
        blob = json.dumps(doc, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".index-",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- write path -----------------------------------------------------------

    def put(self, key: str, root_obj: Any,
            meta: Optional[Dict[str, Any]] = None) -> bool:
        """Encode *root_obj* and store it under *key*.

        Returns False when the graph is unserializable or the directory
        is unwritable — same soft-failure contract as ``store.save``.
        """
        try:
            payload = codec.encode(root_obj)
        except codec.SnapshotUnsupported:
            return False
        return self.put_payload(key, payload, meta=meta) is not None

    def put_payload(self, key: str, payload: bytes,
                    meta: Optional[Dict[str, Any]] = None) -> Optional[str]:
        """Store already-encoded *payload* bytes under *key*.

        The corpus builder encodes in worker processes and archives in
        the parent (in sorted cell order) through this entry point.
        Identical payload bytes already present become an alias entry:
        no data is written, the key simply points at the first record.
        Returns ``"stored"``, ``"alias"``, or ``"existing"`` on success,
        ``None`` when the directory is unwritable.
        """
        meta_blob = json.dumps(store._canonical(meta or {}), sort_keys=True,
                               separators=(",", ":")).encode("utf-8")
        digest = hashlib.sha256(payload).hexdigest()
        try:
            with _IndexLock(self.root):
                doc = self._read_index()
                objects = doc["objects"]
                if key in objects:
                    return "existing"
                alias = doc["contents"].get(digest)
                if alias is not None and alias in objects:
                    objects[key] = list(objects[alias])
                    self._publish_index(doc)
                    return "alias"
                record = _frame_record(key, meta_blob, payload)
                shard = self._path(self.shard_name)
                with open(shard, "ab") as handle:
                    if handle.tell() == 0:
                        handle.write(_pack_header())
                    offset = handle.tell()
                    handle.write(record)
                    handle.flush()
                    os.fsync(handle.fileno())
                    size = handle.tell()
                objects[key] = [self.shard_name, offset, len(record)]
                doc["contents"][digest] = key
                if size >= self.seal_bytes:
                    self._seal_locked(doc)
                self._publish_index(doc)
        except OSError:
            return None
        return "stored"

    def _next_pack_name(self) -> str:
        packs_dir = os.path.join(self.root, "packs")
        taken = [name for name in os.listdir(packs_dir)
                 if name.startswith("pack-") and name.endswith(".pack")]
        number = 0
        for name in taken:
            try:
                number = max(number, int(name[5:-5]) + 1)
            except ValueError:
                continue
        return f"packs/pack-{number:06d}.pack"

    def _seal_locked(self, doc: Dict[str, Any]) -> Optional[str]:
        """Rename this writer's shard into an immutable pack (lock held)."""
        shard = self._path(self.shard_name)
        if not os.path.exists(shard):
            return None
        pack_rel = self._next_pack_name()
        pack = self._path(pack_rel)
        os.replace(shard, pack)
        os.chmod(pack, stat.S_IRUSR | stat.S_IRGRP | stat.S_IROTH)
        for entry in doc["objects"].values():
            if entry[0] == self.shard_name:
                entry[0] = pack_rel
        return pack_rel

    def seal(self) -> Optional[str]:
        """Seal this writer's shard now; returns the pack relpath."""
        with _IndexLock(self.root):
            doc = self._read_index()
            pack_rel = self._seal_locked(doc)
            if pack_rel is not None:
                self._publish_index(doc)
            return pack_rel

    # -- read path ------------------------------------------------------------

    def load_ex(self, key: str) -> Tuple[Optional[Any], str]:
        """Decode the object under *key*; statuses match ``store.load_ex``."""
        entry = self._read_index()["objects"].get(key)
        if entry is None:
            return None, "miss"
        try:
            relpath, offset, length = entry
            with open(self._path(relpath), "rb") as handle:
                handle.seek(int(offset))
                blob = handle.read(int(length))
        except (OSError, TypeError, ValueError):
            return None, "corrupt"
        parsed = _parse_record(blob, 0)
        if parsed is None or parsed[4] != len(blob):
            return None, "corrupt"
        _key, version, _meta, payload, _end = parsed
        if version != store.FORMAT_VERSION:
            return None, "stale"
        try:
            return codec.decode(payload), "hit"
        except (codec.SnapshotDecodeError, struct.error, ValueError):
            return None, "decode_error"

    def contains(self, key: str) -> bool:
        return key in self._read_index()["objects"]

    def objects(self) -> Iterator[Tuple[str, str, int, int]]:
        """Yield ``(key, relpath, offset, length)`` in sorted key order."""
        objects = self._read_index()["objects"]
        for key in sorted(objects):
            relpath, offset, length = objects[key]
            yield key, relpath, int(offset), int(length)

    def stats(self) -> Dict[str, Any]:
        doc = self._read_index()
        files: Dict[str, int] = {}
        for name in self._data_files():
            try:
                files[name] = os.path.getsize(self._path(name))
            except OSError:
                continue
        locations = {tuple(entry) for entry in doc["objects"].values()}
        return {
            "objects": len(doc["objects"]),
            "unique_records": len(locations),
            "aliases": len(doc["objects"]) - len(locations),
            "packs": sum(1 for name in files if name.startswith("packs/")),
            "shards": sum(1 for name in files if name.endswith(".write")),
            "bytes": sum(files.values()),
        }

    # -- maintenance ----------------------------------------------------------

    def _data_files(self) -> List[str]:
        names: List[str] = []
        packs_dir = os.path.join(self.root, "packs")
        if os.path.isdir(packs_dir):
            names.extend(f"packs/{name}" for name in os.listdir(packs_dir)
                         if name.endswith(".pack"))
        names.extend(name for name in os.listdir(self.root)
                     if name.startswith("shard-") and name.endswith(".write"))
        return sorted(names)

    def scrub(self) -> Dict[str, Any]:
        """Verify every record CRC; quarantine damaged files.

        Returns ``{"files", "objects", "quarantined", "dropped_keys"}``.
        A file is damaged when its header is wrong or any record fails
        to parse/CRC before EOF; damaged files move to ``quarantine/``
        and every index entry pointing into them (including aliases) is
        dropped, so affected keys re-age on next use.
        """
        with _IndexLock(self.root):
            doc = self._read_index()
            valid: Dict[str, set] = {}
            quarantined: List[str] = []
            objects_seen = 0
            for relpath in self._data_files():
                path = self._path(relpath)
                try:
                    with open(path, "rb") as handle:
                        blob = handle.read()
                except OSError:
                    quarantined.append(relpath)
                    continue
                ok = _valid_header(blob)
                spans = set()
                offset = _HEADER_LEN
                while ok and offset < len(blob):
                    parsed = _parse_record(blob, offset)
                    if parsed is None:
                        ok = False
                        break
                    spans.add((offset, parsed[4] - offset))
                    objects_seen += 1
                    offset = parsed[4]
                if ok:
                    valid[relpath] = spans
                else:
                    self._quarantine(relpath)
                    quarantined.append(relpath)
            dropped = self._drop_invalid_entries(doc, valid)
            self._publish_index(doc)
        return {
            "files": len(valid) + len(quarantined),
            "objects": objects_seen,
            "quarantined": quarantined,
            "dropped_keys": dropped,
        }

    def _quarantine(self, relpath: str) -> None:
        qdir = os.path.join(self.root, "quarantine")
        os.makedirs(qdir, exist_ok=True)
        target = os.path.join(qdir, os.path.basename(relpath))
        try:
            os.chmod(self._path(relpath), 0o644)
        except OSError:
            pass
        os.replace(self._path(relpath), target)

    @staticmethod
    def _drop_invalid_entries(doc: Dict[str, Any],
                              valid: Dict[str, set]) -> List[str]:
        dropped = []
        for key, entry in list(doc["objects"].items()):
            relpath, offset, length = entry
            if (int(offset), int(length)) not in valid.get(relpath, ()):
                del doc["objects"][key]
                dropped.append(key)
        kept = set(doc["objects"])
        doc["contents"] = {digest: key
                           for digest, key in doc["contents"].items()
                           if key in kept}
        return sorted(dropped)

    def gc(self, max_bytes: int) -> Dict[str, Any]:
        """Evict sealed packs, least-recently-modified first, until the
        archive's data files fit in *max_bytes*.

        Hot shards are never evicted (they hold in-flight writes).
        Returns ``{"evicted", "freed_bytes", "dropped_keys"}``.
        """
        with _IndexLock(self.root):
            doc = self._read_index()
            sized = []
            total = 0
            for relpath in self._data_files():
                try:
                    info = os.stat(self._path(relpath))
                except OSError:
                    continue
                total += info.st_size
                if relpath.startswith("packs/"):
                    sized.append((info.st_mtime, relpath, info.st_size))
            sized.sort()
            evicted: List[str] = []
            freed = 0
            for _mtime, relpath, size in sized:
                if total <= max_bytes:
                    break
                try:
                    os.chmod(self._path(relpath), 0o644)
                    os.unlink(self._path(relpath))
                except OSError:
                    continue
                total -= size
                freed += size
                evicted.append(relpath)
            dropped: List[str] = []
            if evicted:
                gone = set(evicted)
                for key, entry in list(doc["objects"].items()):
                    if entry[0] in gone:
                        del doc["objects"][key]
                        dropped.append(key)
                kept = set(doc["objects"])
                doc["contents"] = {digest: key
                                   for digest, key in doc["contents"].items()
                                   if key in kept}
                self._publish_index(doc)
        return {"evicted": evicted, "freed_bytes": freed,
                "dropped_keys": sorted(dropped)}
