"""Content-addressed on-disk store for aged-image snapshots.

A snapshot is keyed by everything that determines the aged state: file
system name, device size, CPU count, aging profile, seed, churn volume,
target utilization, machine parameters, and the codec format version.
Same inputs → same key → cache hit; any change re-ages.

Files live under ``$REPRO_SNAPSHOT_DIR`` (default ``~/.cache/repro``) as
``<sha256>.snap``:

    magic "REPROSNP" | u16 version | u32 meta_len | meta JSON |
    u64 payload_len | payload | u32 crc32(meta + payload)

The meta JSON repeats the key parameters for inspection; integrity and
version checks happen before any payload byte reaches the codec.  Every
failure mode — missing file, bad magic, stale version, CRC mismatch,
truncation, decode error — makes :func:`load` return ``None`` so callers
fall back to re-aging; :func:`load_ex` additionally classifies the
failure (``miss`` / ``stale`` / ``corrupt`` / ``decode_error``) so the
harness can count non-miss failures instead of losing them — a corrupt
cache that silently re-ages on every run looks exactly like a healthy
cold cache unless something counts it.

Two environment knobs change where and how much:

* ``$REPRO_SNAPSHOT_ARCHIVE`` routes :func:`save`/:func:`load_ex` to a
  sharded pack archive rooted there (:mod:`repro.snapshot.archive`)
  instead of one flat file per key — same statuses, same fail-closed
  behavior, plus content dedup across keys;
* ``$REPRO_SNAPSHOT_MAX_BYTES`` caps the flat directory: after every
  save, least-recently-used ``.snap`` files (by mtime — loads touch
  their file) are evicted until the cap holds.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import zlib
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Optional

from . import codec

__all__ = ["FORMAT_VERSION", "LOAD_STATUSES", "cache_key", "snapshot_dir",
           "snapshot_path", "save", "load", "load_ex", "evict_lru"]

#: bump whenever the codec stream or the simulated state layout changes;
#: old files are then ignored (and eventually overwritten), never misread
#: (3: codec v2 columnar stream became the default encoding)
FORMAT_VERSION = 3

_MAGIC = b"REPROSNP"
_HEAD = struct.Struct("<HI")   # version, meta_len
_PLEN = struct.Struct("<Q")    # payload_len
_CRC = struct.Struct("<I")


def _canonical(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        return {"__class__": type(value).__name__, **asdict(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    return value


def cache_key(params: Dict[str, Any]) -> str:
    """sha256 over the canonical JSON of the aging parameters."""
    doc = {"format_version": FORMAT_VERSION}
    doc.update({k: _canonical(v) for k, v in params.items()})
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def snapshot_dir() -> str:
    override = os.environ.get("REPRO_SNAPSHOT_DIR")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def snapshot_path(key: str) -> str:
    return os.path.join(snapshot_dir(), f"{key}.snap")


def _archive() -> Optional[Any]:
    """The routed archive when ``$REPRO_SNAPSHOT_ARCHIVE`` is set."""
    from . import archive as archive_mod

    root = archive_mod.archive_root()
    if root is None:
        return None
    try:
        return archive_mod.Archive(root)
    except OSError:
        return None


def _max_bytes() -> Optional[int]:
    raw = os.environ.get("REPRO_SNAPSHOT_MAX_BYTES")
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def evict_lru(directory: str, max_bytes: int) -> Dict[str, Any]:
    """Evict ``.snap`` files, oldest mtime first, until the directory's
    snapshot bytes fit in *max_bytes*.

    Returns ``{"evicted", "freed_bytes", "kept_bytes"}``.  Loads touch
    their file's mtime, so eviction order is true LRU, not FIFO.
    """
    sized = []
    total = 0
    try:
        names = os.listdir(directory)
    except OSError:
        names = []
    for name in names:
        if not name.endswith(".snap"):
            continue
        path = os.path.join(directory, name)
        try:
            info = os.stat(path)
        except OSError:
            continue
        sized.append((info.st_mtime, path, info.st_size))
        total += info.st_size
    sized.sort()
    evicted = []
    freed = 0
    for _mtime, path, size in sized:
        if total <= max_bytes:
            break
        try:
            os.unlink(path)
        except OSError:
            continue
        total -= size
        freed += size
        evicted.append(os.path.basename(path))
    return {"evicted": evicted, "freed_bytes": freed, "kept_bytes": total}


def save(key: str, root: Any, meta: Optional[Dict[str, Any]] = None) -> bool:
    """Encode *root* and atomically write it under *key*.

    Returns False (leaving no partial file behind) when the graph is not
    serializable or the directory is not writable; snapshotting is an
    optimization, never a correctness requirement.
    """
    routed = _archive()
    if routed is not None:
        return routed.put(key, root, meta=meta)
    try:
        payload = codec.encode(root)
    except codec.SnapshotUnsupported:
        return False
    meta_blob = json.dumps(_canonical(meta or {}), sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
    body = (_HEAD.pack(FORMAT_VERSION, len(meta_blob)) + meta_blob
            + _PLEN.pack(len(payload)) + payload)
    crc = zlib.crc32(meta_blob + payload) & 0xFFFFFFFF
    target = snapshot_path(key)
    try:
        os.makedirs(os.path.dirname(target), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(target),
                                   prefix=".snap-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(body)
                handle.write(_CRC.pack(crc))
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False
    cap = _max_bytes()
    if cap is not None:
        evict_lru(os.path.dirname(target), cap)
    return True


#: every status ``load_ex`` can report.  ``hit`` carries a value; the
#: rest carry ``None``.  ``miss`` (no file) is the healthy cold-cache
#: case; the other three mean a file existed but could not be used.
LOAD_STATUSES = ("hit", "miss", "corrupt", "stale", "decode_error")


def load_ex(key: str) -> tuple:
    """Decode the snapshot stored under *key*.

    Returns ``(value, "hit")`` on success, else ``(None, status)`` with
    *status* one of :data:`LOAD_STATUSES`: ``miss`` when no file exists,
    ``stale`` for a readable file with an old format version, ``corrupt``
    for structural damage (bad magic, truncation, CRC mismatch), and
    ``decode_error`` when the integrity-checked payload fails the codec.
    """
    routed = _archive()
    if routed is not None:
        return routed.load_ex(key)
    path = snapshot_path(key)
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return None, "miss"
    except OSError:
        return None, "corrupt"
    try:
        os.utime(path)  # mtime = recency, for evict_lru
    except OSError:
        pass
    try:
        if not blob.startswith(_MAGIC):
            return None, "corrupt"
        offset = len(_MAGIC)
        if len(blob) < offset + _HEAD.size + _PLEN.size + _CRC.size:
            return None, "corrupt"
        version, meta_len = _HEAD.unpack_from(blob, offset)
        if version != FORMAT_VERSION:
            return None, "stale"
        offset += _HEAD.size
        meta_end = offset + meta_len
        payload_off = meta_end + _PLEN.size
        if payload_off > len(blob) - _CRC.size:
            return None, "corrupt"
        (payload_len,) = _PLEN.unpack_from(blob, meta_end)
        payload_end = payload_off + payload_len
        if payload_end != len(blob) - _CRC.size:
            return None, "corrupt"
        (crc,) = _CRC.unpack_from(blob, payload_end)
        if zlib.crc32(blob[offset:meta_end]
                      + blob[payload_off:payload_end]) & 0xFFFFFFFF != crc:
            return None, "corrupt"
    except struct.error:
        return None, "corrupt"
    try:
        return codec.decode(blob[payload_off:payload_end]), "hit"
    except (codec.SnapshotDecodeError, struct.error, ValueError):
        return None, "decode_error"


def load(key: str) -> Optional[Any]:
    """Decode the snapshot stored under *key*; ``None`` on any failure."""
    value, _status = load_ex(key)
    return value
