"""Versioned, pickle-free snapshots of aged simulation state.

``codec`` turns a whitelisted object graph into a tagged binary stream
whose restore is bit-identical (exact floats, preserved dict order and
shared references); ``store`` wraps it in a content-addressed on-disk
cache with magic/version/CRC framing so corrupt or stale files fall back
to re-aging.  ``harness.aged_fs`` is the consumer.
"""

from .codec import (SnapshotDecodeError, SnapshotUnsupported, decode,
                    encode)
from .store import (FORMAT_VERSION, cache_key, load, save, snapshot_dir,
                    snapshot_path)

__all__ = [
    "SnapshotDecodeError",
    "SnapshotUnsupported",
    "decode",
    "encode",
    "FORMAT_VERSION",
    "cache_key",
    "load",
    "save",
    "snapshot_dir",
    "snapshot_path",
]
