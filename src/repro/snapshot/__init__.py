"""Versioned, pickle-free snapshots of aged simulation state.

``codec`` turns a whitelisted object graph into a tagged binary stream
whose restore is bit-identical (exact floats, preserved dict order and
shared references); ``store`` wraps it in a content-addressed on-disk
cache with magic/version/CRC framing so corrupt or stale files fall back
to re-aging; ``archive`` is the Winery-style sharded pack backend the
store routes to when ``$REPRO_SNAPSHOT_ARCHIVE`` is set.
``harness.aged_fs`` is the consumer.
"""

from .archive import Archive, archive_root
from .codec import (CODEC_VERSIONS, SnapshotDecodeError, SnapshotUnsupported,
                    decode, encode)
from .store import (FORMAT_VERSION, cache_key, evict_lru, load, load_ex,
                    save, snapshot_dir, snapshot_path)

__all__ = [
    "Archive",
    "archive_root",
    "CODEC_VERSIONS",
    "SnapshotDecodeError",
    "SnapshotUnsupported",
    "decode",
    "encode",
    "FORMAT_VERSION",
    "cache_key",
    "evict_lru",
    "load",
    "load_ex",
    "save",
    "snapshot_dir",
    "snapshot_path",
]
