"""Virtual file system layer.

Defines the POSIX-flavoured interface every simulated file system
implements (:class:`~repro.vfs.interface.FileSystem`), open-file handles,
stat results, and the shared namespace locking the paper leans on for
per-CPU journal coordination (§3.4: "WineFS uses the Virtual File System
(VFS) layer for coordination ... An inode can only be locked by one logical
CPU at a time").
"""

from .interface import FileSystem, OpenFile, StatResult, FSStats
from .path import split_path, normalize_path, parent_of, basename_of

__all__ = ["FileSystem", "OpenFile", "StatResult", "FSStats",
           "split_path", "normalize_path", "parent_of", "basename_of"]
