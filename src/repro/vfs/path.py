"""Path utilities shared by all file systems.

Paths are absolute, ``/``-separated, with no ``.``/``..`` resolution (the
workloads never generate them).  Component names may not contain ``/`` or
be empty.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import InvalidArgumentError


def normalize_path(path: str) -> str:
    """Canonical form: leading '/', no trailing '/', no empty components."""
    if not path or not path.startswith("/"):
        raise InvalidArgumentError(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise InvalidArgumentError(f"'.' and '..' unsupported: {path!r}")
    return "/" + "/".join(parts)


def split_path(path: str) -> List[str]:
    """Components of a normalized path; [] for the root."""
    return [p for p in normalize_path(path).split("/") if p]


def parent_of(path: str) -> str:
    parts = split_path(path)
    if not parts:
        raise InvalidArgumentError("root has no parent")
    return "/" + "/".join(parts[:-1])


def basename_of(path: str) -> str:
    parts = split_path(path)
    if not parts:
        raise InvalidArgumentError("root has no name")
    return parts[-1]


def join(parent: str, name: str) -> str:
    if "/" in name or not name:
        raise InvalidArgumentError(f"bad component {name!r}")
    parent = normalize_path(parent)
    return parent + name if parent == "/" else parent + "/" + name
