"""Path utilities shared by all file systems.

Paths are absolute, ``/``-separated, with no ``.``/``..`` resolution (the
workloads never generate them).  Component names may not contain ``/`` or
be empty.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from ..errors import InvalidArgumentError


@lru_cache(maxsize=8192)
def normalize_path(path: str) -> str:
    """Canonical form: leading '/', no trailing '/', no empty components."""
    if not path or not path.startswith("/"):
        raise InvalidArgumentError(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise InvalidArgumentError(f"'.' and '..' unsupported: {path!r}")
    return "/" + "/".join(parts)


@lru_cache(maxsize=8192)
def _split_cached(path: str) -> Tuple[str, ...]:
    return tuple(p for p in normalize_path(path).split("/") if p)


def split_path(path: str) -> List[str]:
    """Components of a normalized path; [] for the root."""
    return list(_split_cached(path))


@lru_cache(maxsize=8192)
def parent_of(path: str) -> str:
    parts = _split_cached(path)
    if not parts:
        raise InvalidArgumentError("root has no parent")
    return "/" + "/".join(parts[:-1])


@lru_cache(maxsize=8192)
def basename_of(path: str) -> str:
    parts = _split_cached(path)
    if not parts:
        raise InvalidArgumentError("root has no name")
    return parts[-1]


def join(parent: str, name: str) -> str:
    if "/" in name or not name:
        raise InvalidArgumentError(f"bad component {name!r}")
    parent = normalize_path(parent)
    return parent + name if parent == "/" else parent + "/" + name
