"""The FileSystem interface all seven simulated file systems implement.

The API is the subset of POSIX the paper's workloads exercise (Table 1 and
§5): create/open/read/write/append/fsync/unlink/rename/mkdir/readdir/
truncate/fallocate plus ``mmap``.  Every call takes a
:class:`~repro.clock.SimContext` identifying the virtual CPU that issues it
and accumulating its cost, and charges the syscall crossing cost up front
(§2.1: trapping into the kernel dominates small PM operations).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..clock import SimContext
from ..errors import (BadFileError, FSError, InvalidArgumentError,
                      NotMountedError, ReadOnlyError)
from ..mmu.cache import CacheModel
from ..mmu.mmap_region import MappedRegion
from ..mmu.tlb import TLB
from ..params import MachineParams
from ..pm.device import PMDevice


@dataclass(frozen=True)
class StatResult:
    """Subset of ``struct stat`` the workloads need."""

    ino: int
    size: int
    blocks: int            # allocated blocks (may exceed size/block_size)
    is_dir: bool
    nlink: int = 1


@dataclass
class FSStats:
    """Aggregate file-system statistics (statfs + repro extras)."""

    total_blocks: int
    free_blocks: int
    block_size: int
    files: int
    # fragmentation metrics (Fig 3)
    free_aligned_hugepages: int = 0
    free_space_aligned_fraction: float = 0.0

    @property
    def utilization(self) -> float:
        return 1.0 - self.free_blocks / self.total_blocks


class OpenFile:
    """An open file descriptor: a (filesystem, inode number, offset) triple."""

    def __init__(self, fs: "FileSystem", ino: int, path: str) -> None:
        self.fs = fs
        self.ino = ino
        self.path = path
        self.offset = 0
        self.closed = False

    def _check(self) -> None:
        if self.closed:
            raise BadFileError(f"fd for {self.path} is closed")

    def read(self, size: int, ctx: SimContext) -> bytes:
        self._check()
        data = self.fs.read(self.ino, self.offset, size, ctx)
        self.offset += len(data)
        return data

    def pread(self, offset: int, size: int, ctx: SimContext) -> bytes:
        self._check()
        return self.fs.read(self.ino, offset, size, ctx)

    def write(self, data: bytes, ctx: SimContext) -> int:
        self._check()
        n = self.fs.write(self.ino, self.offset, data, ctx)
        self.offset += n
        return n

    def pwrite(self, offset: int, data: bytes, ctx: SimContext) -> int:
        self._check()
        return self.fs.write(self.ino, offset, data, ctx)

    def pwrite_zeros(self, offset: int, length: int, ctx: SimContext) -> int:
        """Write ``length`` zero bytes at ``offset`` without materializing
        the buffer (same cost and semantics as ``pwrite`` of zeros)."""
        self._check()
        return self.fs.write_zeros(self.ino, offset, length, ctx)

    def append(self, data: bytes, ctx: SimContext) -> int:
        self._check()
        size = self.fs.getattr_ino(self.ino).size
        n = self.fs.write(self.ino, size, data, ctx)
        self.offset = size + n
        return n

    def append_zeros(self, length: int, ctx: SimContext) -> int:
        self._check()
        size = self.fs.getattr_ino(self.ino).size
        n = self.fs.write_zeros(self.ino, size, length, ctx)
        self.offset = size + n
        return n

    def fsync(self, ctx: SimContext) -> None:
        self._check()
        self.fs.fsync(self.ino, ctx)

    def ftruncate(self, size: int, ctx: SimContext) -> None:
        self._check()
        self.fs.truncate(self.ino, size, ctx)

    def fallocate(self, offset: int, size: int, ctx: SimContext) -> None:
        self._check()
        self.fs.fallocate(self.ino, offset, size, ctx)

    def mmap(self, ctx: SimContext, length: Optional[int] = None,
             tlb: Optional[TLB] = None,
             cache: Optional[CacheModel] = None) -> MappedRegion:
        self._check()
        return self.fs.mmap(self.ino, ctx, length=length, tlb=tlb, cache=cache)

    def close(self) -> None:
        self.closed = True


#: VFS entry points instrumented by :meth:`FileSystem.attach_telemetry`,
#: mapped to the positional index of the ``ctx`` argument in a call on
#: the *bound* method (``fs.create(path, ctx)`` -> index 1).  These are
#: exactly the operations whose latency an SLO covers; ``getattr`` is
#: excluded (its ctx is optional and it backs ``exists`` probes).
TELEMETRY_OPS = {
    "create": 1, "open": 1, "unlink": 1, "mkdir": 1, "rmdir": 1,
    "readdir": 1, "rename": 2, "fsync": 1, "mmap": 1,
    "truncate": 2, "read": 3, "write": 3, "write_zeros": 3,
    "fallocate": 3,
}


class FileSystem(ABC):
    """Abstract simulated PM file system.

    Concrete subclasses: :class:`repro.core.WineFS` and the baselines in
    :mod:`repro.fs`.  Files are identified by paths for namespace ops and by
    inode number for data ops (handles carry the inode).
    """

    #: human-readable name used in result tables ("WineFS", "ext4-DAX", ...)
    name: str = "abstract"
    #: does this FS provide data (not just metadata) consistency by default?
    data_consistent: bool = False

    def __init__(self, device: PMDevice, num_cpus: int) -> None:
        self.device = device
        self.machine: MachineParams = device.machine
        self.num_cpus = num_cpus
        self.mounted = False
        # degradation state: once corruption is detected (poisoned
        # metadata, unreadable journal records) the fs stays mounted but
        # refuses mutations — data that is still readable stays readable
        self.read_only = False
        self.degraded_reason: Optional[str] = None
        # SLO telemetry handle; None (the default) means the entry
        # points are the plain unwrapped methods — bit-identical-off
        self.telemetry = None

    # -- lifecycle ------------------------------------------------------------

    @abstractmethod
    def mkfs(self, ctx: SimContext) -> None:
        """Format the device."""

    @abstractmethod
    def mount(self, ctx: SimContext) -> None:
        """Mount (runs recovery if the device crashed dirty)."""

    @abstractmethod
    def unmount(self, ctx: SimContext) -> None:
        """Clean unmount (serializes DRAM state to PM)."""

    def _check_mounted(self) -> None:
        if not self.mounted:
            raise NotMountedError(f"{self.name} is not mounted")

    def remount_read_only(self, reason: str,
                          ctx: Optional[SimContext] = None) -> None:
        """Degrade to read-only after detected corruption.

        Mirrors the kernel's ``errors=remount-ro`` behaviour: the first
        detection wins (the original reason is kept), reads keep working,
        and every mutating syscall fails with ``EROFS`` until a clean
        ``mkfs``/``mount`` cycle.  With telemetry attached the event
        opens a degraded interval on the timeline at *ctx*'s simulated
        time (0 when no context is available); re-entry on an
        already-degraded mount is a no-op — no overwritten reason, no
        duplicate interval.
        """
        if self.read_only:
            return
        self.read_only = True
        self.degraded_reason = reason
        if self.telemetry is not None:
            self.telemetry.timeline.mark_degraded(
                self.name, reason, 0.0 if ctx is None else ctx.now)

    def clear_degraded(self, ctx: Optional[SimContext] = None) -> None:
        """A clean repair (``mkfs``) heals degradation.

        Closes the open degraded interval on an attached timeline, which
        is what turns a degraded-to-repair window into an MTTR sample.
        """
        was_degraded = self.read_only
        self.read_only = False
        self.degraded_reason = None
        if was_degraded and self.telemetry is not None:
            self.telemetry.timeline.mark_recovered(
                self.name, 0.0 if ctx is None else ctx.now)

    # -- SLO telemetry ------------------------------------------------------

    def attach_telemetry(self, telemetry) -> None:
        """Record per-operation latency sketches and surfaced errors.

        Wraps every :data:`TELEMETRY_OPS` entry point *on this instance*
        with a closure that reads the context's simulated clock before
        and after the call and feeds the delta to *telemetry* — the
        class methods are untouched, so an un-attached file system runs
        exactly the unwrapped code.  Recording never charges the clock:
        simulated results are identical with telemetry on or off.

        Attaching replaces any previous attachment (wrappers always
        close over the original class implementation, never stack).
        """
        self.detach_telemetry()
        self.telemetry = telemetry
        if telemetry is None:
            return
        for op, ctx_index in TELEMETRY_OPS.items():
            self._instrument_op(op, ctx_index, telemetry)

    def detach_telemetry(self) -> None:
        """Restore the plain class entry points."""
        for op in TELEMETRY_OPS:
            self.__dict__.pop(op, None)
        self.telemetry = None

    def _instrument_op(self, op: str, ctx_index: int, telemetry) -> None:
        inner = getattr(type(self), op).__get__(self)
        fs_label = self.name

        def wrapper(*args, **kwargs):
            ctx = args[ctx_index] if len(args) > ctx_index \
                else kwargs.get("ctx")
            if ctx is None:
                return inner(*args, **kwargs)
            clock, cpu = ctx.clock, ctx.cpu
            start = clock.now(cpu)
            try:
                result = inner(*args, **kwargs)
            except FSError as exc:
                telemetry.record_error(fs_label, op, exc.errno_name,
                                       clock.now(cpu) - start)
                raise
            telemetry.record_op(fs_label, op, clock.now(cpu) - start)
            return result

        wrapper.__wrapped__ = inner   # type: ignore[attr-defined]
        wrapper.__name__ = op         # type: ignore[attr-defined]
        self.__dict__[op] = wrapper

    def _telemetry_event(self, kind: str, ctx: Optional[SimContext],
                         **attrs) -> None:
        """Log one degradation-related event (quarantine, relocation)
        on the attached timeline; no-op without telemetry."""
        if self.telemetry is not None:
            self.telemetry.timeline.note_event(
                self.name, kind, 0.0 if ctx is None else ctx.now, **attrs)

    def _check_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyError(
                f"{self.name} is read-only: {self.degraded_reason}")

    def _syscall(self, ctx: SimContext) -> None:
        """Charge one kernel crossing."""
        # inlined ctx.charge / counter property (syscall_ns >= 0; single
        # adds on the same cells, so values are bit-identical)
        ctx.clock._cpu_ns[ctx.cpu] += self.machine.syscall_ns
        ctx.counters._syscalls.value += 1

    # -- namespace ops -----------------------------------------------------------

    @abstractmethod
    def create(self, path: str, ctx: SimContext) -> OpenFile: ...

    @abstractmethod
    def open(self, path: str, ctx: SimContext) -> OpenFile: ...

    @abstractmethod
    def unlink(self, path: str, ctx: SimContext) -> None: ...

    @abstractmethod
    def mkdir(self, path: str, ctx: SimContext) -> None: ...

    @abstractmethod
    def rmdir(self, path: str, ctx: SimContext) -> None: ...

    @abstractmethod
    def rename(self, old: str, new: str, ctx: SimContext) -> None: ...

    @abstractmethod
    def readdir(self, path: str, ctx: SimContext) -> List[str]: ...

    @abstractmethod
    def getattr(self, path: str, ctx: Optional[SimContext] = None) -> StatResult: ...

    @abstractmethod
    def getattr_ino(self, ino: int) -> StatResult: ...

    def exists(self, path: str) -> bool:
        try:
            self.getattr(path)
            return True
        except Exception:
            return False

    # -- data ops ---------------------------------------------------------------------

    @abstractmethod
    def read(self, ino: int, offset: int, size: int, ctx: SimContext) -> bytes: ...

    @abstractmethod
    def write(self, ino: int, offset: int, data: bytes, ctx: SimContext) -> int: ...

    def write_zeros(self, ino: int, offset: int, length: int,
                    ctx: SimContext) -> int:
        """Write ``length`` zero bytes.  Subclasses override to avoid
        materializing the buffer; the default is behaviour-identical."""
        return self.write(ino, offset, b"\x00" * length, ctx)

    @abstractmethod
    def truncate(self, ino: int, size: int, ctx: SimContext) -> None: ...

    @abstractmethod
    def fallocate(self, ino: int, offset: int, size: int, ctx: SimContext) -> None: ...

    @abstractmethod
    def fsync(self, ino: int, ctx: SimContext) -> None: ...

    @abstractmethod
    def mmap(self, ino: int, ctx: SimContext, length: Optional[int] = None,
             tlb: Optional[TLB] = None,
             cache: Optional[CacheModel] = None) -> MappedRegion: ...

    # -- xattrs (WineFS alignment hints; others may raise) --------------------------------

    def setxattr(self, path: str, key: str, value: bytes, ctx: SimContext) -> None:
        raise InvalidArgumentError(f"{self.name} does not support xattrs")

    def getxattr(self, path: str, key: str, ctx: SimContext) -> bytes:
        raise InvalidArgumentError(f"{self.name} does not support xattrs")

    # -- introspection ----------------------------------------------------------------------

    @abstractmethod
    def statfs(self) -> FSStats: ...

    def utilization(self) -> float:
        """``statfs().utilization``; hot pollers get an O(pools) override
        in :class:`repro.fs.common.base.BaseFS`."""
        return self.statfs().utilization

    @abstractmethod
    def file_extents(self, ino: int): ...

    def write_file(self, path: str, data: bytes, ctx: SimContext,
                   chunk: int = 1 << 20) -> OpenFile:
        """Convenience: create+write+fsync a whole file (tests, aging)."""
        f = self.create(path, ctx)
        pos = 0
        while pos < len(data):
            f.pwrite(pos, data[pos:pos + chunk], ctx)
            pos += chunk
        f.fsync(ctx)
        return f

    def read_file(self, path: str, ctx: SimContext) -> bytes:
        f = self.open(path, ctx)
        size = self.getattr_ino(f.ino).size
        data = f.pread(0, size, ctx)
        f.close()
        return data
