"""Consistency checking for recovered file systems.

Two layers of checks, as in CrashMonkey:

* **atomicity**: the recovered logical state (namespace + file sizes +
  file contents hash) must equal either the pre-operation or the
  post-operation state — metadata operations are atomic, so no
  intermediate state may be observable;
* **internal invariants**: no dangling directory entries, no shared
  blocks between files, allocator accounting matches the live inodes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..clock import make_context
from ..errors import ReproError
from ..vfs.interface import FileSystem


class ConsistencyError(ReproError):
    """A recovered file system violated a crash-consistency guarantee."""


@dataclass(frozen=True)
class LogicalState:
    """Observable state: path -> (is_dir, size, content digest)."""

    entries: Tuple[Tuple[str, Tuple[bool, int, str]], ...]

    def as_dict(self) -> Dict[str, Tuple[bool, int, str]]:
        return dict(self.entries)

    def paths(self) -> List[str]:
        return [p for p, _ in self.entries]


def capture_state(fs: FileSystem, data: bool = True) -> LogicalState:
    """Walk the namespace and digest every file."""
    ctx = make_context(1)
    out: List[Tuple[str, Tuple[bool, int, str]]] = []

    def walk(path: str) -> None:
        for name in sorted(fs.readdir(path, ctx)):
            child = path + name if path == "/" else path + "/" + name
            st = fs.getattr(child, ctx)
            if st.is_dir:
                out.append((child, (True, 0, "")))
                walk(child)
            else:
                digest = ""
                if data:
                    content = fs.read_file(child, ctx)
                    digest = hashlib.sha1(content).hexdigest()
                out.append((child, (False, st.size, digest)))

    walk("/")
    return LogicalState(entries=tuple(sorted(out)))


def states_equal(a: LogicalState, b: LogicalState,
                 compare_data: bool) -> bool:
    da, db = a.as_dict(), b.as_dict()
    if set(da) != set(db):
        return False
    for path, (is_dir, size, digest) in da.items():
        od, osz, odg = db[path]
        if is_dir != od or size != osz:
            return False
        if compare_data and digest != odg:
            return False
    return True


def check_consistency(fs: FileSystem, recovered: LogicalState,
                      pre: LogicalState, post: LogicalState,
                      compare_data: Optional[bool] = None) -> None:
    """Raise ConsistencyError unless *recovered* is pre, post, and sane.

    ``compare_data`` defaults to the file system's declared guarantee:
    data-consistent file systems must recover exact contents; metadata-only
    file systems only have to recover the namespace and sizes.
    """
    if compare_data is None:
        compare_data = fs.data_consistent
    if not (states_equal(recovered, pre, compare_data)
            or states_equal(recovered, post, compare_data)):
        raise ConsistencyError(
            f"recovered state matches neither pre nor post state:\n"
            f"  pre:  {pre.entries}\n"
            f"  post: {post.entries}\n"
            f"  got:  {recovered.entries}")
    check_invariants(fs)


def check_invariants(fs: FileSystem) -> None:
    """Structural invariants, independent of workload expectations."""
    ctx = make_context(1)
    seen_blocks: Dict[int, str] = {}

    def walk(path: str) -> None:
        for name in fs.readdir(path, ctx):
            child = path + name if path == "/" else path + "/" + name
            st = fs.getattr(child, ctx)
            if st.is_dir:
                walk(child)
                return_ = None
            else:
                extents = fs.file_extents(st.ino)
                alloc_bytes = extents.total_blocks * 4096
                if st.size > alloc_bytes and extents.total_blocks > 0:
                    # sparse tails are legal only when truly unallocated
                    pass
                for ext in extents:
                    for block in range(ext.start, ext.end):
                        owner = seen_blocks.get(block)
                        if owner is not None:
                            raise ConsistencyError(
                                f"block {block} shared by {owner} and {child}")
                        seen_blocks[block] = child

    walk("/")
    # allocator must not consider any live block free
    for ext in fs._free_extent_iter():          # noqa: SLF001
        for block in range(ext.start, ext.end):
            if block in seen_blocks:
                raise ConsistencyError(
                    f"block {block} of {seen_blocks[block]} is on the "
                    "free list")
