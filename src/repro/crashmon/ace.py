"""ACE-style workload generation (§5.2).

The Automatic Crash Explorer generates small syscall sequences that mutate
file-system metadata; CrashMonkey then crashes the file system inside each
operation.  We generate the same seq-1/seq-2 style workloads: every
metadata-mutating syscall, alone and in pairs, over a small set of paths.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from ..clock import SimContext
from ..vfs.interface import FileSystem

#: the metadata-mutating operations ACE composes
OP_KINDS = ("create", "mkdir", "unlink", "rmdir", "rename", "append",
            "overwrite", "truncate", "fallocate")


@dataclass(frozen=True)
class SyscallOp:
    """One operation in an ACE workload."""

    kind: str
    path: str
    arg: str = ""       # rename destination
    size: int = 0       # bytes for data ops

    def apply(self, fs: FileSystem, ctx: SimContext) -> None:
        if self.kind == "create":
            fs.create(self.path, ctx).close()
        elif self.kind == "mkdir":
            fs.mkdir(self.path, ctx)
        elif self.kind == "unlink":
            fs.unlink(self.path, ctx)
        elif self.kind == "rmdir":
            fs.rmdir(self.path, ctx)
        elif self.kind == "rename":
            fs.rename(self.path, self.arg, ctx)
        elif self.kind == "append":
            f = fs.open(self.path, ctx)
            f.append(b"A" * self.size, ctx)
            f.close()
        elif self.kind == "overwrite":
            f = fs.open(self.path, ctx)
            f.pwrite(0, b"B" * self.size, ctx)
            f.close()
        elif self.kind == "truncate":
            f = fs.open(self.path, ctx)
            f.ftruncate(self.size, ctx)
            f.close()
        elif self.kind == "fallocate":
            f = fs.open(self.path, ctx)
            f.fallocate(0, max(self.size, 1), ctx)
            f.close()
        else:
            raise ValueError(f"unknown op kind {self.kind}")

    def __str__(self) -> str:
        if self.kind == "rename":
            return f"rename({self.path} -> {self.arg})"
        if self.size:
            return f"{self.kind}({self.path}, {self.size})"
        return f"{self.kind}({self.path})"


@dataclass
class AceWorkload:
    """A setup phase (never crashed) plus the crash-tested operations."""

    name: str
    setup: List[SyscallOp] = field(default_factory=list)
    ops: List[SyscallOp] = field(default_factory=list)

    def run_setup(self, fs: FileSystem, ctx: SimContext) -> None:
        for op in self.setup:
            op.apply(fs, ctx)

    def __str__(self) -> str:
        return f"{self.name}: " + "; ".join(str(o) for o in self.ops)


def _seq1_workloads() -> List[AceWorkload]:
    """Every metadata op alone, with the setup it needs."""
    out: List[AceWorkload] = []
    out.append(AceWorkload("create", ops=[SyscallOp("create", "/f0")]))
    out.append(AceWorkload("mkdir", ops=[SyscallOp("mkdir", "/d0")]))
    out.append(AceWorkload(
        "unlink",
        setup=[SyscallOp("create", "/f0"), SyscallOp("append", "/f0", size=5000)],
        ops=[SyscallOp("unlink", "/f0")]))
    out.append(AceWorkload(
        "rmdir", setup=[SyscallOp("mkdir", "/d0")],
        ops=[SyscallOp("rmdir", "/d0")]))
    out.append(AceWorkload(
        "rename",
        setup=[SyscallOp("create", "/f0")],
        ops=[SyscallOp("rename", "/f0", arg="/f1")]))
    out.append(AceWorkload(
        "rename-clobber",
        setup=[SyscallOp("create", "/f0"), SyscallOp("create", "/f1"),
               SyscallOp("append", "/f1", size=4096)],
        ops=[SyscallOp("rename", "/f0", arg="/f1")]))
    out.append(AceWorkload(
        "append", setup=[SyscallOp("create", "/f0")],
        ops=[SyscallOp("append", "/f0", size=6000)]))
    out.append(AceWorkload(
        "overwrite",
        setup=[SyscallOp("create", "/f0"), SyscallOp("append", "/f0", size=8192)],
        ops=[SyscallOp("overwrite", "/f0", size=4096)]))
    out.append(AceWorkload(
        "truncate-shrink",
        setup=[SyscallOp("create", "/f0"), SyscallOp("append", "/f0", size=8192)],
        ops=[SyscallOp("truncate", "/f0", size=1000)]))
    out.append(AceWorkload(
        "truncate-grow",
        setup=[SyscallOp("create", "/f0"), SyscallOp("append", "/f0", size=100)],
        ops=[SyscallOp("truncate", "/f0", size=50000)]))
    out.append(AceWorkload(
        "fallocate", setup=[SyscallOp("create", "/f0")],
        ops=[SyscallOp("fallocate", "/f0", size=3 * 1024 * 1024)]))
    return out


def _seq2_workloads() -> List[AceWorkload]:
    """Pairs of dependent operations (the cross-op reordering cases)."""
    out: List[AceWorkload] = []
    out.append(AceWorkload(
        "create-then-rename",
        ops=[SyscallOp("create", "/f0"),
             SyscallOp("rename", "/f0", arg="/f1")]))
    out.append(AceWorkload(
        "create-then-unlink",
        ops=[SyscallOp("create", "/f0"), SyscallOp("unlink", "/f0")]))
    out.append(AceWorkload(
        "mkdir-then-create",
        ops=[SyscallOp("mkdir", "/d0"), SyscallOp("create", "/d0/f0")]))
    out.append(AceWorkload(
        "append-then-rename",
        setup=[SyscallOp("create", "/f0")],
        ops=[SyscallOp("append", "/f0", size=4096),
             SyscallOp("rename", "/f0", arg="/f1")]))
    out.append(AceWorkload(
        "unlink-then-create",
        setup=[SyscallOp("create", "/f0"),
               SyscallOp("append", "/f0", size=4096)],
        ops=[SyscallOp("unlink", "/f0"), SyscallOp("create", "/f0")]))
    out.append(AceWorkload(
        "two-creates-one-dir",
        setup=[SyscallOp("mkdir", "/d0")],
        ops=[SyscallOp("create", "/d0/a"), SyscallOp("create", "/d0/b")]))
    out.append(AceWorkload(
        "cross-dir-rename",
        setup=[SyscallOp("mkdir", "/d0"), SyscallOp("mkdir", "/d1"),
               SyscallOp("create", "/d0/f")],
        ops=[SyscallOp("rename", "/d0/f", arg="/d1/f")]))
    return out


def _seq3_workloads() -> List[AceWorkload]:
    """Triples of dependent operations (deeper ACE seq-3 cases).

    These stress cross-op reordering through a middle operation: the
    crash explorer enumerates in-flight stores inside every op while the
    preceding ops' effects are already durable.
    """
    out: List[AceWorkload] = []
    out.append(AceWorkload(
        "create-append-rename",
        ops=[SyscallOp("create", "/f0"),
             SyscallOp("append", "/f0", size=4096),
             SyscallOp("rename", "/f0", arg="/f1")]))
    out.append(AceWorkload(
        "create-rename-unlink",
        ops=[SyscallOp("create", "/f0"),
             SyscallOp("rename", "/f0", arg="/f1"),
             SyscallOp("unlink", "/f1")]))
    out.append(AceWorkload(
        "mkdir-create-rename",
        setup=[SyscallOp("mkdir", "/d1")],
        ops=[SyscallOp("mkdir", "/d0"),
             SyscallOp("create", "/d0/f"),
             SyscallOp("rename", "/d0/f", arg="/d1/f")]))
    out.append(AceWorkload(
        "append-truncate-append",
        setup=[SyscallOp("create", "/f0")],
        ops=[SyscallOp("append", "/f0", size=8192),
             SyscallOp("truncate", "/f0", size=1000),
             SyscallOp("append", "/f0", size=3000)]))
    out.append(AceWorkload(
        "create-unlink-create",
        setup=[SyscallOp("create", "/f0"),
               SyscallOp("append", "/f0", size=4096)],
        ops=[SyscallOp("unlink", "/f0"),
             SyscallOp("create", "/f0"),
             SyscallOp("append", "/f0", size=2048)]))
    out.append(AceWorkload(
        "fallocate-overwrite-truncate",
        setup=[SyscallOp("create", "/f0")],
        ops=[SyscallOp("fallocate", "/f0", size=65536),
             SyscallOp("overwrite", "/f0", size=4096),
             SyscallOp("truncate", "/f0", size=512)]))
    return out


def generate_workloads(seq2: bool = True,
                       seq3: bool = False) -> List[AceWorkload]:
    """All ACE workloads (seq-1, optionally + seq-2 and seq-3)."""
    out = _seq1_workloads()
    if seq2:
        out.extend(_seq2_workloads())
    if seq3:
        out.extend(_seq3_workloads())
    return out
