"""Crash-consistency testing, modeled on CrashMonkey + ACE (OSDI 2018).

The paper tests WineFS with "a modified form of the CrashMonkey framework"
(§5.2): ACE generates metadata-mutating syscall workloads, CrashMonkey
enumerates crash states corresponding to all re-orderings of in-flight
writes inside each system call, and a checker verifies the recovered file
system is consistent.

Our PM device logs every store with flush/fence markers, so the legal
crash states are exactly: durable prefix + any subset of unfenced stores
(:meth:`repro.pm.device.PMDevice.crash_image`).
"""

from .ace import AceWorkload, generate_workloads, SyscallOp
from .explorer import CrashExplorer, CrashTestResult
from .checker import check_consistency, ConsistencyError

__all__ = ["AceWorkload", "generate_workloads", "SyscallOp",
           "CrashExplorer", "CrashTestResult",
           "check_consistency", "ConsistencyError"]
