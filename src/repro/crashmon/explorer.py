"""Crash-state exploration (the CrashMonkey core).

For each ACE workload:

1. format + run the setup on a store-tracking PM device;
2. record the logical state after every crash-tested operation;
3. replay the ops one at a time; inside each op, collect the in-flight
   (unfenced) stores and enumerate crash states — every subset of
   in-flight stores surviving on top of the durable prefix (§5.2: "crash
   states corresponding to all possible re-orderings of in-flight writes
   inside each system call");
4. remount each crash image and check consistency: the recovered state
   must match either the pre-op or post-op logical state (atomicity), and
   internal invariants must hold.

The number of in-flight writes per syscall is small for WineFS (entries
are persisted immediately), so exhaustive enumeration is feasible — the
same observation the paper makes.  A ``max_subsets`` bound guards
pathological cases.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..clock import SimContext, make_context
from ..pm.device import PMDevice
from ..vfs.interface import FileSystem
from .ace import AceWorkload
from .checker import LogicalState, capture_state, check_consistency, \
    ConsistencyError


@dataclass
class CrashTestResult:
    workload: str
    crash_points: int = 0
    states_checked: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations


class CrashExplorer:
    """Runs ACE workloads against a file-system factory.

    ``fs_factory(device)`` must return an *unmounted* file system bound to
    the given device; the explorer formats, runs, crashes, and remounts.
    """

    def __init__(self, fs_factory: Callable[[PMDevice], FileSystem],
                 device_size: int = 256 * 1024 * 1024,
                 num_cpus: int = 2, max_subsets: int = 256) -> None:
        self.fs_factory = fs_factory
        self.device_size = device_size
        self.num_cpus = num_cpus
        self.max_subsets = max_subsets

    def run_workload(self, workload: AceWorkload) -> CrashTestResult:
        result = CrashTestResult(workload=workload.name)
        device = PMDevice(self.device_size, track_stores=True)
        fs = self.fs_factory(device)
        ctx = make_context(self.num_cpus)
        fs.mkfs(ctx)
        workload.run_setup(fs, ctx)
        device.drain()   # setup is never crashed

        expected_states: List[LogicalState] = [capture_state(fs)]
        for i, op in enumerate(workload.ops):
            device.start_capture()
            op.apply(fs, ctx)
            post = capture_state(fs)
            epochs = device.end_capture()
            pre = expected_states[-1]
            # one crash point at the instant before every fence retired,
            # plus the final point with never-fenced residue
            for epoch, seqs in epochs:
                result.crash_points += 1
                for surviving in self._subsets(seqs):
                    result.states_checked += 1
                    image = device.capture_crash_image(epoch, surviving)
                    self._check_one(image, pre, post, op, epoch, surviving,
                                    result)
            expected_states.append(post)
            device.drain()   # op is fully durable before the next one
        return result

    def _check_one(self, image: PMDevice, pre: LogicalState,
                   post: LogicalState, op, epoch, surviving,
                   result: CrashTestResult) -> None:
        fs2 = self.fs_factory(image)
        ctx2 = make_context(self.num_cpus)
        try:
            fs2.mount(ctx2)
            recovered = capture_state(fs2)
            check_consistency(fs2, recovered, pre, post)
        except ConsistencyError as exc:
            result.violations.append(
                f"{op}: epoch={epoch} surviving={sorted(surviving)}: {exc}")
        except Exception as exc:   # noqa: BLE001 — any crash is a bug
            result.violations.append(
                f"{op}: epoch={epoch} surviving={sorted(surviving)}: "
                f"mount raised {type(exc).__name__}: {exc}")

    def _subsets(self, seqs: List[int]) -> List[Tuple[int, ...]]:
        """All subsets if small; prefixes + singletons + complements if not."""
        if 2 ** len(seqs) <= self.max_subsets:
            out: List[Tuple[int, ...]] = []
            for r in range(len(seqs) + 1):
                out.extend(itertools.combinations(seqs, r))
            return out
        out = [()]
        for i in range(len(seqs)):
            out.append(tuple(seqs[:i + 1]))              # prefixes
            out.append((seqs[i],))                        # singletons
            out.append(tuple(seqs[:i] + seqs[i + 1:]))    # drop-one
        # dedupe, bound
        uniq = list(dict.fromkeys(out))
        return uniq[: self.max_subsets]

    def run_all(self, workloads: List[AceWorkload]) -> List[CrashTestResult]:
        return [self.run_workload(w) for w in workloads]

    # -- regression corpus -----------------------------------------------------

    def replay_crash_states(self, workload: AceWorkload,
                            points: List[dict]) -> CrashTestResult:
        """Re-check recorded crash states (regression-corpus replay).

        Each point is ``{"op": <index into workload.ops>, "epoch": int,
        "surviving": [store seqs]}`` as produced by :meth:`build_corpus`.
        A point whose epoch no longer exists is reported as a violation —
        that means the on-PM store sequence changed and the corpus must
        be regenerated, a drift worth failing loudly on.
        """
        result = CrashTestResult(workload=workload.name)
        by_op: Dict[int, List[dict]] = {}
        for p in points:
            by_op.setdefault(int(p["op"]), []).append(p)
        device = PMDevice(self.device_size, track_stores=True)
        fs = self.fs_factory(device)
        ctx = make_context(self.num_cpus)
        fs.mkfs(ctx)
        workload.run_setup(fs, ctx)
        device.drain()
        pre = capture_state(fs)
        for i, op in enumerate(workload.ops):
            device.start_capture()
            op.apply(fs, ctx)
            post = capture_state(fs)
            epochs = dict(device.end_capture())
            for p in by_op.get(i, ()):
                epoch = p["epoch"]
                surviving = tuple(p["surviving"])
                result.crash_points += 1
                if epoch not in epochs:
                    result.violations.append(
                        f"{op}: stale corpus point epoch={epoch} — "
                        f"regenerate tests/data/crash_corpus.json")
                    continue
                result.states_checked += 1
                image = device.capture_crash_image(epoch, surviving)
                self._check_one(image, pre, post, op, epoch, surviving,
                                result)
            pre = post
            device.drain()
        return result

    def build_corpus(self, workloads: List[AceWorkload],
                     per_op_limit: int = 6) -> List[dict]:
        """Deterministically sample crash states into corpus entries.

        Strides through each op's subset enumeration (no randomness), so
        the same code version always produces the same corpus.
        """
        entries: List[dict] = []
        for workload in workloads:
            device = PMDevice(self.device_size, track_stores=True)
            fs = self.fs_factory(device)
            ctx = make_context(self.num_cpus)
            fs.mkfs(ctx)
            workload.run_setup(fs, ctx)
            device.drain()
            for i, op in enumerate(workload.ops):
                device.start_capture()
                op.apply(fs, ctx)
                epochs = device.end_capture()
                picked = 0
                for epoch, seqs in epochs:
                    if picked >= per_op_limit:
                        break
                    subsets = self._subsets(seqs)
                    remaining = per_op_limit - picked
                    stride = max(1, len(subsets) // remaining)
                    for s in subsets[::stride][:remaining]:
                        entries.append({"workload": workload.name,
                                        "op": i, "epoch": epoch,
                                        "surviving": sorted(s)})
                        picked += 1
                device.drain()
        return entries
