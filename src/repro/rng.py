"""The one sanctioned source of randomness inside ``repro``.

Every simulated quantity in this reproduction must be a pure function of
its seeds: workload op streams, aging churn, fault schedules and the LLC
pollution model all draw from :class:`random.Random` instances created
here.  Nothing in ``src/repro`` may call the module-level ``random.*``
functions (they share interpreter-global state, so any import-order or
test-ordering change would silently reshuffle results) — the determinism
lint (rule ``determinism`` in :mod:`repro.analysis`) enforces this.

``make_rng(seed)`` is stream-identical to ``random.Random(seed)``; the
optional *salt* derives independent sub-streams from one seed without
the caller inventing ad-hoc arithmetic at every site.
"""

from __future__ import annotations

import random

__all__ = ["BENCH_SEED", "make_rng"]

#: default seed shared with the benchmark suite (benchmarks/_common.py
#: re-exports it): one knob reproduces every seeded stream in the repo
BENCH_SEED = 1337

#: large odd multiplier keeps salted sub-streams disjoint from the plain
#: seed space for any realistic seed range
_SALT_STRIDE = 0x9E3779B97F4A7C15


def make_rng(seed: int = BENCH_SEED, salt: int = 0) -> random.Random:
    """A deterministic, privately-seeded RNG instance.

    With ``salt == 0`` the stream is bit-identical to
    ``random.Random(seed)``, so routing legacy ``Random(seed)`` call
    sites through here never changes seeded output.
    """
    if salt:
        seed = seed + salt * _SALT_STRIDE
    return random.Random(seed)   # repro: allow[determinism] the sanctioned constructor
