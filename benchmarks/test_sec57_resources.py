"""§5.7: resource consumption.

Paper: WineFS's DRAM footprint is dominated by the per-directory RB-tree
indexes ("less than 64B of memory per entry"; a 500GB partition full of
4KB files needs < 10GB of DRAM), and its background CPU use (journal
reclamation + reactive rewriting) is negligible in the common case.
"""

from __future__ import annotations

import pytest

from repro.clock import make_context
from repro.core.filesystem import WineFS
from repro.fs.common.dirindex import DENTRY_DRAM_BYTES
from repro.harness import Table
from repro.params import MIB

from _common import emit, record


@pytest.mark.benchmark(group="sec57")
def test_sec57_resources(benchmark):
    rows = []

    def run():
        from repro.pm.device import PMDevice
        device = PMDevice(256 * MIB)
        fs = WineFS(device, num_cpus=4)
        ctx = make_context(4)
        fs.mkfs(ctx)
        for nfiles in (100, 1000, 4000):
            fs.mkdir(f"/d{nfiles}", ctx)
            for i in range(nfiles):
                fs.create(f"/d{nfiles}/f{i}", ctx).close()
            dram = sum(d.dram_bytes for d in fs._dirs.values())
            files = len(fs._itable)
            rows.append((files, dram, dram / max(1, files)))
        # rewrite queue exists but is empty in the common case (§5.7)
        rows.append(("rewrite-queue", len(fs.rewrite_queue), 0))
        return True

    benchmark.pedantic(run, iterations=1, rounds=1)

    table = Table("§5.7 — WineFS DRAM index footprint",
                  ["files", "index DRAM (bytes)", "bytes/entry"])
    for r in rows:
        table.add_row(*r)
    emit("sec57_resources", table.render())
    record(benchmark, {"rows": rows})

    # <= 64B per directory entry, as the paper states
    for files, dram, per in rows[:-1]:
        assert per <= DENTRY_DRAM_BYTES + 1
    # background rewrite thread idle in the common case
    assert rows[-1][1] == 0
