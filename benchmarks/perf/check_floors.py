#!/usr/bin/env python
"""Perf-regression gate: enforce committed speedup floors.

Reads a ``BENCH_perf.json`` produced by ``run_perf.py --baseline ...``
and the committed floor file (``floors.json``), and fails if any bench's
``speedup_vs_baseline`` fell below ``floor * (1 - tolerance)``.

Rules:

* Only benches present in BOTH the floor file and the measured speedups
  are gated; a floor for a bench the run skipped is reported, not fatal.
* A floor may be a plain number (gates ``speedup_vs_baseline``) or an
  object ``{"metric": ..., "floor": ...}`` gating a self-relative metric
  from the bench's own ``work`` dict (e.g. ``snapshot_restore`` gates
  ``work.speedup_vs_cold`` — warm restore vs cold re-age measured in the
  same run, so no baseline file is involved).
* The run and floor ``scale`` must match — wall times (and therefore
  speedups) at different work multipliers are not comparable.
* ``fleet_scaling`` is gated only when the run's
  ``work.scaling_meaningful`` annotation is true (multi-CPU host):
  process-pool scaling on a single-CPU runner measures scheduler
  overhead, not the simulator.

Usage::

    python benchmarks/perf/check_floors.py BENCH_perf.json \
        [--floors benchmarks/perf/floors.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_FLOORS = os.path.join(_HERE, "floors.json")


def check(doc: dict, floors_doc: dict) -> int:
    tolerance = float(floors_doc.get("tolerance", 0.0))
    floors = floors_doc["floors"]
    speedups = doc.get("speedup_vs_baseline")
    if speedups is None:
        print("FAIL: results carry no speedup_vs_baseline "
              "(run run_perf.py with --baseline)")
        return 1
    run_scale = doc.get("scale")
    floor_scale = floors_doc.get("scale")
    if floor_scale is not None and run_scale != floor_scale:
        print(f"FAIL: run scale {run_scale} != floor scale {floor_scale}; "
              "speedups at different scales are not comparable")
        return 1
    if doc.get("baseline_scale") not in (None, run_scale):
        print(f"FAIL: baseline scale {doc['baseline_scale']} != run scale "
              f"{run_scale}")
        return 1

    failures = []
    for name, floor in sorted(floors.items()):
        if isinstance(floor, dict):
            # self-relative metric floor: read from the bench's work dict
            metric = floor["metric"]
            label = f"{name}.{metric}"
            work = doc.get("benches", {}).get(name, {}).get("work", {})
            measured = work.get(metric)
            if measured is None:
                print(f"  {label:15s} -- not in this run, skipped")
                continue
            needed = float(floor["floor"]) * (1.0 - tolerance)
            verdict = "ok" if measured >= needed else "REGRESSION"
            print(f"  {label:15s} {measured:6.2f}x  "
                  f"(floor {float(floor['floor']):.2f}x, "
                  f"gate {needed:.2f}x)  {verdict}")
            if measured < needed:
                failures.append((label, measured, needed))
            continue
        measured = speedups.get(name)
        if measured is None:
            print(f"  {name:15s} -- not in this run, skipped")
            continue
        if name == "fleet_scaling":
            work = doc["benches"].get(name, {}).get("work", {})
            if not work.get("scaling_meaningful", False):
                print(f"  {name:15s} -- single-CPU host "
                      f"(host_cpus={work.get('host_cpus')}), not gated")
                continue
        needed = floor * (1.0 - tolerance)
        verdict = "ok" if measured >= needed else "REGRESSION"
        print(f"  {name:15s} {measured:6.2f}x  (floor {floor:.2f}x, "
              f"gate {needed:.2f}x)  {verdict}")
        if measured < needed:
            failures.append((name, measured, needed))

    if failures:
        print(f"FAIL: {len(failures)} bench(es) below floor: "
              + ", ".join(f"{n} {m:.2f}x < {k:.2f}x"
                          for n, m, k in failures))
        return 1
    print("perf floors OK")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("results", help="BENCH_perf.json from run_perf.py")
    ap.add_argument("--floors", default=DEFAULT_FLOORS)
    args = ap.parse_args(argv)
    with open(args.results) as fh:
        doc = json.load(fh)
    with open(args.floors) as fh:
        floors_doc = json.load(fh)
    return check(doc, floors_doc)


if __name__ == "__main__":
    raise SystemExit(main())
