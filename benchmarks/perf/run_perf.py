#!/usr/bin/env python
"""Wall-clock microbenchmarks for the simulator itself.

Unlike the figure benches (which reproduce paper *results* in simulated
time), this suite measures how fast the simulator executes on the host:
the ROADMAP north-star is "as fast as the hardware allows", and wall-clock
per simulated event is what caps workload scale.

Benches:

* ``aging_churn``      — Geriatrix fill+churn on WineFS (journal + allocator
                         + per-block write paths).
* ``fig4_cdf``         — the Figure 4 setup: pre-fault a 128MB pool and do
                         random hot-set probes on WineFS (2MB pages) and
                         PMFS (4KB pages).  Prefault + per-page TLB
                         accounting dominate.
* ``mmap_seq``         — sequential 2MB memcpys over a hugepage-mapped
                         WineFS file (run-batched translation path).
* ``mmap_rand``        — random 4KB reads over a base-page-mapped PMFS
                         file (TLB-thrashing path).
* ``journal_storm``    — create/append/fsync/unlink cycles on WineFS
                         (journal commit path).
* ``snapshot_restore`` — cold age-and-save vs warm restore of the same
                         aged WineFS image through the snapshot store.
* ``fleet_scaling``    — a fixed (fs, pattern, seed) matrix at
                         ``--jobs 1`` vs ``--jobs 4`` through the fleet
                         runner (reports are verified identical).
* ``slo_campaign``     — the ``repro slo`` fault campaign with telemetry
                         attached (sketches, ledger, timeline), serial vs
                         ``--jobs 2`` (reports verified identical).

``--jobs N`` shards the (bench, repetition) cells themselves across
worker processes; wall time is measured inside each worker, so the
numbers are the same as a serial run (modulo host load).

Results go to ``BENCH_perf.json``; pass ``--baseline`` to compute
speedups against a previously captured run (the pre-change baseline lives
in ``benchmarks/results/BENCH_perf_baseline.json``).

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py \
        --scale 1.0 --out benchmarks/results/BENCH_perf.json \
        --baseline benchmarks/results/BENCH_perf_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(os.path.dirname(_HERE))
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.harness import aged_fs, fresh_fs, run_fleet         # noqa: E402
from repro.harness.fleet import (bench_matrix,                 # noqa: E402
                                 run_bench_matrix)
from repro.params import KIB, MIB                              # noqa: E402
from repro.structures.stats import LatencyRecorder             # noqa: E402
from repro.workloads import mmap_rw_benchmark                  # noqa: E402
from repro.workloads.part import PARTModel                     # noqa: E402

DEFAULT_OUT = os.path.join(_ROOT, "benchmarks", "results", "BENCH_perf.json")


def bench_aging_churn(scale: float) -> dict:
    """Fill + churn WineFS to 75% utilization (the Fig 1 aged setup).

    ``snapshot=False``: this bench measures the aging loop itself, so a
    cache hit would be cheating (``snapshot_restore`` measures the cache).
    """
    t0 = time.perf_counter()
    fs, ctx = aged_fs("WineFS", size_gib=0.5, num_cpus=4,
                      utilization=0.75, churn_multiple=4.0 * scale, seed=7,
                      snapshot=False)
    wall = time.perf_counter() - t0
    stats = fs.statfs()
    return {
        "wall_s": wall,
        "work": {
            "churn_multiple": 4.0 * scale,
            "utilization": stats.utilization,
            "files": stats.files,
        },
    }


def bench_fig4_cdf(scale: float) -> dict:
    """The Figure 4 critical path: prefault a pool, probe hot keys."""
    lookups = max(1000, int(20_000 * scale))
    out = {"wall_s": 0.0, "work": {"lookups": lookups, "pool_mib": 128}}
    sim_ns = {}
    for fs_name in ("WineFS", "PMFS"):
        t0 = time.perf_counter()
        fs, ctx = fresh_fs(fs_name, size_gib=0.5, num_cpus=4)
        model = PARTModel(fs, ctx, pool_bytes=128 * MIB,
                          hot_keys=100_000, seed=11)
        rec = LatencyRecorder()
        for _ in range(lookups):
            rec.record(model.lookup(ctx))
        model.close()
        wall = time.perf_counter() - t0
        out["wall_s"] += wall
        out["work"][f"wall_s_{fs_name}"] = wall
        sim_ns[fs_name] = ctx.now
        out["work"][f"median_ns_{fs_name}"] = rec.summary().median
    out["sim_ns"] = sim_ns
    return out


def bench_mmap_seq(scale: float) -> dict:
    """Sequential 2MB writes over a hugepage-mapped WineFS file."""
    fs, ctx = fresh_fs("WineFS", size_gib=0.5, num_cpus=4)
    total = max(64 * MIB, int(512 * MIB * scale))
    t0 = time.perf_counter()
    res = mmap_rw_benchmark(fs, ctx, file_size=128 * MIB, io_size=2 * MIB,
                            total_bytes=total, pattern="seq-write")
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "sim_ns": res.elapsed_ns,
        "work": {"bytes_moved": res.bytes_moved,
                 "faults_2m": res.page_faults_2m,
                 "faults_4k": res.page_faults_4k,
                 "tlb_misses": res.tlb_misses,
                 "sim_mb_s": res.throughput_mb_s},
    }


def bench_mmap_rand(scale: float) -> dict:
    """Random 4KB reads over a base-page-mapped PMFS file."""
    fs, ctx = fresh_fs("PMFS", size_gib=0.5, num_cpus=4)
    total = max(8 * MIB, int(64 * MIB * scale))
    t0 = time.perf_counter()
    res = mmap_rw_benchmark(fs, ctx, file_size=64 * MIB, io_size=4 * KIB,
                            total_bytes=total, pattern="rand-read", seed=5)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "sim_ns": res.elapsed_ns,
        "work": {"bytes_moved": res.bytes_moved,
                 "faults_4k": res.page_faults_4k,
                 "tlb_misses": res.tlb_misses,
                 "sim_mb_s": res.throughput_mb_s},
    }


def bench_journal_storm(scale: float) -> dict:
    """create/append/fsync/unlink cycles: the journal commit path."""
    fs, ctx = fresh_fs("WineFS", size_gib=0.5, num_cpus=4)
    cycles = max(200, int(1500 * scale))
    payload_len = 4 * KIB
    payload = b"\x00" * payload_len
    t0 = time.perf_counter()
    sim0 = ctx.now
    for i in range(cycles):
        path = f"/storm.{i % 64}"
        f = fs.create(path, ctx)
        for _ in range(4):
            f.append(payload, ctx)
        f.fsync(ctx)
        f.close()
        fs.unlink(path, ctx)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "sim_ns": ctx.now - sim0,
        "work": {"cycles": cycles, "appends_per_cycle": 4,
                 "append_bytes": payload_len},
    }


def bench_snapshot_restore(scale: float) -> dict:
    """Cold age-and-save vs warm restore through the snapshot store.

    Also reports a phase breakdown of the warm path (file read vs codec
    decode): decode dominates the restore, which is why the codec's v2
    columnar fast path gates in ``floors.json`` as a ``speedup_vs_cold``
    metric floor rather than a wall-time ratio against a baseline run.
    """
    import tempfile

    from repro.harness import aged_cache_key
    from repro.snapshot import codec as snapshot_codec
    from repro.snapshot import store as snapshot_store

    churn = max(0.5, 4.0 * scale)
    params = dict(size_gib=0.5, num_cpus=4, utilization=0.75,
                  churn_multiple=churn, seed=7)
    prior = os.environ.get("REPRO_SNAPSHOT_DIR")
    # this bench measures the flat store; never route to an archive
    prior_archive = os.environ.pop("REPRO_SNAPSHOT_ARCHIVE", None)
    with tempfile.TemporaryDirectory(prefix="repro-snap-") as tmp:
        os.environ["REPRO_SNAPSHOT_DIR"] = tmp
        try:
            t0 = time.perf_counter()
            aged_fs("WineFS", **params)
            cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            fs, ctx = aged_fs("WineFS", **params)
            warm = time.perf_counter() - t0
            # phase breakdown: re-run the warm path's two big pieces
            path = snapshot_store.snapshot_path(
                aged_cache_key("WineFS", **params))
            t0 = time.perf_counter()
            with open(path, "rb") as handle:
                blob = handle.read()
            read_s = time.perf_counter() - t0
            offset = len(snapshot_store._MAGIC)
            _version, meta_len = snapshot_store._HEAD.unpack_from(
                blob, offset)
            offset += snapshot_store._HEAD.size + meta_len
            (payload_len,) = snapshot_store._PLEN.unpack_from(blob, offset)
            offset += snapshot_store._PLEN.size
            payload = blob[offset:offset + payload_len]
            t0 = time.perf_counter()
            snapshot_codec.decode(payload)
            decode_s = time.perf_counter() - t0
        finally:
            if prior is None:
                os.environ.pop("REPRO_SNAPSHOT_DIR", None)
            else:
                os.environ["REPRO_SNAPSHOT_DIR"] = prior
            if prior_archive is not None:
                os.environ["REPRO_SNAPSHOT_ARCHIVE"] = prior_archive
    return {
        "wall_s": warm,
        "work": {"cold_s": cold, "churn_multiple": churn,
                 "speedup_vs_cold": round(cold / warm, 2) if warm else 0.0,
                 "files": fs.statfs().files,
                 "phase_read_s": read_s,
                 "phase_decode_s": decode_s,
                 "decode_fraction": round(decode_s / warm, 3) if warm
                 else 0.0,
                 "payload_bytes": len(payload)},
    }


def bench_fleet_scaling(scale: float) -> dict:
    """A fixed cell matrix serially vs across 4 worker processes."""
    seeds = list(range(1, max(3, int(8 * scale)) + 1))
    # cells must dwarf pool startup (~50ms) for scaling to be visible
    file_mib = max(8, int(32 * scale))
    cells = bench_matrix(["WineFS", "PMFS"], ["rand-read"], seeds,
                         size_gib=0.25, num_cpus=4, file_mib=file_mib)
    t0 = time.perf_counter()
    serial_report = run_bench_matrix(cells, jobs=1)
    serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel_report = run_bench_matrix(cells, jobs=4)
    parallel = time.perf_counter() - t0
    host_cpus = os.cpu_count() or 1
    return {
        "wall_s": parallel,
        "work": {"cells": len(cells), "jobs": 4, "serial_s": serial,
                 "scaling_x": round(serial / parallel, 2) if parallel
                 else 0.0,
                 # scaling_x can only exceed 1 with host_cpus > 1; the
                 # correctness claim is reports_identical, always.  The
                 # floor gate (check_floors.py) skips this bench when
                 # scaling_meaningful is False.
                 "host_cpus": host_cpus,
                 "scaling_meaningful": host_cpus >= 2,
                 "reports_identical": serial_report == parallel_report},
    }


def bench_slo_campaign(scale: float) -> dict:
    """The ``repro slo`` fault campaign: telemetry-attached op mix,
    crash + degraded phase + heal, sketch merge and report evaluation.

    Measures the observability tax end-to-end (wrapped VFS entry
    points, per-op sketch records, ledger updates) and verifies the
    jobs-2 report is byte-identical to serial, like ``fleet_scaling``.
    """
    from repro.harness.fleet import run_slo_campaign, slo_matrix

    seeds = list(range(1, max(2, int(4 * scale)) + 1))
    ops = max(80, int(400 * scale))
    cells = slo_matrix(["WineFS", "ext4-DAX"], seeds,
                       size_gib=0.25, num_cpus=2, ops=ops)
    t0 = time.perf_counter()
    serial_report = run_slo_campaign(cells, jobs=1)
    serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel_report = run_slo_campaign(cells, jobs=2)
    parallel = time.perf_counter() - t0
    return {
        "wall_s": serial,
        "work": {"cells": len(cells), "ops_per_cell": ops,
                 "parallel_s": parallel,
                 "host_cpus": os.cpu_count(),
                 "reports_identical": serial_report == parallel_report},
    }


BENCHES = {
    "aging_churn": bench_aging_churn,
    "fig4_cdf": bench_fig4_cdf,
    "mmap_seq": bench_mmap_seq,
    "mmap_rand": bench_mmap_rand,
    "journal_storm": bench_journal_storm,
    "snapshot_restore": bench_snapshot_restore,
    "fleet_scaling": bench_fleet_scaling,
    "slo_campaign": bench_slo_campaign,
}


def _perf_cell(cell) -> tuple:
    """One (bench, repetition) cell; top-level so worker pools can run it.

    Wall time is measured here, inside the worker, so ``--jobs`` never
    changes what any bench reports.
    """
    name, scale = cell
    return name, BENCHES[name](scale)


def run(scale: float, names, repeat: int, jobs: int = 1) -> dict:
    cells = [(name, scale) for name in names for _ in range(repeat)]
    results = run_fleet(_perf_cell, cells, jobs=jobs)
    benches = {}
    # results come back in cell order: best-of-repeat per bench, merged
    # by the fixed name order rather than completion order
    for name, result in results:
        best = benches.get(name)
        if best is None or result["wall_s"] < best["wall_s"]:
            benches[name] = result
    for name in names:
        print(f"  {name:15s} {benches[name]['wall_s']:8.3f}s", flush=True)
    return benches


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--scale", type=float, default=1.0,
                    help="work multiplier (CI uses a reduced scale)")
    ap.add_argument("--repeat", type=int, default=1,
                    help="repetitions per bench; the fastest wall time wins")
    ap.add_argument("--bench", action="append", choices=sorted(BENCHES),
                    help="run only the named bench (repeatable)")
    ap.add_argument("--jobs", type=int, default=1,
                    help="shard (bench, repetition) cells across this many "
                         "worker processes")
    ap.add_argument("--out", default=DEFAULT_OUT)
    ap.add_argument("--baseline", default=None,
                    help="prior BENCH_perf.json to compute speedups against")
    args = ap.parse_args(argv)

    names = args.bench or sorted(BENCHES)
    print(f"perf suite: scale={args.scale} repeat={args.repeat} "
          f"jobs={args.jobs}", flush=True)
    benches = run(args.scale, names, args.repeat, jobs=args.jobs)

    doc = {
        "schema": "repro.perf/1",
        "scale": args.scale,
        "python": sys.version.split()[0],
        "benches": benches,
    }

    if args.baseline:
        with open(args.baseline) as fh:
            base = json.load(fh)
        speedups = {}
        for name, res in benches.items():
            ref = base.get("benches", {}).get(name)
            if ref and res["wall_s"] > 0:
                speedups[name] = round(ref["wall_s"] / res["wall_s"], 2)
        doc["baseline_scale"] = base.get("scale")
        doc["speedup_vs_baseline"] = speedups
        print("speedup vs baseline:")
        for name, x in sorted(speedups.items()):
            print(f"  {name:15s} {x:6.2f}x")

    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
