"""Figure 10: scalability microbenchmark.

Paper setup (§5.6): each thread creates a file, appends at 4KB
granularity, fsyncs, and unlinks; thread count sweeps up.

Expected shape: WineFS and NOVA scale best (per-CPU journals / per-inode
logs); PMFS scales well (fine-grained journaling); ext4-DAX and xfs-DAX
stay low (stop-the-world fsync); SplitFS inherits ext4's ceiling; all
curves plateau once threads exceed the CPUs (VFS-layer bottlenecks).
"""

from __future__ import annotations

import pytest

from repro.harness import SPECS_BY_NAME, format_series
from repro.clock import make_context
from repro.params import GIB
from repro.pm.device import PMDevice
from repro.workloads import run_scalability

from _common import SIZE_GIB, emit, record

FS_NAMES = ["ext4-DAX", "xfs-DAX", "PMFS", "NOVA", "SplitFS", "WineFS"]
THREADS = [1, 2, 4, 8, 16, 32]
MACHINE_CPUS = 16


def _throughput(name: str, threads: int) -> float:
    spec = SPECS_BY_NAME[name]
    device = PMDevice(int(SIZE_GIB * GIB))
    fs = spec.build(device, num_cpus=min(threads, MACHINE_CPUS),
                    track_data=False)
    ctx = make_context(MACHINE_CPUS)
    fs.mkfs(ctx)
    ctx.clock.reset()
    result = run_scalability(fs, ctx, threads=threads, ops_per_thread=60)
    return result.kops_per_sec


@pytest.mark.benchmark(group="fig10")
def test_fig10_scalability(benchmark):
    series = {}

    def run():
        for name in FS_NAMES:
            series[name] = [(t, _throughput(name, t)) for t in THREADS]
        return True

    benchmark.pedantic(run, iterations=1, rounds=1)

    emit("fig10_scalability", format_series(
        "Figure 10 — create/append-4KB/fsync/unlink scalability",
        series, x_label="threads", y_label="Kops/s"))
    record(benchmark, series)

    def at(name, t):
        return dict(series[name])[t]

    # WineFS and NOVA scale: 16 threads >> 1 thread
    for name in ("WineFS", "NOVA"):
        assert at(name, 16) > 4 * at(name, 1), f"{name} should scale"
    # PMFS scales well too (fine-grained journaling, §5.6)
    assert at("PMFS", 16) > 3 * at("PMFS", 1)
    # ext4/xfs/SplitFS are limited by stop-the-world journal commits
    for name in ("ext4-DAX", "xfs-DAX", "SplitFS"):
        assert at(name, 16) < at("WineFS", 16) / 2, \
            f"{name} should trail WineFS at 16 threads"
    # the curves plateau beyond the CPU count
    assert at("WineFS", 32) < 1.5 * at("WineFS", 16)
