"""§4 (Discussion) experiments.

Two quantified claims in the paper's discussion section:

* **Other aging profiles hit harder**: under an HPC-site profile (Wang),
  "even with 50% utilization, only 28% of the free-space is aligned and
  unfragmented in ext4-DAX, while more than 90% ... in WineFS".
* **Reactive defragmentation steals bandwidth**: re-writing a fragmented
  file in the background while a foreground workload does mmap reads
  causes "a slowdown of 25-40%".
"""

from __future__ import annotations

import pytest

from repro.aging import WANG_HPC, Geriatrix
from repro.harness import Table, fresh_fs
from repro.params import GIB, KIB, MIB
from repro.workloads import mmap_rw_benchmark

from _common import NUM_CPUS, SIZE_GIB, emit, record


@pytest.mark.benchmark(group="sec4")
def test_sec4_wang_hpc_profile(benchmark):
    """Aging under the HPC profile separates the allocators harder."""
    out = {}

    def run():
        for name in ("ext4-DAX", "WineFS"):
            fs, ctx = fresh_fs(name, size_gib=SIZE_GIB, num_cpus=NUM_CPUS)
            # HPC checkpoints are large and written by concurrent ranks
            ager = Geriatrix(fs, WANG_HPC, target_utilization=0.5, seed=11,
                             concurrency=6, max_file_bytes=int(64 * MIB))
            ager.age(ctx, write_volume=int(12 * SIZE_GIB * GIB))
            out[name] = fs.statfs().free_space_aligned_fraction * 100
        return True

    benchmark.pedantic(run, iterations=1, rounds=1)

    table = Table("§4 — Wang-HPC profile, 50% utilization: % free space "
                  "aligned+unfragmented", ["fs", "aligned-free(%)"])
    for name, pct in out.items():
        table.add_row(name, pct)
    emit("sec4_wang_hpc", table.render())
    record(benchmark, out)

    # the paper reports 90% vs 28% at this utilization; our scaled churn
    # (12x vs ~330x partition volumes) produces the same ordering with a
    # smaller gap — see EXPERIMENTS.md
    assert out["WineFS"] > out["ext4-DAX"] + 5.0


@pytest.mark.benchmark(group="sec4")
def test_sec4_write_amplification(benchmark):
    """§4: "preserving the layout using journaling comes at the cost of
    writing metadata twice" — but the extra bytes are negligible against
    PM endurance (a 256GB module withstands 350PB of writes).

    Measured: PM bytes written per create/append/unlink cycle on WineFS
    (journaling) vs NOVA (log-structured, single metadata write).
    """
    out = {}

    def run():
        for name in ("WineFS", "NOVA"):
            fs, ctx = fresh_fs(name, size_gib=0.25, num_cpus=NUM_CPUS)
            ops = 500
            base = ctx.counters.pm_bytes_written
            for i in range(ops):
                f = fs.create(f"/f{i}", ctx)
                f.append(b"\x00" * (4 * KIB), ctx)
                f.close()
                fs.unlink(f"/f{i}", ctx)
            total = ctx.counters.pm_bytes_written - base
            data = ops * 4 * KIB
            out[name] = {
                "bytes/op": total / ops,
                "metadata bytes/op": max(0.0, (total - data) / ops),
            }
        return True

    benchmark.pedantic(run, iterations=1, rounds=1)

    table = Table("§4 — write amplification of journaling vs "
                  "log-structuring", ["fs", "bytes/op", "metadata bytes/op"])
    for name, row in out.items():
        table.add_row(name, row["bytes/op"], row["metadata bytes/op"])
    emit("sec4_write_amplification", table.render())
    record(benchmark, out)

    wfs = out["WineFS"]["metadata bytes/op"]
    nova = out["NOVA"]["metadata bytes/op"]
    # journaling writes metadata roughly twice...
    assert wfs > 1.3 * nova
    # ...but the absolute overhead is tiny: at this rate, wearing out a
    # 256GB module's 350PB endurance takes decades of continuous churn
    assert wfs < 16 * KIB


@pytest.mark.benchmark(group="sec4")
def test_sec4_defrag_interference(benchmark):
    """Background rewriting steals PM bandwidth from the foreground."""
    out = {}

    def run():
        # foreground: mmap reads of one file; measure alone, then measure
        # with a background rewrite of a fragmented file sharing the device
        fs, ctx = fresh_fs("WineFS", size_gib=SIZE_GIB, num_cpus=NUM_CPUS)
        fg = fs.create("/fg", ctx)
        fg.fallocate(0, 32 * MIB, ctx)
        frag = fs.create("/frag", ctx)
        other = fs.create("/other", ctx)
        for _ in range(90):
            frag.append(b"\x00" * 64 * KIB, ctx)
            other.append(b"\x00" * 64 * KIB, ctx)
        fs.rewrite_queue.note_fragmented(frag.ino)

        r_alone = mmap_rw_benchmark(fs, ctx, file_size=32 * MIB,
                                    io_size=2 * MIB, pattern="seq-read",
                                    path="/fg")
        out["alone MB/s"] = r_alone.throughput_mb_s

        # with interference: the background thread runs on another CPU but
        # competes for PM *bandwidth* — model the shared-bandwidth loss by
        # charging the foreground the bandwidth share the rewrite consumed
        # over the overlapping window
        bg = ctx.on_cpu(NUM_CPUS - 1)
        t0 = bg.now
        fs.rewrite_queue.run_pending(bg)
        bg_busy_ns = bg.now - t0
        t0 = ctx.now
        r_contended = mmap_rw_benchmark(fs, ctx, file_size=32 * MIB,
                                        io_size=2 * MIB,
                                        pattern="seq-read", path="/fg",
                                        seed=1)
        fg_ns = ctx.now - t0
        overlap = min(bg_busy_ns, fg_ns)
        # both streams move data at device bandwidth: during the overlap
        # the foreground gets half the device
        slowdown = (fg_ns + overlap) / fg_ns
        out["contended MB/s"] = r_contended.throughput_mb_s / slowdown
        out["slowdown %"] = (1 - 1 / slowdown) * 100
        return True

    benchmark.pedantic(run, iterations=1, rounds=1)

    table = Table("§4 — foreground mmap reads vs background defrag",
                  ["metric", "value"])
    for k, v in out.items():
        table.add_row(k, v)
    emit("sec4_defrag_interference", table.render())
    record(benchmark, out)

    # the paper observes a 25-40% slowdown; our shared-bandwidth model
    # should land in the same regime (>= 15%)
    assert 15.0 <= out["slowdown %"] <= 50.0
    assert out["contended MB/s"] < out["alone MB/s"]
