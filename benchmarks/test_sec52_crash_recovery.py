"""§5.2: crash consistency and recovery time.

Paper setup: ACE-generated workloads, CrashMonkey-style exhaustive
re-ordering of in-flight writes inside each syscall, recovery checks;
plus the time-to-recover measurement ("WineFS recovered in 7.8s" with
3.5M files — recovery time depends on the number of files, not the data).
"""

from __future__ import annotations

import pytest

from repro.clock import make_context
from repro.core.filesystem import WineFS
from repro.crashmon import CrashExplorer, generate_workloads
from repro.harness import Table
from repro.params import MIB

from _common import emit, record


@pytest.mark.benchmark(group="sec52")
def test_sec52_crash_consistency(benchmark):
    results = []

    def run():
        explorer = CrashExplorer(lambda dev: WineFS(dev, num_cpus=2),
                                 device_size=64 * MIB, num_cpus=2)
        results.extend(explorer.run_all(generate_workloads()))
        return True

    benchmark.pedantic(run, iterations=1, rounds=1)

    table = Table("§5.2 — CrashMonkey/ACE results for WineFS",
                  ["workload", "crash points", "states", "result"])
    for r in results:
        table.add_row(r.workload, r.crash_points, r.states_checked,
                      "PASS" if r.passed else "FAIL")
    emit("sec52_crash_consistency", table.render())
    record(benchmark, {"workloads": len(results),
                       "states": sum(r.states_checked for r in results)})
    assert all(r.passed for r in results), \
        [v for r in results for v in r.violations]


@pytest.mark.benchmark(group="sec52")
def test_sec52_recovery_time(benchmark):
    """Recovery time scales with the number of files (§5.2)."""
    points = []

    def run():
        for nfiles in (100, 400, 1600):
            from repro.pm.device import PMDevice
            device = PMDevice(256 * MIB)
            fs = WineFS(device, num_cpus=4)
            ctx = make_context(4)
            fs.mkfs(ctx)
            fs.mkdir("/d", ctx)
            for i in range(nfiles):
                f = fs.create(f"/d/f{i}", ctx)
                f.append(b"\x00" * 4096, ctx)
                f.close()
            # crash: no clean unmount; remount scans the inode tables
            fs2 = WineFS(device, num_cpus=4)
            ctx2 = make_context(4)
            fs2.mount(ctx2)
            points.append((nfiles, ctx2.clock.elapsed / 1e6))
        return True

    benchmark.pedantic(run, iterations=1, rounds=1)

    table = Table("§5.2 — WineFS recovery time vs file count",
                  ["files", "recovery (ms, simulated)"])
    for nfiles, ms in points:
        table.add_row(nfiles, ms)
    emit("sec52_recovery_time", table.render())
    record(benchmark, dict(points))

    # recovery time grows with the number of files, sublinearly in data
    assert points[-1][1] > points[0][1]
    # the per-CPU parallel scan keeps it modest: < 1 simulated second here
    assert points[-1][1] < 1000.0
