"""Figure 9: applications using POSIX system calls, clean file systems.

Paper setup (§5.5): aging does not affect system-call performance on PM,
so these run on newly created file systems.  (a-c) compare the relaxed
(metadata-consistency) group; (d-f) the strict (data+metadata) group.

Workloads: Filebench varmail/fileserver/webserver/webproxy, PostgreSQL
pgbench read-write (TPC-B-like), WiredTiger FillRandom/ReadRandom.

Expected shape: WineFS equal or better than the best file system in each
group; ext4/xfs poor on varmail (costly fsync); WineFS over NOVA by ~15%
on PostgreSQL and ~60% on FillRandom (partial-block append CoW).
"""

from __future__ import annotations

import pytest

from repro.harness import Table, fresh_fs
from repro.params import MIB
from repro.workloads import run_personality, run_pgbench, run_wiredtiger

from _common import NUM_CPUS, SIZE_GIB, emit, record

RELAXED = ["ext4-DAX", "xfs-DAX", "PMFS", "SplitFS", "NOVA-relaxed",
           "WineFS-relaxed"]
STRICT = ["NOVA", "Strata", "WineFS"]
PERSONALITIES = ["varmail", "fileserver", "webserver", "webproxy"]


def _row(name):
    out = {}
    for pers in PERSONALITIES:
        fs, ctx = fresh_fs(name, size_gib=SIZE_GIB, num_cpus=NUM_CPUS)
        out[pers] = run_personality(fs, ctx, pers, ops=1200,
                                    nfiles=120).kops_per_sec
    fs, ctx = fresh_fs(name, size_gib=SIZE_GIB, num_cpus=NUM_CPUS)
    out["pgbench"] = run_pgbench(fs, ctx, transactions=600,
                                 table_bytes=24 * MIB).tps / 1e3
    fs, ctx = fresh_fs(name, size_gib=SIZE_GIB, num_cpus=NUM_CPUS)
    out["wt-fill"] = run_wiredtiger(fs, ctx, workload="fillrandom",
                                    ops=5000).kops_per_sec
    out["wt-read"] = run_wiredtiger(fs, ctx, workload="readrandom",
                                    ops=5000).kops_per_sec
    return out


COLUMNS = PERSONALITIES + ["pgbench", "wt-fill", "wt-read"]


@pytest.mark.benchmark(group="fig9")
def test_fig9_posix_apps(benchmark):
    relaxed = {}
    strict = {}

    def run():
        for name in RELAXED:
            relaxed[name] = _row(name)
        for name in STRICT:
            strict[name] = _row(name)
        return True

    benchmark.pedantic(run, iterations=1, rounds=1)

    parts = []
    for title, rows in [
            ("Figure 9(a-c) — relaxed group, clean FS (Kops/s; pgbench "
             "KTPS)", relaxed),
            ("Figure 9(d-f) — strict group, clean FS (Kops/s; pgbench "
             "KTPS)", strict)]:
        table = Table(title, ["fs"] + COLUMNS)
        for name, row in rows.items():
            table.add_row(name, *[row[c] for c in COLUMNS])
        parts.append(table.render())
    emit("fig9_posix_apps", "\n\n".join(parts))
    record(benchmark, {"relaxed": relaxed, "strict": strict})

    # WineFS-relaxed is competitive with the best of its group everywhere
    for col in COLUMNS:
        best = max(row[col] for n, row in relaxed.items()
                   if n != "WineFS-relaxed")
        assert relaxed["WineFS-relaxed"][col] >= 0.8 * best, \
            f"WineFS-relaxed too slow on {col}"
    # ext4/xfs perform poorly on varmail due to costly fsync
    assert relaxed["WineFS-relaxed"]["varmail"] > \
        1.5 * relaxed["ext4-DAX"]["varmail"]
    # strict group: WineFS beats NOVA on pgbench (paper: ~15%)
    assert strict["WineFS"]["pgbench"] >= 0.95 * strict["NOVA"]["pgbench"]
    # and on WiredTiger FillRandom (paper: ~60%)
    assert strict["WineFS"]["wt-fill"] > 1.2 * strict["NOVA"]["wt-fill"]
    # ReadRandom is file-system-insensitive
    reads = [row["wt-read"] for row in strict.values()]
    assert max(reads) < 1.3 * min(reads)
